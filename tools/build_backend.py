#!/usr/bin/env python
"""Build the compiled runtime backend (``repro.network._ccore``).

The extension is a single hand-written C file with no dependencies
beyond the CPython headers, so the build is one compiler invocation —
no ``setuptools`` build machinery, no ``Cython``/``mypyc``.  The
artifact lands next to its source (``src/repro/network/``), where
:mod:`repro.network.backend` looks for it when ``REPRO_BACKEND`` is
``compiled`` or ``auto``.

Usage::

    python tools/build_backend.py [--force] [--check] [--quiet]
                                  [--debug] [--sanitize]
                                  [--print-artifact]

``--check`` only reports whether a current artifact exists (exit 0) or
not (exit 1), without building.  ``--print-artifact`` prints the
platform-tagged artifact path and exits (for CI cache keys and upload
globs).  Without ``--force`` the build is skipped when the artifact is
newer than both the C source *and this build script* — a flag or
compiler change edits this file's behavior, so the script itself is a
build dependency — and was built with the same flag profile (recorded
in a ``.buildstamp`` sidecar).

``--debug`` compiles at ``-Og -g`` with assertions live.  ``--sanitize``
adds AddressSanitizer + UndefinedBehaviorSanitizer; the resulting
artifact requires ``LD_PRELOAD=$(cc -print-file-name=libasan.so)``
when loaded into a non-instrumented interpreter (the smoke probe and
the CI sanitizer job both do this).
"""

from __future__ import annotations

import argparse
import os
import shlex
import subprocess
import sys
import sysconfig

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
PKG_DIR = os.path.join(ROOT, "src", "repro", "network")
SOURCE = os.path.join(PKG_DIR, "_ccore.c")
#: This script is itself a build input: its flags decide the artifact.
SCRIPT = os.path.abspath(__file__)

#: Platform-tagged extension suffix (e.g. ``.cpython-311-x86_64-...so``)
#: so the artifact never shadows one built for a different interpreter.
EXT_SUFFIX = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
ARTIFACT = os.path.join(PKG_DIR, "_ccore" + EXT_SUFFIX)
#: Sidecar recording the flag profile the artifact was built with, so
#: ``--check`` treats a plain artifact as stale when a sanitized one is
#: requested (and vice versa).
STAMP = ARTIFACT + ".buildstamp"

_BASE_FLAGS = ["-fPIC", "-shared", "-fno-strict-aliasing"]
_SANITIZE_FLAGS = ["-fsanitize=address,undefined",
                   "-fno-omit-frame-pointer",
                   "-fno-sanitize-recover=undefined"]


def _profile(debug: bool, sanitize: bool) -> str:
    """Canonical name for a flag combination, stored in the stamp."""
    parts = ["debug" if debug else "opt"]
    if sanitize:
        parts.append("asan-ubsan")
    return "+".join(parts)


def _cc() -> str:
    return sysconfig.get_config_var("CC") or "cc"


def _compile_cmd(debug: bool, sanitize: bool) -> list:
    opt = ["-Og", "-g"] if debug else ["-O3"]
    cmd = shlex.split(_cc()) + opt + list(_BASE_FLAGS)
    if sanitize:
        cmd += _SANITIZE_FLAGS
    cmd += ["-I", sysconfig.get_paths()["include"],
            SOURCE, "-o", ARTIFACT]
    return cmd


def _read_stamp() -> str:
    try:
        with open(STAMP) as fh:
            return fh.read().strip()
    except OSError:
        # Artifacts predating the stamp were all plain optimized builds.
        return _profile(debug=False, sanitize=False)


def _asan_runtime() -> str:
    """Path to libasan for preloading into the plain interpreter."""
    probe = subprocess.run(shlex.split(_cc())
                           + ["-print-file-name=libasan.so"],
                           capture_output=True, text=True)
    return probe.stdout.strip()


def artifact_is_current(debug: bool = False,
                        sanitize: bool = False) -> bool:
    """Artifact exists, is newer than the C source *and* this build
    script, and was built with the requested flag profile."""
    if not os.path.exists(ARTIFACT):
        return False
    built = os.path.getmtime(ARTIFACT)
    if built < os.path.getmtime(SOURCE) or built < os.path.getmtime(SCRIPT):
        return False
    return _read_stamp() == _profile(debug, sanitize)


def build(force: bool = False, quiet: bool = False,
          debug: bool = False, sanitize: bool = False) -> str:
    """Compile the extension in place; returns the artifact path."""
    if not force and artifact_is_current(debug, sanitize):
        if not quiet:
            print("up to date: %s [%s]" % (ARTIFACT,
                                           _profile(debug, sanitize)))
        return ARTIFACT
    cmd = _compile_cmd(debug, sanitize)
    if not quiet:
        print(" ".join(shlex.quote(c) for c in cmd))
    subprocess.run(cmd, check=True)
    with open(STAMP, "w") as fh:
        fh.write(_profile(debug, sanitize) + "\n")
    # Smoke-import in a child process with the backend forced on, so a
    # broken artifact fails the build instead of a later test run.
    env = {**os.environ, "REPRO_BACKEND": "compiled",
           "PYTHONPATH": os.path.join(ROOT, "src")}
    if sanitize:
        # The interpreter is not ASan-instrumented, so the runtime must
        # be preloaded; leak checking at exit would drown in CPython's
        # own immortal allocations, so only in-run reports are armed.
        env["LD_PRELOAD"] = _asan_runtime()
        env["ASAN_OPTIONS"] = "detect_leaks=0"
    probe = subprocess.run(
        [sys.executable, "-c",
         "from repro.network import backend; "
         "assert backend.BACKEND == 'compiled', backend.describe(); "
         "print(backend.describe())"],
        env=env, capture_output=True, text=True)
    if probe.returncode != 0:
        for path in (ARTIFACT, STAMP):
            try:
                os.unlink(path)
            except OSError:
                pass
        raise SystemExit("built artifact failed to import:\n%s%s"
                         % (probe.stdout, probe.stderr))
    if not quiet:
        print("built: %s [%s]" % (ARTIFACT, _profile(debug, sanitize)))
        print(probe.stdout.strip())
    return ARTIFACT


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--force", action="store_true",
                        help="rebuild even if the artifact is current")
    parser.add_argument("--check", action="store_true",
                        help="exit 0 if a current artifact exists, 1 if not")
    parser.add_argument("--debug", action="store_true",
                        help="compile at -Og -g instead of -O3")
    parser.add_argument("--sanitize", action="store_true",
                        help="add ASan+UBSan instrumentation")
    parser.add_argument("--print-artifact", action="store_true",
                        help="print the artifact path and exit")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    if args.print_artifact:
        print(ARTIFACT)
        return 0
    if args.check:
        ok = artifact_is_current(args.debug, args.sanitize)
        if not args.quiet:
            print("%s: %s" % ("current" if ok else "missing/stale", ARTIFACT))
        return 0 if ok else 1
    build(force=args.force, quiet=args.quiet,
          debug=args.debug, sanitize=args.sanitize)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
