#!/usr/bin/env python
"""Build the compiled runtime backend (``repro.network._ccore``).

The extension is a single hand-written C file with no dependencies
beyond the CPython headers, so the build is one compiler invocation —
no ``setuptools`` build machinery, no ``Cython``/``mypyc``.  The
artifact lands next to its source (``src/repro/network/``), where
:mod:`repro.network.backend` looks for it when ``REPRO_BACKEND`` is
``compiled`` or ``auto``.

Usage::

    python tools/build_backend.py [--force] [--check] [--quiet]

``--check`` only reports whether a current artifact exists (exit 0) or
not (exit 1), without building.  Without ``--force`` the build is
skipped when the artifact is newer than the source (make-style).
"""

from __future__ import annotations

import argparse
import os
import shlex
import subprocess
import sys
import sysconfig

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
PKG_DIR = os.path.join(ROOT, "src", "repro", "network")
SOURCE = os.path.join(PKG_DIR, "_ccore.c")

#: Platform-tagged extension suffix (e.g. ``.cpython-311-x86_64-...so``)
#: so the artifact never shadows one built for a different interpreter.
EXT_SUFFIX = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
ARTIFACT = os.path.join(PKG_DIR, "_ccore" + EXT_SUFFIX)


def artifact_is_current() -> bool:
    return (os.path.exists(ARTIFACT)
            and os.path.getmtime(ARTIFACT) >= os.path.getmtime(SOURCE))


def build(force: bool = False, quiet: bool = False) -> str:
    """Compile the extension in place; returns the artifact path."""
    if not force and artifact_is_current():
        if not quiet:
            print("up to date: %s" % ARTIFACT)
        return ARTIFACT
    cc = sysconfig.get_config_var("CC") or "cc"
    include = sysconfig.get_paths()["include"]
    cmd = shlex.split(cc) + [
        "-O3", "-fPIC", "-shared", "-fno-strict-aliasing",
        "-I", include,
        SOURCE, "-o", ARTIFACT,
    ]
    if not quiet:
        print(" ".join(shlex.quote(c) for c in cmd))
    subprocess.run(cmd, check=True)
    # Smoke-import in a child process with the backend forced on, so a
    # broken artifact fails the build instead of a later test run.
    probe = subprocess.run(
        [sys.executable, "-c",
         "from repro.network import backend; "
         "assert backend.BACKEND == 'compiled', backend.describe(); "
         "print(backend.describe())"],
        env={**os.environ, "REPRO_BACKEND": "compiled",
             "PYTHONPATH": os.path.join(ROOT, "src")},
        capture_output=True, text=True)
    if probe.returncode != 0:
        try:
            os.unlink(ARTIFACT)
        except OSError:
            pass
        raise SystemExit("built artifact failed to import:\n%s%s"
                         % (probe.stdout, probe.stderr))
    if not quiet:
        print("built: %s" % ARTIFACT)
        print(probe.stdout.strip())
    return ARTIFACT


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--force", action="store_true",
                        help="rebuild even if the artifact is current")
    parser.add_argument("--check", action="store_true",
                        help="exit 0 if a current artifact exists, 1 if not")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    if args.check:
        ok = artifact_is_current()
        if not args.quiet:
            print("%s: %s" % ("current" if ok else "missing/stale", ARTIFACT))
        return 0 if ok else 1
    build(force=args.force, quiet=args.quiet)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
