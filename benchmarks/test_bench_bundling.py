"""E13 — Sec. IX-B media bundling contention.

"Another problem with media bundling is that it increases the
probability of race conditions between transactions ...  Because of
media bundling, a transaction to control a video channel contends with
a transaction to control an audio channel on the same signaling path.
If the channels were controlled by signals in separate tunnels, as in
our protocol, this contention could not occur."

The bench drives the same workload — one audio change and one video
change issued concurrently from opposite ends — over both protocols.
Ours completes both within a single hop; SIP glares and pays the
backoff.
"""

import statistics

import pytest

from repro.analysis.experiments import (measure_sip_bundled_changes,
                                        measure_unbundled_changes)


def test_our_tunnels_do_not_contend(benchmark, reproduce):
    result = benchmark.pedantic(measure_unbundled_changes,
                                rounds=3, iterations=1)
    reproduce("bundling (ours)", "concurrent audio+video change",
              "no contention (n+2c = 74)", result.measured_ms)
    # Both changes land as fast as a single one: one hop.
    assert result.measured_ms == pytest.approx(74.0, abs=1.0)


def test_sip_bundled_changes_contend(benchmark, reproduce):
    samples = [measure_sip_bundled_changes(seed=s).measured_ms
               for s in range(6)]
    benchmark.pedantic(measure_sip_bundled_changes, kwargs={"seed": 0},
                       rounds=1, iterations=1)
    mean = statistics.mean(samples)
    reproduce("bundling (SIP)", "concurrent audio+video change",
              "glare + backoff (seconds)", mean)
    assert mean > 1000.0          # backoff-dominated
    assert min(samples) > 500.0   # every seed glared


def test_contention_ratio(benchmark, reproduce):
    ours = benchmark.pedantic(measure_unbundled_changes, rounds=1,
                              iterations=1).measured_ms
    sip = statistics.mean(measure_sip_bundled_changes(seed=s).measured_ms
                          for s in range(5))
    reproduce("bundling comparison", "SIP / ours ratio",
              "orders of magnitude", sip / ours, unit="x")
    assert sip / ours > 10.0
