"""Benchmark-suite helpers: collect paper-vs-measured rows and print a
summary table at the end of the run."""

import pytest

_ROWS = []


def record_row(experiment, quantity, paper, measured, unit="ms"):
    """Register one reproduction row for the end-of-run table."""
    _ROWS.append((experiment, quantity, paper, measured, unit))


@pytest.fixture
def reproduce():
    return record_row


def pytest_terminal_summary(terminalreporter):
    if not _ROWS:
        return
    tr = terminalreporter
    tr.write_sep("=", "paper reproduction summary")
    tr.write_line("%-34s %-30s %14s %14s" % (
        "experiment", "quantity", "paper", "measured"))
    for experiment, quantity, paper, measured, unit in _ROWS:
        paper_s = ("%.1f %s" % (paper, unit)) if isinstance(
            paper, (int, float)) else str(paper)
        measured_s = ("%.1f %s" % (measured, unit)) if isinstance(
            measured, (int, float)) else str(measured)
        tr.write_line("%-34s %-30s %14s %14s" % (
            experiment, quantity, paper_s, measured_s))
