"""Benchmark-suite helpers.

Two reporting channels:

* ``reproduce`` — collect paper-vs-measured rows and print a summary
  table at the end of the run (unchanged from the seed).
* ``perf_row`` + ``--bench-json`` — collect per-model verification
  performance rows (states, transitions, wall time, states/sec) and,
  when ``--bench-json[=PATH]`` is passed, write them to
  ``BENCH_verification.json`` together with the speedup against the
  recorded seed baseline (``benchmarks/baselines/verification_seed.json``),
  so the perf trajectory is machine-readable across PRs.
"""

import json
import os

import pytest

from repro.tools.bench import geomean as _geomean
from repro.tools.bench import load_baseline

_ROWS = []
_PERF = {}

_BASELINE_PATH = os.path.join(os.path.dirname(__file__), "baselines",
                              "verification_seed.json")


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json", action="store", nargs="?",
        const="BENCH_verification.json", default=None,
        metavar="PATH",
        help="write per-model verification perf rows (states/sec, wall "
             "time, speedup vs the recorded seed baseline) to PATH "
             "(default: BENCH_verification.json)")


def record_row(experiment, quantity, paper, measured, unit="ms"):
    """Register one reproduction row for the end-of-run table."""
    _ROWS.append((experiment, quantity, paper, measured, unit))


@pytest.fixture
def reproduce():
    return record_row


def record_perf(key, states, transitions, elapsed, config="small"):
    """Register one verification perf row, keyed ``model@config``."""
    _PERF["%s@%s" % (key, config)] = {
        "states": states,
        "transitions": transitions,
        "elapsed": elapsed,
        "states_per_sec": states / elapsed if elapsed > 0 else None,
    }


@pytest.fixture
def perf_row():
    return record_perf


def _write_bench_json(path):
    baseline = load_baseline(_BASELINE_PATH, key="models")
    speedups = []
    models = {}
    for key, row in sorted(_PERF.items()):
        entry = dict(row)
        base = baseline.get(key)
        if base:
            entry["seed_elapsed"] = base["elapsed"]
            entry["counts_match_seed"] = (
                base.get("states") == row["states"]
                and base.get("transitions") == row["transitions"])
            if row["elapsed"] > 0 and base["elapsed"] > 0:
                entry["speedup_vs_seed"] = base["elapsed"] / row["elapsed"]
                speedups.append(entry["speedup_vs_seed"])
        models[key] = entry
    payload = {
        "baseline": os.path.relpath(_BASELINE_PATH),
        "models": models,
        "summary": {
            "models_measured": len(models),
            "geomean_speedup_vs_seed": _geomean(speedups),
            "all_counts_match_seed": all(
                e.get("counts_match_seed", True) for e in models.values()),
        },
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tr = terminalreporter
    json_path = config.getoption("--bench-json")
    if json_path and _PERF:
        payload = _write_bench_json(json_path)
        summary = payload["summary"]
        tr.write_sep("=", "verification perf -> %s" % json_path)
        tr.write_line("models measured: %d" % summary["models_measured"])
        if summary["geomean_speedup_vs_seed"] is not None:
            tr.write_line("geomean speedup vs seed baseline: %.2fx"
                          % summary["geomean_speedup_vs_seed"])
        tr.write_line("state/transition counts match seed: %s"
                      % summary["all_counts_match_seed"])
    if not _ROWS:
        return
    tr.write_sep("=", "paper reproduction summary")
    tr.write_line("%-34s %-30s %14s %14s" % (
        "experiment", "quantity", "paper", "measured"))
    for experiment, quantity, paper, measured, unit in _ROWS:
        paper_s = ("%.1f %s" % (paper, unit)) if isinstance(
            paper, (int, float)) else str(paper)
        measured_s = ("%.1f %s" % (measured, unit)) if isinstance(
            measured, (int, float)) else str(measured)
        tr.write_line("%-34s %-30s %14s %14s" % (
            experiment, quantity, paper_s, measured_s))
