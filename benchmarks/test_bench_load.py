"""Load-harness throughput regression gate (not a paper artifact).

PR 5 recorded the pre-optimization throughput of the benchmark
scenario in ``benchmarks/baselines/load_seed.json``; this gate fails
the suite if the relay topology's best-window rate ever falls below a
floor multiple of that recording — optimizations must not quietly rot.

PR 6 raised the floor from the original 0.8× to a backend-aware pair:
the compiled backend (built by ``tools/build_backend.py`` and enforced
by CI's ``compiled-backend`` job under ``REPRO_BACKEND=compiled``)
must clear **1.6×** the recorded seed; the pure-Python reference keeps
a 1.2× floor — it measures well above 1.6× too, but the recorded seed
is a different machine state than CI and the reference backend's gate
needs headroom for slow hosts, while still catching any regression
back toward pre-optimization throughput.
"""

import os

import pytest

from repro.load import LoadJob
from repro.load.harness import _run_job
from repro.load.topologies import BATCH, RELAY
from repro.network.backend import BACKEND
from repro.tools.bench import load_baseline

_BASELINE_PATH = os.path.join(os.path.dirname(__file__), "baselines",
                              "load_seed.json")

#: Throughput may wobble with the host; a drop past this factor is a
#: real regression, not noise.  The compiled backend carries the
#: PR-6 target (>=1.6x the recorded seed best-window).
FLOOR = 1.6 if BACKEND == "compiled" else 1.2


def test_relay_load_throughput_does_not_regress(reproduce):
    baseline = load_baseline(_BASELINE_PATH)
    seed_rate = baseline.get("calls_per_sec_best")
    assert seed_rate, "missing baselines/load_seed.json"
    # Best window over a few hundred calls: long enough to hit steady
    # state, short enough for a tier-1 gate.
    best = max(
        _run_job(LoadJob(app=RELAY, calls=6 * BATCH, seed=0,
                         shard=0)).best_window_rate
        for _ in range(3))
    reproduce("load engine", "relay calls/sec (best window)",
              seed_rate, best, unit="calls/s")
    assert best >= FLOOR * seed_rate, (
        "relay throughput %.1f calls/sec fell below %.1f "
        "(%.2fx the recorded seed %.1f)"
        % (best, FLOOR * seed_rate, best / seed_rate, seed_rate))


def test_relay_load_is_deterministic_across_repeats():
    a = _run_job(LoadJob(app=RELAY, calls=BATCH, seed=0, shard=0))
    b = _run_job(LoadJob(app=RELAY, calls=BATCH, seed=0, shard=0))
    assert a.executed == b.executed
    assert a.signals_sent == b.signals_sent
    assert a.setup_sim == b.setup_sim


def test_call_batch_event_count_matches_recorded_seed():
    """The seed baseline pins the scenario's event count; the optimized
    runtime must execute the identical schedule."""
    baseline = load_baseline(_BASELINE_PATH)
    expected = baseline.get("executed_per_batch")
    if not expected:
        pytest.skip("baseline lacks executed_per_batch")
    result = _run_job(LoadJob(app=RELAY, calls=baseline["calls_per_batch"],
                              seed=baseline["seed"], shard=0))
    assert result.executed == expected
