"""Load-harness throughput regression gate (not a paper artifact).

PR 5 recorded the pre-optimization throughput of the benchmark
scenario in ``benchmarks/baselines/load_seed.json``; this gate fails
the suite if the relay topology's best-window rate ever falls below a
floor multiple of that recording — optimizations must not quietly rot.

PR 6 raised the floor from the original 0.8x to a backend-aware pair
(compiled 1.6x, pure Python 1.2x), both as *raw* multiples of the
recorded seed.  The third perf wave raised them again — compiled to
**2.5x**, Python to **1.4x** — and made the compiled gate
*host-calibrated*: shared containers swing tens of percent in CPU
speed minute to minute, so before gating, the unchanged pure-Python
reference workload is re-measured on the current host (in a child
interpreter, see :mod:`repro.load.calibrate`) and the floor is scaled
by the measured host-speed ratio.  The gate then asserts what it
always meant to assert — "the compiled engine is this much faster
than the recorded seed *on the reference host*" — without flaking on
a slow CPU slice or rubber-stamping on a fast one.  The Python floor
stays raw by design — that workload *is* the calibration reference,
so calibrating it against itself would make the gate vacuous.  1.4x
sits under the ~1.75x measured on reference-class hosts; a host whose
CPU slice dips much below ~80% of the reference container's will read
it as a (spurious) failure, which is the honest signal that the
runner, not the code, needs attention.
"""

import os

import pytest

from repro.load import LoadJob
from repro.load.calibrate import measure_python_reference
from repro.load.harness import _run_job
from repro.load.topologies import BATCH, RELAY
from repro.network.backend import BACKEND
from repro.tools.bench import host_calibration, load_baseline

_BASELINE_PATH = os.path.join(os.path.dirname(__file__), "baselines",
                              "load_seed.json")

#: Floor multiples of the recorded seed best-window rate.  The
#: compiled floor is in reference-host terms (scaled by the measured
#: host calibration before comparing); the Python floor is raw.
FLOOR = 2.5 if BACKEND == "compiled" else 1.4


def _one_window() -> float:
    # Best window over a few hundred calls: long enough to hit steady
    # state, short enough for a tier-1 gate.
    return _run_job(LoadJob(app=RELAY, calls=6 * BATCH, seed=0,
                            shard=0)).best_window_rate


def test_relay_load_throughput_does_not_regress(reproduce):
    baseline = load_baseline(_BASELINE_PATH)
    seed_rate = baseline.get("calls_per_sec_best")
    assert seed_rate, "missing baselines/load_seed.json"
    floor_rate = FLOOR * seed_rate
    calibration = None
    if BACKEND == "compiled":
        # Interleave the calibration probe with the gated measurement:
        # host speed drifts on a scale of minutes, so probing once and
        # measuring afterwards can pair a fast-moment reference with a
        # slow-moment measurement (or vice versa).  Taking both maxima
        # over alternating samples pins them to the same interval.
        reference = baseline.get(
            "python_reference_calls_per_sec_best_window")
        best = probe_best = 0.0
        for _ in range(3):
            probe = measure_python_reference(repeats=1)
            if probe:
                probe_best = max(probe_best, probe)
            best = max(best, _one_window())
        calibration = host_calibration(probe_best or None, reference)
        if calibration:
            floor_rate *= calibration
    else:
        best = max(_one_window() for _ in range(5))
    reproduce("load engine", "relay calls/sec (best window)",
              seed_rate, best, unit="calls/s")
    assert best >= floor_rate, (
        "relay throughput %.1f calls/sec fell below %.1f "
        "(%.2fx the recorded seed %.1f%s)"
        % (best, floor_rate, best / seed_rate, seed_rate,
           ", host calibration %.3f" % calibration
           if calibration else ""))


def test_relay_load_is_deterministic_across_repeats():
    a = _run_job(LoadJob(app=RELAY, calls=BATCH, seed=0, shard=0))
    b = _run_job(LoadJob(app=RELAY, calls=BATCH, seed=0, shard=0))
    assert a.executed == b.executed
    assert a.signals_sent == b.signals_sent
    assert a.setup_sim == b.setup_sim


def test_call_batch_event_count_matches_recorded_seed():
    """The seed baseline pins the scenario's event count; the optimized
    runtime must execute the identical schedule."""
    baseline = load_baseline(_BASELINE_PATH)
    expected = baseline.get("executed_per_batch")
    if not expected:
        pytest.skip("baseline lacks executed_per_batch")
    result = _run_job(LoadJob(app=RELAY, calls=baseline["calls_per_batch"],
                              seed=baseline["seed"], shard=0))
    assert result.executed == expected
