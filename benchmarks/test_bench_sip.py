"""E10/E11 — Sec. IX-B SIP comparison (Fig. 14).

Regenerates the paper's protocol-comparison numbers on the miniature
SIP substrate:

* glare case (both servers relink concurrently): ``10n + 11c + d``
  ≈ 3560 ms, dominated by the randomized backoff ``d`` (E[d] ≈ 3 s);
* common case (one server relinks): ≈ 378 ms versus our 128 ms.

Absolute equality is not expected (the paper itself counts an idealized
critical path); what must hold is the *shape*: glare runs are seconds
not milliseconds, and the common case is ~3x our protocol.
"""

import statistics

import pytest

from repro.analysis import (PAPER_SIP_COMMON_MS, PAPER_SIP_GLARE_MS,
                            PAPER_FIG13_MS, measure_fig13,
                            measure_sip_common, measure_sip_glare)


def test_sip_common_case(benchmark, reproduce):
    result = benchmark.pedantic(measure_sip_common, rounds=3, iterations=1)
    reproduce("Fig. 14 region (SIP, common)", "relink latency",
              PAPER_SIP_COMMON_MS, result.measured_ms)
    # Within ~2 message hops of the paper's idealized 7n+7c.
    assert result.measured_ms == pytest.approx(PAPER_SIP_COMMON_MS,
                                               rel=0.25)


def test_sip_glare_case(benchmark, reproduce):
    samples = [measure_sip_glare(seed=s).measured_ms for s in range(8)]
    benchmark.pedantic(measure_sip_glare, kwargs={"seed": 0},
                       rounds=1, iterations=1)
    mean = statistics.mean(samples)
    reproduce("Fig. 14 (SIP, glare)", "relink latency (mean of 8)",
              PAPER_SIP_GLARE_MS, mean)
    # Dominated by the 2.1-4 s owner retry window.
    assert 2500.0 < mean < 5000.0
    assert min(samples) > 2100.0  # never faster than the owner window


def test_protocol_comparison_ratios(benchmark, reproduce):
    """The paper's two comparisons: 3560 vs 128 (glare) and 378 vs 128
    (common).  Who wins and by roughly what factor must match."""
    ours = benchmark.pedantic(measure_fig13, rounds=1,
                              iterations=1).measured_ms
    sip_common = measure_sip_common().measured_ms
    sip_glare = statistics.mean(
        measure_sip_glare(seed=s).measured_ms for s in range(5))
    reproduce("comparison (common)", "SIP / ours ratio",
              PAPER_SIP_COMMON_MS / PAPER_FIG13_MS, sip_common / ours,
              unit="x")
    reproduce("comparison (glare)", "SIP / ours ratio",
              PAPER_SIP_GLARE_MS / PAPER_FIG13_MS, sip_glare / ours,
              unit="x")
    assert ours < sip_common < sip_glare
    assert 2.0 < sip_common / ours < 4.5      # paper: 2.95x
    assert 15.0 < sip_glare / ours < 45.0     # paper: 27.8x


def test_sip_glare_latency_dominated_by_backoff(benchmark, reproduce):
    """Ablation: decompose the glare latency — with d forced near zero
    the SIP cost collapses toward the common case, confirming the
    paper's reading that the penalty is the transactional design."""
    glare = statistics.mean(
        measure_sip_glare(seed=s).measured_ms for s in range(5))
    common = benchmark.pedantic(measure_sip_common, rounds=1,
                                iterations=1).measured_ms
    backoff_share = (glare - common) / glare
    reproduce("glare decomposition", "share of latency from backoff",
              (PAPER_SIP_GLARE_MS - PAPER_SIP_COMMON_MS)
              / PAPER_SIP_GLARE_MS, backoff_share, unit="frac")
    assert backoff_share > 0.7
