"""E6 — Sec. VIII-A verification of the twelve path models.

Regenerates the paper's verification result: "six paths with no
flowlinks and every possible combination of closeslots, openslots, and
holdslots at their ends, and six paths similar ... but with one
flowlink each" — all passing the safety check and their Sec. V
temporal specification.
"""

import pytest

from repro.verification import (PATH_TYPES, build_model, format_results,
                                verify_all, verify_model)


@pytest.mark.parametrize("path_type", sorted(PATH_TYPES))
def test_verify_plain_path(benchmark, reproduce, perf_row, path_type):
    model = build_model(path_type, with_flowlink=False)
    result = benchmark.pedantic(verify_model, args=(model,),
                                rounds=1, iterations=1)
    reproduce("verify %s" % result.key, "safety+spec",
              "pass", "pass" if result.ok else "FAIL")
    assert result.ok
    benchmark.extra_info["states"] = result.states
    perf_row(result.key, result.states, result.transitions,
             result.elapsed, config="small")


@pytest.mark.parametrize("path_type", sorted(PATH_TYPES))
def test_verify_flowlink_path(benchmark, reproduce, perf_row, path_type):
    model = build_model(path_type, with_flowlink=True)
    result = benchmark.pedantic(verify_model, args=(model,),
                                rounds=1, iterations=1)
    reproduce("verify %s" % result.key, "safety+spec",
              "pass", "pass" if result.ok else "FAIL")
    assert result.ok
    benchmark.extra_info["states"] = result.states
    perf_row(result.key, result.states, result.transitions,
             result.elapsed, config="small")


def test_full_sweep_table(benchmark, reproduce, capsys):
    """The 12-model table, printed in the spirit of Sec. VIII-A."""
    results = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    print()
    print(format_results(results))
    assert all(r.ok for r in results)
    reproduce("Sec. VIII-A sweep", "12/12 models pass", "12/12",
              "%d/12" % sum(r.ok for r in results))


def test_parallel_sweep_matches_serial(benchmark, reproduce):
    """The multiprocessing sweep driver returns the same verdicts and
    state counts as the serial sweep, in the same order."""
    serial = verify_all()
    results = benchmark.pedantic(verify_all, kwargs={"parallel": True},
                                 rounds=1, iterations=1)
    assert [(r.key, r.states, r.transitions, r.ok) for r in results] \
        == [(r.key, r.states, r.transitions, r.ok) for r in serial]
    reproduce("parallel sweep", "matches serial", "yes", "yes")
