"""E12 — the Sec. VIII-B convergence argument, measured.

"After a signaling path stabilizes, eventually the descriptor of an
endpoint will propagate along the entire signaling path as the most
recent descriptor from that end.  When it reaches the other end, the
other end will respond with a new selector."

This bench measures end-to-end convergence (to the full ``bothFlowing``
condition, history variables included) across path lengths, under
jittered network latency, and under repeated mid-path relinking — the
conditions the informal argument claims the protocol survives.
"""

import pytest

from repro import AUDIO, Network, UniformLatency
from repro.analysis import run_until
from repro.network.latency import PAPER_C, PAPER_N
from repro.semantics import both_flowing, trace_path


def _chain(net, length):
    """L -- b0 -- ... -- b(length-1) -- R, all flowlinked through."""
    left = net.device("L")
    right = net.device("R", auto_accept=True)
    boxes = [net.box("b%d" % i) for i in range(length)]
    ch_left = net.channel(left, boxes[0])
    mids = [net.channel(boxes[i], boxes[i + 1])
            for i in range(length - 1)]
    ch_right = net.channel(boxes[-1], right)
    for i, box in enumerate(boxes):
        ls = (ch_left if i == 0 else mids[i - 1]).end_for(box).slot()
        rs = (ch_right if i == length - 1 else mids[i]).end_for(box).slot()
        box.flow_link(ls, rs)
    return left, right, boxes, ch_left


@pytest.mark.parametrize("length", [1, 2, 4, 8])
def test_convergence_time_scales_linearly(benchmark, reproduce, length):
    def measure():
        net = Network(seed=length, latency=None, cost=PAPER_C)
        from repro.network.latency import FixedLatency
        net.latency = FixedLatency(PAPER_N)
        left, right, boxes, ch_left = _chain(net, length)
        start = net.loop.now
        left.open(ch_left.end_for(left).slot(), AUDIO)
        path = lambda: trace_path(ch_left.end_for(boxes[0]).slot())
        finish = run_until(net.loop, lambda: both_flowing(path()))
        return (finish - start) * 1000.0

    ms = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Opening end-to-end costs a forward pass (opens), a return pass
    # (oacks), and the describe/select work — linear in path length.
    per_hop = ms / (length + 1)
    reproduce("convergence len=%d" % length, "setup latency",
              "linear in hops", ms)
    assert per_hop < 6 * (PAPER_N + PAPER_C) * 1000.0


def test_convergence_under_jitter(benchmark, reproduce):
    """FIFO-preserving jitter does not break convergence."""
    def run():
        net = Network(seed=3, latency=UniformLatency(0.005, 0.08),
                      cost=0.002)
        left, right, boxes, ch_left = _chain(net, 4)
        left.open(ch_left.end_for(left).slot(), AUDIO)
        net.settle()
        return net, left, right, boxes, ch_left
    net, left, right, boxes, ch_left = benchmark.pedantic(
        run, rounds=1, iterations=1)
    path = trace_path(ch_left.end_for(boxes[0]).slot())
    assert both_flowing(path)
    reproduce("convergence (jitter)", "bothFlowing reached", "yes", "yes")


def test_convergence_after_relink_storm(benchmark, reproduce):
    """Every box on the path relinks (releasing and recreating its
    flowlink) repeatedly; the path must converge to bothFlowing after
    the storm stops — the 'if paths persist long enough' guarantee."""
    def setup():
        net = Network(seed=9, latency=UniformLatency(0.001, 0.02),
                      cost=0.001)
        left, right, boxes, ch_left = _chain(net, 4)
        left.open(ch_left.end_for(left).slot(), AUDIO)
        net.settle()
        return net, left, right, boxes, ch_left
    net, left, right, boxes, ch_left = benchmark.pedantic(
        setup, rounds=1, iterations=1)
    for round_no in range(5):
        for box in boxes:
            goal = box.maps.goals()[0]
            s1, s2 = goal.slots
            box.flow_link(s1, s2)   # new flowlink object, same slots
        net.run(0.005 * (round_no + 1))
    net.settle()
    path = trace_path(ch_left.end_for(boxes[0]).slot())
    assert both_flowing(path)
    assert net.plane.two_way(left, right)
    assert net.plane.wasted_transmissions() == []
    reproduce("relink storm (5 rounds x 4 boxes)", "reconverged",
              "yes", "yes")


def test_mute_churn_reconverges(benchmark, reproduce):
    """Recurrence under perturbation: the user toggles mutes many times
    mid-flight; after the last change the path returns to bothFlowing
    with the right enabled values."""
    def setup():
        net = Network(seed=4, latency=UniformLatency(0.001, 0.03),
                      cost=0.002)
        left, right, boxes, ch_left = _chain(net, 3)
        slot = ch_left.end_for(left).slot()
        left.open(slot, AUDIO)
        net.settle()
        return net, left, right, boxes, ch_left, slot
    net, left, right, boxes, ch_left, slot = benchmark.pedantic(
        setup, rounds=1, iterations=1)
    for i in range(6):
        left.modify(slot, mute_out=(i % 2 == 0))
        net.run(0.004)
    left.modify(slot, mute_in=False, mute_out=False)
    net.settle()
    path = trace_path(ch_left.end_for(boxes[0]).slot())
    assert both_flowing(path)
    assert net.plane.two_way(left, right)
    reproduce("mute churn (7 modifies)", "returned to bothFlowing",
              "yes", "yes")
