"""E7 — Sec. VIII-A state-space blow-up from one flowlink.

"When we compare similar checks of two paths, varying only in that one
has a flowlink and the other does not, adding a flowlink causes the
memory to grow by a factor of 300 on the average, and the time to grow
by a factor of 1000 on the average."

Our models are smaller than the authors' Promela models (bounded
nondeterminism budgets keep CI fast), so the absolute factors are
smaller; the *shape* — every path type's cost inflates by an order of
magnitude or more when one flowlink is added, growing with model
richness — is what this bench reproduces.  A second, richer
configuration shows the factors climbing toward the paper's regime.
"""

import statistics

import pytest

from repro.verification import blowup_table, verify_all


def _geomean(values):
    return statistics.geometric_mean(values)


def test_blowup_small_config(benchmark, reproduce):
    results = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    table = blowup_table(results)
    mem = _geomean([f["memory_factor"] for f in table.values()])
    t = _geomean([f["time_factor"] for f in table.values()])
    reproduce("flowlink blow-up (small)", "memory factor (geomean)",
              300.0, mem, unit="x")
    reproduce("flowlink blow-up (small)", "time factor (geomean)",
              1000.0, t, unit="x")
    assert mem > 3.0
    assert t > 3.0


def test_blowup_grows_with_model_richness(benchmark, reproduce, perf_row):
    """The factors increase as the models get more nondeterministic —
    extrapolating toward the paper's full-fidelity models."""
    small = blowup_table(benchmark.pedantic(verify_all, rounds=1,
                                            iterations=1))
    rich_results = verify_all(phase1_budget=2, modify_budget=2,
                              queue_capacity=8, max_versions=4,
                              max_states=5_000_000)
    for r in rich_results:
        perf_row(r.key, r.states, r.transitions, r.elapsed,
                 config="rich")
    rich = blowup_table(rich_results)
    small_mem = _geomean([f["memory_factor"] for f in small.values()])
    rich_mem = _geomean([f["memory_factor"] for f in rich.values()])
    small_time = _geomean([f["time_factor"] for f in small.values()])
    rich_time = _geomean([f["time_factor"] for f in rich.values()])
    reproduce("flowlink blow-up (rich)", "memory factor (geomean)",
              300.0, rich_mem, unit="x")
    reproduce("flowlink blow-up (rich)", "time factor (geomean)",
              1000.0, rich_time, unit="x")
    assert rich_mem > small_mem
    assert rich_time > small_time
    assert rich_mem > 10.0
    # Time threshold recalibrated for the interned engine: per-state
    # cost dropped ~7x across the board, so fixed per-model setup now
    # compresses the wall-clock ratio on the sub-millisecond plain
    # models.  The state-count ratio (rich_mem, identical to the seed's
    # by the golden-count tests) carries the blow-up evidence.
    assert rich_time > 10.0
