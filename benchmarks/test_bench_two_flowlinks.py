"""Extension of E6/E7 — model checking paths with TWO flowlinks.

Sec. VIII-A: "It may not be feasible to model-check signaling paths
with more than one flowlink ...  checking a path with two flowlinks
might take something like 900 Gb of memory and 300 hours.  Even if
these numbers over-estimate the impact of another flowlink by an order
of magnitude, they are still forbidding."

At our models' abstraction level (descriptor versions, bounded
nondeterminism budgets) the two-flowlink checks become feasible — and
they pass, which is evidence for the inductive conjecture of
Sec. VIII-B (a path of any length converges).
"""

import pytest

from repro.verification import PATH_TYPES, build_model, verify_model


@pytest.mark.parametrize("path_type", sorted(PATH_TYPES))
def test_two_flowlink_path_verifies(benchmark, reproduce, perf_row,
                                    path_type):
    model = build_model(path_type, flowlinks=2)
    result = benchmark.pedantic(verify_model, args=(model,),
                                kwargs={"max_states": 3_000_000},
                                rounds=1, iterations=1)
    reproduce("verify %s" % result.key, "safety+spec (paper: infeasible)",
              "unknown", "pass" if result.ok else "FAIL")
    assert result.safety_ok
    assert result.property_ok
    assert not result.truncated
    perf_row(result.key, result.states, result.transitions,
             result.elapsed, config="twolink")


def test_second_flowlink_growth_factor(benchmark, reproduce):
    """Each extra flowlink multiplies the state space by a comparable
    factor — the exponential the paper extrapolated from."""
    rows = {}
    for k in (0, 1, 2):
        model = build_model("OO", flowlinks=k)
        rows[k] = verify_model(model, max_states=3_000_000)
    benchmark.pedantic(verify_model,
                       args=(build_model("OO", flowlinks=2),),
                       rounds=1, iterations=1)
    first = rows[1].states / rows[0].states
    second = rows[2].states / rows[1].states
    reproduce("2nd flowlink (OO)", "state growth factor",
              first, second, unit="x")
    assert second > 2.0
    # same order of magnitude as the first flowlink's factor
    assert 0.2 < second / first < 5.0
