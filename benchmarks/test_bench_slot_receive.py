"""Slot-receive hot-path guard (not a paper artifact).

The third perf wave moved the strict/reliable slot FSM receive path
into the compiled backend (``slot_fsm_fast``), batched same-instant
cross-link deliveries (``receive_batch``), and inlined the accepted-
signal goal dispatch.  This module guards that machinery the same two
ways ``test_bench_trace_overhead.py`` guards tracing:

* *structurally* — the workloads execute a pinned event schedule
  (``expected_executed``), so a "speedup" that skips or reorders work
  cannot hide;
* *in wall-clock* — the two receive-dominated workloads recorded in
  ``baselines/slot_receive_seed.json`` must run within a generous
  tolerance band (3x) of the recorded pure-Python best.  The band
  absorbs shared-runner noise; a real per-receive regression
  (thousands of receives per workload) would blow through it.

The baseline was recorded under ``REPRO_BACKEND=python``; the compiled
backend runs the same gate and simply enjoys more headroom.
"""

import json
import os
import time

from repro import AUDIO, Network

_BASELINE_PATH = os.path.join(os.path.dirname(__file__), "baselines",
                              "slot_receive_seed.json")
#: Generous: wall clock on shared runners jitters; the workloads run
#: thousands of receives, so a true hot-path regression does not hide
#: inside 3x.
_TOLERANCE = 3.0


def _baseline(workload: str) -> dict:
    with open(_BASELINE_PATH) as fh:
        return json.load(fh)["workloads"][workload]


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# the recorded workloads, byte-for-byte the baseline recipes
# ----------------------------------------------------------------------
def _direct_churn_200() -> int:
    """Device-to-device open/close churn: every receive is a strict
    reliable slot transition — the ``slot_fsm_fast`` kernel's exact
    domain, with no flowlink in the way."""
    net = Network(seed=0)
    a = net.device("A")
    b = net.device("B", auto_accept=True)
    ch = net.channel(a, b)
    slot = ch.end_for(a).slot()
    for _ in range(200):
        a.open(slot, AUDIO)
        net.settle()
        a.close(slot)
        net.settle()
    return net.loop.executed


def _relay_churn_100() -> int:
    """Device-box-device churn through one flowlink: adds the batched
    cross-link delivery walk and the inlined goal dispatch on top of
    the FSM kernels."""
    net = Network(seed=0)
    a = net.device("A")
    b = net.device("B", auto_accept=True)
    box = net.box("srv")
    ch_a = net.channel(a, box)
    ch_b = net.channel(box, b)
    box.flow_link(ch_a.end_for(box).slot(), ch_b.end_for(box).slot())
    slot = ch_a.end_for(a).slot()
    for _ in range(100):
        a.open(slot, AUDIO)
        net.settle()
        a.close(slot)
        net.settle()
    return net.loop.executed


_WORKLOADS = {
    "direct_churn_200": _direct_churn_200,
    "relay_churn_100": _relay_churn_100,
}


def _gate(workload: str) -> None:
    base = _baseline(workload)
    fn = _WORKLOADS[workload]
    # The schedule is pinned first: a fast run that executed different
    # events measured a different workload.
    assert fn() == base["expected_executed"], \
        "event schedule drifted from the recorded %s seed" % workload
    best = _best_of(fn)
    assert best <= _TOLERANCE * base["best"], (
        "%s regressed: %.4fs best vs %.4fs recorded (tolerance %.1fx)"
        % (workload, best, base["best"], _TOLERANCE))


def test_direct_slot_receive_within_baseline_band():
    _gate("direct_churn_200")


def test_relay_receive_within_baseline_band():
    _gate("relay_churn_100")
