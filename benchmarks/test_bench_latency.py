"""E8/E9 — Sec. VIII-C latency reproduction.

Regenerates the two quantitative claims of the performance section:

* Fig. 13's concurrent-relink scenario has latency ``2n + 3c`` = 128 ms
  with the paper's constants (c = 20 ms, n = 34 ms);
* the general law ``p·n + (p+1)·c`` over path length.

The pytest-benchmark timings measure the cost of *regenerating* each
result (simulator wall time); the reproduced quantity is simulated
latency, asserted against the closed form.
"""

import pytest

from repro.analysis import (PAPER_FIG13_MS, compositional_path_latency,
                            fig13_latency, measure_fig13,
                            measure_path_sweep)
from repro.network.latency import PAPER_C, PAPER_N


def test_fig13_scenario_latency(benchmark, reproduce):
    result = benchmark.pedantic(measure_fig13, rounds=3, iterations=1)
    reproduce("Fig. 13 (ours, concurrent)", "signaling latency",
              PAPER_FIG13_MS, result.measured_ms)
    assert result.measured_ms == pytest.approx(128.0, abs=1.0)
    assert result.predicted_ms == pytest.approx(
        fig13_latency(PAPER_N, PAPER_C) * 1000.0)
    benchmark.extra_info["measured_ms"] = result.measured_ms


@pytest.mark.parametrize("p", [1, 2, 3, 4, 6, 8])
def test_path_length_law(benchmark, reproduce, p):
    results = benchmark.pedantic(measure_path_sweep, args=([p],),
                                 rounds=1, iterations=1)
    m = results[0]
    predicted_ms = compositional_path_latency(p) * 1000.0
    reproduce("Sec. VIII-C law, p=%d" % p, "p*n + (p+1)*c",
              predicted_ms, m.measured_ms)
    # The simulated protocol obeys the paper's law exactly.
    assert m.measured_ms == pytest.approx(predicted_ms, abs=1.0)


def test_latency_independent_of_other_tunnels(benchmark, reproduce):
    """Sec. VIII-C: "This latency is not directly affected by other
    activity in the system" — re-measuring with different seeds and
    scenarios around it gives the same 2n+3c."""
    benchmark.pedantic(measure_fig13, kwargs={"seed": 1},
                       rounds=1, iterations=1)
    values = [measure_fig13(seed=s).measured_ms for s in range(3)]
    for value in values:
        assert value == pytest.approx(128.0, abs=1.0)
    reproduce("Fig. 13 stability", "latency across seeds",
              PAPER_FIG13_MS, values[0])
