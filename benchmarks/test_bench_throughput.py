"""Simulator throughput micro-benchmarks (not a paper artifact).

These keep the substrate honest: the latency and verification
experiments above are only as trustworthy as the event loop and
protocol engine they run on, so wall-clock throughput is tracked here
for regression purposes.
"""

import pytest

from repro import AUDIO, Network
from repro.network.eventloop import EventLoop


def test_event_loop_throughput(benchmark):
    def churn():
        loop = EventLoop()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                loop.schedule(0.001, tick)

        loop.schedule(0.0, tick)
        loop.run()
        return count[0]

    assert benchmark(churn) == 20_000


def test_call_setup_teardown_throughput(benchmark):
    def one_batch():
        net = Network(seed=0)
        a = net.device("A")
        b = net.device("B", auto_accept=True)
        box = net.box("srv")
        ch_a = net.channel(a, box)
        ch_b = net.channel(box, b)
        box.flow_link(ch_a.end_for(box).slot(), ch_b.end_for(box).slot())
        slot = ch_a.end_for(a).slot()
        for _ in range(50):
            a.open(slot, AUDIO)
            net.settle()
            a.close(slot)
            net.settle()
        return net.loop.executed

    events = benchmark(one_batch)
    assert events > 1000


def test_model_checker_states_per_second(benchmark):
    from repro.verification import build_model, explore

    def explore_oo_link():
        return explore(build_model("OO", True).system).state_count

    states = benchmark(explore_oo_link)
    assert states > 1000
