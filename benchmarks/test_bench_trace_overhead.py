"""Disabled-tracing overhead guard (not a paper artifact).

The observability subsystem's contract is "free when disabled": an
untraced run pays one ``loop.trace is None`` attribute test per
would-be event and nothing else.  This module holds that contract two
ways:

* *structurally* — a default :class:`~repro.network.network.Network`
  has no tracer, no transmit hooks, and executes exactly the same
  event count (and fingerprint) as a traced twin of the same seed;
* *in wall-clock* — the two seed workloads recorded in
  ``baselines/throughput_seed.json`` **before** the runtime was
  instrumented must still run within a generous tolerance band of
  their pre-instrumentation best.  The band (3x) absorbs shared-CI
  noise; a true per-event regression (the hot paths run 20k+ events)
  would blow through it.
"""

import json
import os
import time

from repro import AUDIO, Network
from repro.network.eventloop import EventLoop

_BASELINE_PATH = os.path.join(os.path.dirname(__file__), "baselines",
                              "throughput_seed.json")
#: Generous: wall clock on shared runners jitters, per-event overhead
#: multiplied over 20k events does not hide inside 3x.
_TOLERANCE = 3.0


def _baseline(workload: str) -> float:
    with open(_BASELINE_PATH) as fh:
        return json.load(fh)["workloads"][workload]["best"]


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# the recorded seed workloads, byte-for-byte the baseline recipes
# ----------------------------------------------------------------------
def _event_loop_churn_20k() -> int:
    loop = EventLoop()
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < 20_000:
            loop.schedule(0.001, tick)

    loop.schedule(0.0, tick)
    loop.run()
    return count[0]


def _call_setup_teardown_50() -> int:
    net = Network(seed=0)
    a = net.device("A")
    b = net.device("B", auto_accept=True)
    box = net.box("srv")
    ch_a = net.channel(a, box)
    ch_b = net.channel(box, b)
    box.flow_link(ch_a.end_for(box).slot(), ch_b.end_for(box).slot())
    slot = ch_a.end_for(a).slot()
    for _ in range(50):
        a.open(slot, AUDIO)
        net.settle()
        a.close(slot)
        net.settle()
    return net.loop.executed


def test_event_loop_churn_within_baseline_band():
    assert _event_loop_churn_20k() == 20_000  # warm imports, then time
    best = _best_of(_event_loop_churn_20k)
    assert best <= _TOLERANCE * _baseline("event_loop_churn_20k"), \
        "untraced event-loop churn regressed vs pre-instrumentation seed"


def test_call_setup_teardown_within_baseline_band():
    assert _call_setup_teardown_50() > 1000
    best = _best_of(_call_setup_teardown_50)
    assert best <= _TOLERANCE * _baseline("call_setup_teardown_50"), \
        "untraced call setup/teardown regressed vs pre-instrumentation seed"


# ----------------------------------------------------------------------
# structural no-op: disabled means *nothing* is installed
# ----------------------------------------------------------------------
def test_untraced_network_installs_nothing():
    net = Network(seed=0)
    assert net.trace is None
    assert net.loop.trace is None
    a = net.device("a")
    b = net.device("b", auto_accept=True)
    ch = net.channel(a, b)
    assert ch.link._hooks == []
    assert ch.link._chain == ch.link._base_transmit


def test_traced_and_untraced_runs_execute_identically():
    def run(trace):
        net = Network(seed=11, trace=trace)
        a = net.device("a")
        b = net.device("b", auto_accept=True)
        ch = net.channel(a, b)
        a.open(ch.initiator_end.slot(), AUDIO)
        net.settle()
        a.close(ch.initiator_end.slot())
        net.settle()
        return net.loop.executed, net.now, net.plane.two_way(a, b)

    assert run(False) == run(True)
