"""The transport seam: half-channels over arbitrary byte transports.

The simulator's :class:`~repro.protocol.channel.SignalingChannel` rides
a :class:`~repro.network.transport.Link` whose two ends both live in one
process.  The seam keeps that object graph *unchanged* and replaces only
the far half: a :class:`HalfChannel` is a real ``SignalingChannel``
between the local agent and a :class:`RemoteRelay`, whose link end —
instead of processing envelopes through slots — encodes each one
(:func:`~repro.livenet.wire.encode_envelope`) and hands the bytes to a
transport callback.  Envelopes decoded off the wire are injected at the
relay's end and travel the link into the *unchanged* local machinery:
slots, goals, retransmission timers, admission control, tracing.

Because the local half is byte-for-byte the simulator's code path, the
runtime fingerprints that pin the sim also pin the live stack's local
semantics; only delivery latency differs.  The :class:`Wire` protocol
documents the seam contract the simulator's ``LinkEnd`` already
satisfies — the simulator is the null transport.

Teardown maps onto the paper's degradation path in both directions:

* local hangup → the ``TearDown`` meta-signal crosses the wire like any
  envelope and kills the remote half;
* transport death (reconnect budget exhausted, peer gone) →
  :meth:`HalfChannel.abandon` injects the same ``TearDown`` locally, so
  the owner sees the ordinary ``on_channel_gone`` / ``noMedia`` path it
  already handles for a closed sim channel.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Protocol

from ..network.eventloop import EventLoop
from ..protocol.channel import (DEFAULT_TUNNEL, ChannelEnd, SignalingAgent,
                                SignalingChannel)
from ..protocol.signals import MetaMessage, MetaSignal, TearDown, TunnelSignal
from ..protocol.slot import RetransmitPolicy, Slot
from .wire import encode_envelope

__all__ = ["Wire", "RemoteRelay", "HalfChannel"]

#: Transport callback: receives one encoded envelope headed off-process.
FrameSink = Callable[[bytes], None]


class Wire(Protocol):
    """What a signaling channel end needs from its carrier.

    :class:`~repro.network.transport.LinkEnd` satisfies this protocol
    as-is — the simulator implements the seam unchanged.  A live
    transport satisfies it through :class:`HalfChannel`, which bridges
    the same two calls onto encoded frames.
    """

    def send(self, message: object) -> None:
        """Carry ``message`` (a wire envelope) to the far side, FIFO."""

    def set_receiver(self, receiver: Callable[[object], None]) -> None:
        """Install the callback for messages arriving from the far side."""


class RemoteRelay(SignalingAgent):
    """The local stand-in for an agent in another OS process.

    It owns the far :class:`~repro.protocol.channel.ChannelEnd` of a
    half-channel purely structurally — its receiver is replaced before
    any signal can arrive, so the ``on_*`` hooks are unreachable.  Its
    ``name`` is the remote agent's name, which keeps admission-control
    tenant accounting meaningful across the wire.
    """

    def on_tunnel_signal(self, slot: Slot,
                         signal: TunnelSignal) -> None:  # pragma: no cover
        raise AssertionError("relay end must never process signals")

    def on_meta(self, end: ChannelEnd,
                signal: MetaSignal) -> None:  # pragma: no cover
        raise AssertionError("relay end must never process signals")


class HalfChannel:
    """One process's half of a live signaling channel.

    Parameters
    ----------
    loop:
        The process's repro :class:`~repro.network.eventloop.EventLoop`.
    agent:
        The local owner (box, device, resource) — unchanged sim code.
    sink:
        Called synchronously with each encoded envelope headed to the
        remote process.
    channel_id:
        Globally unique id; frames on the transport are scoped by it.
    remote_name:
        The far agent's name (relay identity / admission tenant).
    outbound:
        True when this process initiated the channel.  The initiator
        side announces ``ChannelUp`` itself and the meta-signal crosses
        the wire like any envelope, exactly as it crosses a sim link —
        the responder half is created with no local announcement.
    """

    def __init__(self, loop: EventLoop, agent: SignalingAgent,
                 sink: FrameSink, channel_id: str, remote_name: str,
                 outbound: bool, target: str = "",
                 tunnel_ids: Iterable[str] = (DEFAULT_TUNNEL,),
                 retransmit: Optional[RetransmitPolicy] = None,
                 strict: bool = False):
        self.channel_id = channel_id
        self.outbound = outbound
        self.remote_name = remote_name
        self._sink = sink
        #: True until either side's TearDown passes the seam.
        self.alive = True
        #: Called once, when the channel dies (either direction).
        self.on_closed: Optional[Callable[["HalfChannel"], None]] = None
        self.relay = RemoteRelay(loop, name=remote_name)
        if outbound:
            initiator: SignalingAgent = agent
            responder: SignalingAgent = self.relay
            self._local_side, self._relay_side = 0, 1
        else:
            initiator, responder = self.relay, agent
            self._local_side, self._relay_side = 1, 0
        # Wire input is untrusted, so live slots run lenient (strict
        # would let a malformed-but-decodable signal sequence raise in
        # the middle of the event loop; lenient drops and traces it).
        self.channel = SignalingChannel(
            loop, initiator, responder, tunnel_ids=tunnel_ids,
            target=target, name=channel_id, strict=strict,
            announce=outbound, retransmit=retransmit)
        self._wire_end = self.channel.link.ends[self._relay_side]
        # Replace the relay-side receiver: envelopes reaching the far
        # end of the link leave the process instead of entering slots.
        self._wire_end.set_receiver(self._ship)

    # -- identity ---------------------------------------------------------
    @property
    def end(self) -> ChannelEnd:
        """The local agent's channel end (ordinary sim object)."""
        return self.channel.ends[self._local_side]

    def slot(self, tunnel_id: str = DEFAULT_TUNNEL) -> Slot:
        return self.end.slot(tunnel_id)

    # -- outbound ---------------------------------------------------------
    def _ship(self, message: object) -> None:
        """Relay-side delivery: encode and hand to the transport.

        Runs inside the repro loop's drain (link latency 0), so frames
        leave in exactly the order the local half emitted them.
        """
        if not self.alive:
            return
        teardown = (type(message) is MetaMessage
                    and isinstance(message.signal, TearDown))
        self._sink(encode_envelope(message))  # type: ignore[arg-type]
        if teardown:
            # Local hangup completed its trip through the seam; the
            # remote half dies when the frame lands.  The local end shut
            # itself down when it sent this, so retiring the relay end
            # tears the link down too (both ends dead).
            self._finish()

    # -- inbound ----------------------------------------------------------
    def inject(self, envelope: object) -> None:
        """Deliver one decoded envelope from the wire to the local half.

        The envelope enters at the relay's link end and rides the link
        (latency 0, FIFO) into the unchanged ChannelEnd/slot machinery.
        """
        if not self.alive:
            return
        teardown = (type(envelope) is MetaMessage
                    and isinstance(envelope.signal, TearDown))
        self._wire_end.send(envelope)
        if teardown:
            # The TearDown delivery is now in flight on the link; the
            # link must stay up until the local end processes it.
            # Retiring the relay end arranges exactly that: the local
            # end's own ``_shutdown`` sees its peer dead and tears the
            # link down after the noMedia degradation completes.
            self._finish()

    # -- death ------------------------------------------------------------
    def abandon(self, reason: str = "transport-lost") -> None:
        """The transport under this channel is gone for good: degrade
        through the ordinary path by injecting the ``TearDown`` the
        remote side can no longer send.  The owner observes exactly what
        it observes for a peer-initiated teardown — ``on_channel_gone``,
        force-closed slots, media stopped (``noMedia``)."""
        if not self.alive:
            return
        self.inject(MetaMessage(TearDown()))

    def _finish(self) -> None:
        self.alive = False
        # Retire the relay's channel end through the ordinary shutdown
        # path (no notification — the relay has no program).  Whichever
        # end dies second tears the link down, so an in-flight TearDown
        # delivery toward the local end is never cancelled under it.
        self.channel.ends[self._relay_side]._shutdown(notify=False)
        if self.on_closed is not None:
            self.on_closed(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<HalfChannel %s %s %s>" % (
            self.channel_id, "out" if self.outbound else "in",
            "up" if self.alive else "down")
