"""Direction-wise signal journals: the sim-vs-live parity instrument.

A live run and a simulated run of the same scenario cannot produce the
same *interleaved* signal order — wall-clock delivery means the local
side may emit its next signal before or after a remote one lands, and
both orders are correct.  What both worlds do guarantee is FIFO per
direction: the sequence of envelopes each side *sends* on a channel, and
the sequence it *receives*, are each fully determined by the protocol
machines.  So the journal records the two directions separately, and its
fingerprint hashes the sent-sequence and the received-sequence with a
direction tag — identical for a sim reference run and a live run
whenever the protocol exchange is identical.

Envelopes are journaled as their :mod:`repro.livenet.wire` encodings, so
the fingerprint also covers field-level byte equality (descriptors,
addresses, codecs), not just signal names.

For the bytes to match, both worlds must mint identical descriptors,
which requires identical media *hosts*.  :func:`host_for` derives a
host deterministically from the endpoint's name, so a live process and
the single-process reference run agree without coordination.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Callable, List

from ..protocol.channel import SignalingChannel
from .wire import encode_envelope

__all__ = ["SignalJournal", "host_for", "reference_fingerprint"]


def host_for(name: str) -> str:
    """Deterministic simulated media host for the endpoint ``name``.

    Hashes the name into the ``10.128/9`` half of the simulator's
    address space (the sequential allocator mints hosts far below
    ``10.128``), so journal-pinned descriptors are reproducible in any
    process without talking to a shared allocator.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return "10.%d.%d.%d" % (128 + (digest[0] & 0x7F), digest[1], digest[2])


class SignalJournal:
    """Records one channel's wire traffic, split by direction.

    Attach with :meth:`attach` from one side's perspective; envelopes
    that side emits land in ``sent``, envelopes it receives land in
    ``received``, both as canonical wire encodings.  Works identically
    on a pure sim channel and on a live half-channel, because both carry
    traffic through the same :class:`~repro.network.transport.Link` —
    the hook is the existing observability seam, so recording perturbs
    neither path.
    """

    def __init__(self) -> None:
        self.sent: List[bytes] = []
        self.received: List[bytes] = []
        self._detach: Callable[[], None] = lambda: None

    # -- recording --------------------------------------------------------
    def attach(self, channel: SignalingChannel, local_side: int) -> None:
        """Start journaling ``channel`` as seen from ``ends[local_side]``.

        The transmit hook is installed outermost, so it observes traffic
        before any fault policy and regardless of backend — the compiled
        transmit kernel routes hooked links through the Python chain.
        """
        link = channel.link
        local_end = link.ends[local_side]

        def record(origin: Any, message: Any,
                   forward: Callable[[Any, Any], None]) -> None:
            entry = encode_envelope(message)
            if origin is local_end:
                self.sent.append(entry)
            else:
                self.received.append(entry)
            forward(origin, message)

        link.add_transmit_hook(record)
        self._detach = lambda: link.remove_transmit_hook(record)

    def detach(self) -> None:
        """Stop recording (keeps what was captured)."""
        self._detach()
        self._detach = lambda: None

    # -- direct recording (live nodes feed these off the socket path) ----
    def record_sent(self, encoded: bytes) -> None:
        self.sent.append(encoded)

    def record_received(self, encoded: bytes) -> None:
        self.received.append(encoded)

    # -- the verdict ------------------------------------------------------
    def fingerprint(self) -> str:
        """Order-sensitive digest over each direction separately.

        Length-prefixes every entry so the encoding is injective, tags
        the two directions, and never mixes them — the quantity both a
        sim and a live run can agree on.
        """
        h = hashlib.sha256()
        for tag, entries in ((b"S", self.sent), (b"R", self.received)):
            h.update(tag)
            h.update(struct.pack(">I", len(entries)))
            for entry in entries:
                h.update(struct.pack(">I", len(entry)))
                h.update(entry)
        return h.hexdigest()

    def summary(self) -> dict:
        """Counts plus fingerprint, for gateway/demo JSON output."""
        return {
            "sent": len(self.sent),
            "received": len(self.received),
            "fingerprint": self.fingerprint(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<SignalJournal S=%d R=%d>" % (
            len(self.sent), len(self.received))


def reference_fingerprint(caller: str, box: str, target: str,
                          medium: str = "audio") -> str:
    """The sim's verdict on a first live call: run the canonical gateway
    scenario — ``caller ── box ── target`` with a flow link at the box
    and an auto-accepting callee — entirely in one simulator process,
    journal the box→callee leg from the box side, and return its
    fingerprint.

    A live call through the gateway must produce the identical
    direction-wise fingerprint on its live leg, *provided* it is the
    first call each participating process has placed (descriptor
    versions and media ports advance monotonically per process, so
    later calls legitimately mint different bytes).
    """
    from ..network.network import Network

    net = Network(seed=0)
    caller_dev = net.device(caller, host=host_for(caller))
    box_agent = net.box(box)
    callee = net.device(target, auto_accept=True, host=host_for(target))
    ch1 = net.channel(caller_dev, box_agent)
    ch2 = net.channel(box_agent, callee, target=target, strict=False)
    journal = SignalJournal()
    journal.attach(ch2, 0)
    box_agent.flow_link(ch1.responder_end.slot(),
                        ch2.initiator_end.slot())
    caller_dev.open(ch1.initiator_end.slot(), medium)
    net.settle()
    return journal.fingerprint()
