"""The wire codec: deterministic, versioned, bounded.

Everything that crosses a process boundary is encoded here, by hand,
with explicit field order — no pickling, no reflection.  The format is
deterministic (one value, one byte sequence) so signal journals can be
fingerprinted, and *strictly* decoded: wire input is adversarial, so
every length is bounded, every tag checked, and every frame must be
consumed exactly.  Violations raise :class:`WireError`, never a bare
``struct.error`` or ``IndexError``.

Layout
------
A *frame* on a stream transport is ``u32 big-endian length`` + payload;
the payload is ``u8 wire-version`` + ``u8 frame-type`` + body.  Frame
types carry channel control (``HELLO``/``BYE``), signal envelopes
(``SIG``), and keepalives (``PING``/``PONG``).

Primitive encodings: unsigned LEB128 varints for lengths and counts,
zigzag varints for signed ints, ``>d`` for floats, varint-length-prefixed
UTF-8 for strings.  Composites (codec, address, descriptor, selector,
signal, envelope) are concatenations of primitives behind a one-byte
tag, in the field order of their dataclass definitions.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from ..network.address import Address, AddressError
from ..protocol.codecs import Codec, registry
from ..protocol.descriptor import Descriptor, DescriptorId, Selector
from ..protocol.errors import MediaControlError, ProtocolError
from ..protocol.signals import (AppMeta, Available, Busy, ChannelUp, Close,
                                CloseAck, Describe, MetaMessage, MetaSignal,
                                Oack, Open, Select, TearDown, TunnelMessage,
                                TunnelSignal, Unavailable)

__all__ = [
    "WIRE_VERSION", "MAX_FRAME", "WireError",
    "encode_envelope", "decode_envelope",
    "encode_signal", "decode_signal",
    "frame", "FrameAssembler",
    "HelloFrame", "SigFrame", "ByeFrame", "PingFrame", "PongFrame",
    "ProbeFrame", "encode_frame", "decode_frame", "encode_sig_frame",
]

#: Bump on any change to field order or tags.  A peer speaking another
#: version is refused at decode time, not guessed at.
WIRE_VERSION = 1

#: Hard cap on one frame's payload.  Signaling frames are tiny (a
#: descriptor-bearing open is ~100 bytes); anything near the cap is an
#: attack or a desynchronized stream.
MAX_FRAME = 1 << 20

_MAX_STR = 4096
_MAX_CODECS = 64
_MAX_TUNNELS = 64
_MAX_PAYLOAD = 1 << 16

_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")


class WireError(MediaControlError):
    """Malformed, truncated, oversized, or wrong-version wire data.

    ``reason`` is a stable slug (``"truncated"``, ``"bad-tag"``,
    ``"version-mismatch"``, ``"oversized"``, ``"trailing-bytes"``, ...)
    so transports can count rejection causes without string matching.
    """

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail
        super().__init__("wire error: %s%s"
                         % (reason, " (%s)" % detail if detail else ""))


# ----------------------------------------------------------------------
# primitive writer / reader
# ----------------------------------------------------------------------
class Writer:
    """Append-only encoder over a bytearray."""

    __slots__ = ("buf",)

    def __init__(self) -> None:
        self.buf = bytearray()

    def u8(self, value: int) -> None:
        self.buf.append(value)

    def uvarint(self, value: int) -> None:
        if value < 0:
            raise WireError("negative-varint", str(value))
        buf = self.buf
        while value > 0x7F:
            buf.append((value & 0x7F) | 0x80)
            value >>= 7
        buf.append(value)

    def svarint(self, value: int) -> None:
        # Zigzag: 0,-1,1,-2,... -> 0,1,2,3,...  (Python's arbitrary-
        # precision ints make the sign branch explicit and exact.)
        self.uvarint((value << 1) if value >= 0 else (-value << 1) - 1)

    def f64(self, value: float) -> None:
        self.buf += _F64.pack(value)

    def string(self, value: str) -> None:
        raw = value.encode("utf-8")
        if len(raw) > _MAX_STR:
            raise WireError("oversized", "string of %d bytes" % len(raw))
        self.uvarint(len(raw))
        self.buf += raw

    def boolean(self, value: bool) -> None:
        self.buf.append(1 if value else 0)

    def raw(self, data: bytes) -> None:
        self.uvarint(len(data))
        self.buf += data

    def getvalue(self) -> bytes:
        return bytes(self.buf)


class Reader:
    """Strict, bounds-checked decoder.  Every read raises
    :class:`WireError` on truncation; :meth:`done` rejects trailing
    bytes so a frame is consumed exactly."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def _need(self, n: int) -> int:
        pos = self.pos
        if pos + n > len(self.data):
            raise WireError("truncated",
                            "need %d bytes at offset %d of %d"
                            % (n, pos, len(self.data)))
        self.pos = pos + n
        return pos

    def u8(self) -> int:
        return self.data[self._need(1)]

    def uvarint(self) -> int:
        shift = 0
        value = 0
        while True:
            byte = self.u8()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise WireError("bad-varint", "more than 9 continuation "
                                "bytes")

    def svarint(self) -> int:
        raw = self.uvarint()
        return (raw >> 1) ^ -(raw & 1)

    def f64(self) -> float:
        return _F64.unpack_from(self.data, self._need(8))[0]

    def string(self, limit: int = _MAX_STR) -> str:
        length = self.uvarint()
        if length > limit:
            raise WireError("oversized", "string of %d bytes" % length)
        raw = self.data[self._need(length):self.pos]
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError("bad-utf8", str(exc))

    def boolean(self) -> bool:
        byte = self.u8()
        if byte > 1:
            raise WireError("bad-bool", str(byte))
        return bool(byte)

    def raw(self, limit: int = _MAX_PAYLOAD) -> bytes:
        length = self.uvarint()
        if length > limit:
            raise WireError("oversized", "blob of %d bytes" % length)
        return self.data[self._need(length):self.pos]

    def done(self) -> None:
        if self.pos != len(self.data):
            raise WireError("trailing-bytes",
                            "%d unconsumed" % (len(self.data) - self.pos))


# ----------------------------------------------------------------------
# protocol composites
# ----------------------------------------------------------------------
#: Built-in codecs are sent by name only (tag 0); unknown codecs travel
#: with their full definition (tag 1) so private codec tables still
#: round-trip.
_REGISTRY = registry()


def _put_codec(w: Writer, codec: Codec) -> None:
    known = _REGISTRY.get(codec.name)
    if known is not None and known == codec:
        w.u8(0)
        w.string(codec.name)
    else:
        w.u8(1)
        w.string(codec.name)
        w.string(codec.medium)
        w.svarint(codec.fidelity)
        w.f64(codec.bandwidth)


def _get_codec(r: Reader) -> Codec:
    tag = r.u8()
    if tag == 0:
        name = r.string()
        codec = _REGISTRY.get(name)
        if codec is None:
            raise WireError("unknown-codec", name)
        return codec
    if tag == 1:
        return Codec(r.string(), r.string(), r.svarint(), r.f64())
    raise WireError("bad-tag", "codec tag %d" % tag)


def _put_address(w: Writer, address: Optional[Address]) -> None:
    if address is None:
        w.boolean(False)
    else:
        w.boolean(True)
        w.string(address.host)
        w.uvarint(address.port)


def _get_address(r: Reader) -> Optional[Address]:
    if not r.boolean():
        return None
    host = r.string()
    port = r.uvarint()
    try:
        return Address(host, port).validate()
    except AddressError as exc:
        raise WireError("bad-address", str(exc))


def _put_descriptor(w: Writer, descriptor: Descriptor) -> None:
    w.string(descriptor.id.origin)
    w.uvarint(descriptor.id.version)
    _put_address(w, descriptor.address)
    codecs = descriptor.codecs
    if len(codecs) > _MAX_CODECS:
        raise WireError("oversized", "%d codecs" % len(codecs))
    w.uvarint(len(codecs))
    for codec in codecs:
        _put_codec(w, codec)


def _get_descriptor(r: Reader) -> Descriptor:
    origin = r.string()
    version = r.uvarint()
    address = _get_address(r)
    count = r.uvarint()
    if count > _MAX_CODECS:
        raise WireError("oversized", "%d codecs" % count)
    codecs = tuple(_get_codec(r) for _ in range(count))
    try:
        # Descriptor.__post_init__ re-validates structure (at least one
        # codec, noMedia purity, address present iff real) — the same
        # hygiene the sim enforces, now applied to wire input.
        return Descriptor(DescriptorId(origin, version), address, codecs)
    except ProtocolError as exc:
        raise WireError("bad-descriptor", str(exc))


def _put_selector(w: Writer, selector: Selector) -> None:
    w.string(selector.answers.origin)
    w.uvarint(selector.answers.version)
    _put_address(w, selector.address)
    _put_codec(w, selector.codec)


def _get_selector(r: Reader) -> Selector:
    origin = r.string()
    version = r.uvarint()
    address = _get_address(r)
    codec = _get_codec(r)
    return Selector(DescriptorId(origin, version), address, codec)


# ----------------------------------------------------------------------
# signals
# ----------------------------------------------------------------------
_OPEN, _OACK, _CLOSE, _CLOSEACK = 0x10, 0x11, 0x12, 0x13
_DESCRIBE, _SELECT, _BUSY = 0x14, 0x15, 0x16
_CHANNEL_UP, _TEARDOWN, _AVAILABLE = 0x20, 0x21, 0x22
_UNAVAILABLE, _APPMETA = 0x23, 0x24

Signal = Union[TunnelSignal, MetaSignal]


def _put_signal(w: Writer, signal: Signal) -> None:
    cls = type(signal)
    if cls is Open:
        w.u8(_OPEN)
        w.string(signal.medium)
        _put_descriptor(w, signal.descriptor)
    elif cls is Oack:
        w.u8(_OACK)
        _put_descriptor(w, signal.descriptor)
    elif cls is Close:
        w.u8(_CLOSE)
    elif cls is CloseAck:
        w.u8(_CLOSEACK)
    elif cls is Describe:
        w.u8(_DESCRIBE)
        _put_descriptor(w, signal.descriptor)
    elif cls is Select:
        w.u8(_SELECT)
        _put_selector(w, signal.selector)
    elif cls is Busy:
        w.u8(_BUSY)
        w.string(signal.reason)
        w.f64(signal.retry_after)
    elif cls is ChannelUp:
        w.u8(_CHANNEL_UP)
        w.string(signal.target)
    elif cls is TearDown:
        w.u8(_TEARDOWN)
    elif cls is Available:
        w.u8(_AVAILABLE)
    elif cls is Unavailable:
        w.u8(_UNAVAILABLE)
        w.string(signal.reason)
    elif cls is AppMeta:
        w.u8(_APPMETA)
        w.string(signal.name)
        # Canonical JSON (sorted keys, no whitespace) keeps the
        # encoding deterministic for any dict insertion order.
        try:
            raw = json.dumps(signal.payload, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise WireError("bad-payload", str(exc))
        if len(raw) > _MAX_PAYLOAD:
            raise WireError("oversized", "payload of %d bytes" % len(raw))
        w.raw(raw)
    else:
        raise WireError("unknown-signal", cls.__name__)


def _get_signal(r: Reader) -> Signal:
    tag = r.u8()
    if tag == _OPEN:
        return Open(r.string(), _get_descriptor(r))
    if tag == _OACK:
        return Oack(_get_descriptor(r))
    if tag == _CLOSE:
        return Close()
    if tag == _CLOSEACK:
        return CloseAck()
    if tag == _DESCRIBE:
        return Describe(_get_descriptor(r))
    if tag == _SELECT:
        return Select(_get_selector(r))
    if tag == _BUSY:
        return Busy(r.string(), r.f64())
    if tag == _CHANNEL_UP:
        return ChannelUp(r.string())
    if tag == _TEARDOWN:
        return TearDown()
    if tag == _AVAILABLE:
        return Available()
    if tag == _UNAVAILABLE:
        return Unavailable(r.string())
    if tag == _APPMETA:
        name = r.string()
        raw = r.raw()
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise WireError("bad-payload", str(exc))
        if not isinstance(payload, dict):
            raise WireError("bad-payload", "not an object")
        return AppMeta(name, payload)
    raise WireError("bad-tag", "signal tag %d" % tag)


def encode_signal(signal: Signal) -> bytes:
    w = Writer()
    _put_signal(w, signal)
    return w.getvalue()


def decode_signal(data: bytes) -> Signal:
    r = Reader(data)
    signal = _get_signal(r)
    r.done()
    return signal


# ----------------------------------------------------------------------
# envelopes
# ----------------------------------------------------------------------
_ENV_TUNNEL, _ENV_META = 0x01, 0x02

Envelope = Union[TunnelMessage, MetaMessage]


def _put_envelope(w: Writer, message: Envelope) -> None:
    if type(message) is TunnelMessage:
        w.u8(_ENV_TUNNEL)
        w.string(message.tunnel_id)
        _put_signal(w, message.signal)
    elif type(message) is MetaMessage:
        w.u8(_ENV_META)
        _put_signal(w, message.signal)
    else:
        raise WireError("unknown-envelope", type(message).__name__)


def _get_envelope(r: Reader) -> Envelope:
    tag = r.u8()
    if tag == _ENV_TUNNEL:
        tunnel_id = r.string()
        signal = _get_signal(r)
        if not isinstance(signal, TunnelSignal):
            raise WireError("bad-tag", "meta signal in tunnel envelope")
        return TunnelMessage(tunnel_id, signal)
    if tag == _ENV_META:
        signal = _get_signal(r)
        if not isinstance(signal, MetaSignal):
            raise WireError("bad-tag", "tunnel signal in meta envelope")
        return MetaMessage(signal)
    raise WireError("bad-tag", "envelope tag %d" % tag)


def encode_envelope(message: Envelope) -> bytes:
    """Canonical byte encoding of one wire envelope (also the unit the
    journal fingerprint hashes)."""
    w = Writer()
    _put_envelope(w, message)
    return w.getvalue()


def decode_envelope(data: bytes) -> Envelope:
    r = Reader(data)
    message = _get_envelope(r)
    r.done()
    return message


# ----------------------------------------------------------------------
# transport frames
# ----------------------------------------------------------------------
_FR_HELLO, _FR_SIG, _FR_BYE, _FR_PING, _FR_PONG, _FR_PROBE = \
    1, 2, 3, 4, 5, 6


@dataclass(frozen=True)
class HelloFrame:
    """Opens one signaling channel across a connection.  ``channel_id``
    scopes every later frame; ``initiator`` is the caller-side agent
    name (the admission tenant at the responder); ``target`` is the
    dialed address the responder demultiplexes on."""

    channel_id: str
    initiator: str
    target: str
    tunnel_ids: Tuple[str, ...]


@dataclass(frozen=True)
class SigFrame:
    """One envelope on one channel."""

    channel_id: str
    envelope: Envelope


@dataclass(frozen=True)
class ByeFrame:
    """The sender's half of ``channel_id`` is gone (reason is
    observability only; the authoritative teardown is the ``TearDown``
    meta-signal that normally precedes this)."""

    channel_id: str
    reason: str = ""


@dataclass(frozen=True)
class PingFrame:
    nonce: int = 0


@dataclass(frozen=True)
class PongFrame:
    nonce: int = 0


@dataclass(frozen=True)
class ProbeFrame:
    """Announces the sender's real (bound) UDP media-probe address for
    ``channel_id``, so both processes can exchange actual datagrams once
    the channel's media is flowing.  Purely additive: the negotiated
    in-protocol descriptors still carry the simulated plane's
    deterministic addresses (which the parity fingerprint pins)."""

    channel_id: str
    host: str
    port: int


Frame = Union[HelloFrame, SigFrame, ByeFrame, PingFrame, PongFrame,
              ProbeFrame]


def encode_frame(fr: Frame) -> bytes:
    """Encode one frame payload (version + type + body, unframed)."""
    w = Writer()
    w.u8(WIRE_VERSION)
    cls = type(fr)
    if cls is HelloFrame:
        if len(fr.tunnel_ids) > _MAX_TUNNELS:
            raise WireError("oversized", "%d tunnels" % len(fr.tunnel_ids))
        w.u8(_FR_HELLO)
        w.string(fr.channel_id)
        w.string(fr.initiator)
        w.string(fr.target)
        w.uvarint(len(fr.tunnel_ids))
        for tid in fr.tunnel_ids:
            w.string(tid)
    elif cls is SigFrame:
        w.u8(_FR_SIG)
        w.string(fr.channel_id)
        _put_envelope(w, fr.envelope)
    elif cls is ByeFrame:
        w.u8(_FR_BYE)
        w.string(fr.channel_id)
        w.string(fr.reason)
    elif cls is PingFrame:
        w.u8(_FR_PING)
        w.uvarint(fr.nonce)
    elif cls is PongFrame:
        w.u8(_FR_PONG)
        w.uvarint(fr.nonce)
    elif cls is ProbeFrame:
        w.u8(_FR_PROBE)
        w.string(fr.channel_id)
        w.string(fr.host)
        w.uvarint(fr.port)
    else:
        raise WireError("unknown-frame", cls.__name__)
    return w.getvalue()


def encode_sig_frame(channel_id: str, envelope_bytes: bytes) -> bytes:
    """Splice an already-canonical envelope encoding into a SIG frame
    payload.  The half-channel sink hands the transport exactly the
    bytes :func:`encode_envelope` produced (and the journal recorded);
    re-parsing them only to re-emit identical bytes would be waste."""
    w = Writer()
    w.u8(WIRE_VERSION)
    w.u8(_FR_SIG)
    w.string(channel_id)
    w.buf += envelope_bytes
    return w.getvalue()


def decode_frame(payload: bytes) -> Frame:
    r = Reader(payload)
    version = r.u8()
    if version != WIRE_VERSION:
        raise WireError("version-mismatch",
                        "got %d, speak %d" % (version, WIRE_VERSION))
    kind = r.u8()
    fr: Frame
    if kind == _FR_HELLO:
        channel_id = r.string()
        initiator = r.string()
        target = r.string()
        count = r.uvarint()
        if count > _MAX_TUNNELS:
            raise WireError("oversized", "%d tunnels" % count)
        fr = HelloFrame(channel_id, initiator, target,
                        tuple(r.string() for _ in range(count)))
    elif kind == _FR_SIG:
        fr = SigFrame(r.string(), _get_envelope(r))
    elif kind == _FR_BYE:
        fr = ByeFrame(r.string(), r.string())
    elif kind == _FR_PING:
        fr = PingFrame(r.uvarint())
    elif kind == _FR_PONG:
        fr = PongFrame(r.uvarint())
    elif kind == _FR_PROBE:
        channel_id = r.string()
        host = r.string()
        port = r.uvarint()
        try:
            Address(host, port).validate()
        except AddressError as exc:
            raise WireError("bad-address", exc.reason)
        fr = ProbeFrame(channel_id, host, port)
    else:
        raise WireError("bad-tag", "frame type %d" % kind)
    r.done()
    return fr


# ----------------------------------------------------------------------
# stream framing
# ----------------------------------------------------------------------
def frame(payload: bytes) -> bytes:
    """Length-prefix one payload for a stream transport."""
    if len(payload) > MAX_FRAME:
        raise WireError("oversized", "frame of %d bytes" % len(payload))
    return _U32.pack(len(payload)) + payload


class FrameAssembler:
    """Reassembles length-prefixed frames from a byte stream.

    Feed arbitrary chunks; complete payloads come back in order.  A
    length prefix beyond :data:`MAX_FRAME` poisons the assembler (the
    stream is desynchronized or hostile; the connection must be
    dropped) — every later feed raises too.
    """

    __slots__ = ("_buf", "_poisoned")

    def __init__(self) -> None:
        self._buf = bytearray()
        self._poisoned = False

    def feed(self, data: bytes) -> List[bytes]:
        if self._poisoned:
            raise WireError("poisoned", "assembler already failed")
        buf = self._buf
        buf += data
        frames: List[bytes] = []
        while len(buf) >= 4:
            length = _U32.unpack_from(buf)[0]
            if length > MAX_FRAME:
                self._poisoned = True
                raise WireError("oversized",
                                "frame prefix of %d bytes" % length)
            if len(buf) < 4 + length:
                break
            frames.append(bytes(buf[4:4 + length]))
            del buf[:4 + length]
        return frames

    @property
    def buffered(self) -> int:
        """Bytes awaiting a complete frame (observability)."""
        return len(self._buf)
