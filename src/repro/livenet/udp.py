"""The UDP media probe: real datagrams under a negotiated channel.

The protocol negotiates media *descriptors* on the simulated plane — the
deterministic addresses the parity fingerprint pins.  To demonstrate
that a live channel can actually carry media between two OS processes,
each :class:`~repro.livenet.tcp.LiveNode` may attach one
:class:`MediaProbe`: a bound UDP socket whose real address is exchanged
over the signaling connection (``ProbeFrame``) once media is flowing.
The caller then *blasts* a burst of stamped datagrams at the peer's
probe; the peer echoes each one back; the caller counts echoes.  A
non-zero echo count proves a working bidirectional localhost media path
without perturbing the deterministic control plane at all.

Datagram format (not versioned wire schema — probe traffic never enters
journals or fingerprints)::

    b"RPB?" | key_len u8 | key bytes | seq u16   request
    b"RPB!" | key_len u8 | key bytes | seq u16   echo
"""

from __future__ import annotations

import asyncio
import struct
from typing import Dict, Optional, Tuple

__all__ = ["MediaProbe"]

_REQ = b"RPB?"
_ECHO = b"RPB!"
_MAX_DATAGRAM = 512


class MediaProbe(asyncio.DatagramProtocol):
    """One bound UDP socket per live node: echo server + echo counter."""

    def __init__(self) -> None:
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._addr: Tuple[str, int] = ("", 0)
        #: Echoes received, per stream key (e.g. channel id).
        self.echoes: Dict[bytes, int] = {}
        #: Requests served (observability for the remote side's tests).
        self.served = 0

    # -- lifecycle --------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            lambda: self, local_addr=(host, port))
        self._transport = transport
        self._addr = transport.get_extra_info("sockname")[:2]

    def close(self) -> None:
        transport, self._transport = self._transport, None
        if transport is not None:
            transport.close()

    @property
    def address(self) -> Tuple[str, int]:
        """The really-bound (host, port), valid after :meth:`start`."""
        return self._addr

    # -- datagram protocol ------------------------------------------------
    def datagram_received(self, data: bytes,
                          addr: Tuple[str, int]) -> None:
        if len(data) < 7 or len(data) > _MAX_DATAGRAM:
            return  # not ours; drop silently (UDP is a hostile place)
        magic, rest = data[:4], data[4:]
        key_len = rest[0]
        if len(rest) != 1 + key_len + 2:
            return
        if magic == _REQ:
            self.served += 1
            if self._transport is not None:
                self._transport.sendto(_ECHO + rest, addr)
        elif magic == _ECHO:
            key = bytes(rest[1:1 + key_len])
            self.echoes[key] = self.echoes.get(key, 0) + 1

    # -- sending ----------------------------------------------------------
    def blast(self, dest: Tuple[str, int], key: bytes, count: int) -> int:
        """Fire ``count`` request datagrams at ``dest``, stamped with
        ``key``; returns how many were handed to the socket layer."""
        if self._transport is None or len(key) > 64:
            return 0
        head = _REQ + bytes((len(key),)) + key
        for seq in range(count):
            self._transport.sendto(head + struct.pack(">H", seq & 0xFFFF),
                                   dest)
        return count

    def echo_count(self, key: bytes) -> int:
        return self.echoes.get(key, 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<MediaProbe %s:%d served=%d>" % (
            self._addr[0], self._addr[1], self.served)
