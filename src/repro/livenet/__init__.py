"""Live transports: the same box programs over real sockets.

The paper's original artifact ran box programs on real processes over
real TCP; the rest of this repository runs them inside one deterministic
simulator process.  This package closes that gap without forking the
protocol stack:

* :mod:`repro.livenet.wire` — a deterministic, versioned binary codec
  for every tunnel signal, meta-signal, descriptor, and envelope, plus
  length-prefixed framing.  No pickling; explicit field order; strict,
  bounded decoding (wire input is adversarial).
* :mod:`repro.livenet.seam` — the transport seam.  A signaling channel's
  far half can be replaced by a :class:`~repro.livenet.seam.RemoteRelay`
  bound to any byte transport; the local half (slots, goals, retransmit
  timers, admission) is the *unchanged* simulator code.  The simulator
  itself is the null transport — fingerprints pin it byte-for-byte.
* :mod:`repro.livenet.journal` — direction-wise signal journals whose
  fingerprint is identical for a sim run and a live run of the same
  scenario; the proof obligation of the two-process demo.
* :mod:`repro.livenet.tcp` — an asyncio TCP transport running one
  :class:`~repro.livenet.tcp.LiveNode` per OS process, with per-peer
  reconnect/backoff; a dead peer degrades through the existing
  ``noMedia`` path (channel teardown → ``on_channel_gone``).
* :mod:`repro.livenet.udp` — an optional UDP media probe: once a
  channel is flowing, stamped datagrams travel endpoint-to-endpoint on
  the negotiated addresses.
* :mod:`repro.livenet.gateway` — a minimal HTTP/WebSocket front door
  (``python -m repro serve`` / ``repro call``) with token-bucket rate
  limiting and strict path/address hygiene.
"""

from __future__ import annotations

from .journal import SignalJournal, host_for
from .seam import HalfChannel, RemoteRelay, Wire
from .wire import (FrameAssembler, WIRE_VERSION, WireError,
                   decode_envelope, encode_envelope)

__all__ = [
    "FrameAssembler", "HalfChannel", "RemoteRelay", "SignalJournal",
    "WIRE_VERSION", "Wire", "WireError", "decode_envelope",
    "encode_envelope", "host_for",
]
