"""``python -m repro serve`` / ``call`` / ``live-demo`` — the live stack
from the command line.

::

    python -m repro serve --name boxside --listen 0 --http 8080 \\
        --peer devside=127.0.0.1:9000
    python -m repro serve --name devside --listen 9000 --device bob
    python -m repro call --gateway 127.0.0.1:8080 --to bob@devside --udp 20
    python -m repro live-demo            # all of the above, self-checked

``serve`` runs one :class:`~repro.livenet.tcp.LiveNode` (plus a
:class:`~repro.livenet.gateway.Gateway` unless ``--no-http``) until
SIGINT/SIGTERM, printing one machine-readable ``READY`` line once bound
— scripts parse it for the ephemeral ports.  ``call`` is a plain HTTP
client for a running gateway.  ``live-demo`` is the end-to-end proof:
it spawns a second OS process for the callee, places a call through the
gateway over real localhost sockets, and asserts media flowed, the live
signal journal byte-matches the simulator's reference fingerprint, UDP
probe datagrams echoed, and both processes exit cleanly.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from ..network.address import AddressError, parse_hostport
from .gateway import Gateway
from .journal import host_for
from .tcp import LiveNode
from .udp import MediaProbe

__all__ = ["serve_main", "call_main", "demo_main"]


def _hostport(text: str) -> Tuple[str, int]:
    try:
        return parse_hostport(text)
    except AddressError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _peer(text: str) -> Tuple[str, str, int]:
    name, sep, rest = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            "expected NAME=HOST:PORT, got %r" % text)
    host, port = _hostport(rest)
    return name, host, port


# ----------------------------------------------------------------------
# repro serve
# ----------------------------------------------------------------------
def serve_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run a live node: TCP signaling listener plus an "
                    "HTTP/WebSocket media gateway.")
    parser.add_argument("--name", default="node",
                        help="this node's name (default: node)")
    parser.add_argument("--listen", type=int, default=0, metavar="PORT",
                        help="signaling TCP port (default: ephemeral)")
    parser.add_argument("--listen-host", default="127.0.0.1")
    parser.add_argument("--http", type=int, default=0, metavar="PORT",
                        help="gateway HTTP port (default: ephemeral)")
    parser.add_argument("--http-host", default="127.0.0.1")
    parser.add_argument("--no-http", action="store_true",
                        help="run without the gateway front door")
    parser.add_argument("--peer", type=_peer, action="append",
                        default=[], metavar="NAME=HOST:PORT",
                        help="dialable remote node (repeatable)")
    parser.add_argument("--device", action="append", default=[],
                        metavar="NAME",
                        help="host an auto-accepting callee device "
                             "registered at address NAME (repeatable)")
    parser.add_argument("--caller", default="caller",
                        help="gateway caller device name")
    parser.add_argument("--box", default="gw",
                        help="gateway box name")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-probe", action="store_true",
                        help="skip binding the UDP media probe")
    parser.add_argument("--trace", action="store_true",
                        help="attach a tracer to the node's network")
    args = parser.parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0


async def _serve(args: argparse.Namespace) -> int:
    node = LiveNode(args.name, seed=args.seed, trace=args.trace)
    for name in args.device:
        node.net.device(name, auto_accept=True, host=host_for(name))
    await node.start(args.listen_host, args.listen)
    probe: Optional[MediaProbe] = None
    if not args.no_probe:
        probe = MediaProbe()
        await probe.start()
        node.probe = probe
    gateway: Optional[Gateway] = None
    if not args.no_http:
        gateway = Gateway(node, caller=args.caller, box=args.box)
        await gateway.start(args.http_host, args.http)
    for name, host, port in args.peer:
        node.add_peer(name, host, port)
    http = "%s:%d" % gateway.listen_address if gateway else "-"
    print("READY node=%s listen=%s:%d http=%s pid=%d"
          % (node.name, node.listen_address[0], node.listen_address[1],
             http, os.getpid()), flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stop.set)
    await stop.wait()
    if gateway is not None:
        await gateway.stop()
    if probe is not None:
        probe.close()
    await node.stop()
    return 0


# ----------------------------------------------------------------------
# repro call
# ----------------------------------------------------------------------
async def _http_json(host: str, port: int, method: str, path: str,
                     body: Optional[Dict[str, Any]] = None,
                     timeout: float = 30.0) -> Tuple[int, Any]:
    """Minimal asyncio HTTP/1.1 JSON client (stdlib only)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout)
    try:
        payload = b"" if body is None \
            else json.dumps(body).encode("utf-8")
        head = ["%s %s HTTP/1.1" % (method, path),
                "Host: %s:%d" % (host, port),
                "Connection: close"]
        if payload:
            head += ["Content-Type: application/json",
                     "Content-Length: %d" % len(payload)]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + payload)
        await writer.drain()
        status_line = await asyncio.wait_for(reader.readline(), timeout)
        parts = status_line.decode("latin-1").split(" ", 2)
        status = int(parts[1]) if len(parts) >= 2 else 0
        length = None
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout)
            text = line.decode("latin-1").strip()
            if not text:
                break
            name, _, value = text.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        raw = await asyncio.wait_for(
            reader.readexactly(length) if length is not None
            else reader.read(), timeout)
        return status, json.loads(raw) if raw else None
    finally:
        writer.close()


def call_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro call",
        description="Place a call through a running media gateway.")
    parser.add_argument("--gateway", type=_hostport, required=True,
                        metavar="HOST:PORT")
    parser.add_argument("--to", required=True, metavar="NAME@PEER")
    parser.add_argument("--medium", default="audio",
                        choices=["audio", "video", "text"])
    parser.add_argument("--timeout", type=float, default=10.0)
    parser.add_argument("--udp", type=int, default=0, metavar="N",
                        help="also blast N UDP probe datagrams")
    parser.add_argument("--hold", action="store_true",
                        help="leave the call up after reporting")
    parser.add_argument("--json", action="store_true",
                        help="print the raw gateway response")
    args = parser.parse_args(argv)
    host, port = args.gateway
    try:
        status, result = asyncio.run(_http_json(
            host, port, "POST", "/call",
            {"to": args.to, "medium": args.medium,
             "timeout": args.timeout, "udp": args.udp,
             "hold": args.hold},
            timeout=args.timeout + 10.0))
    except (OSError, asyncio.TimeoutError) as exc:
        print("call failed: cannot reach gateway (%s)" % exc,
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    if status != 200 or not isinstance(result, dict):
        if not args.json:
            print("call failed: HTTP %d %s" % (status, result),
                  file=sys.stderr)
        return 1
    if not args.json:
        journal = result.get("journal", {})
        print("call %s: %s codec=%s signals=S%d/R%d parity=%s"
              % (args.to, result.get("state"), result.get("codec"),
                 journal.get("sent", 0), journal.get("received", 0),
                 result.get("parity")))
        if "udp" in result:
            print("udp probe: %s" % result["udp"])
    return 0 if result.get("state") == "flowing" else 1


# ----------------------------------------------------------------------
# repro live-demo
# ----------------------------------------------------------------------
def demo_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro live-demo",
        description="Two OS processes negotiate a flowing media channel "
                    "over localhost sockets, driven from the gateway; "
                    "asserts flowing state, sim-parity fingerprint, UDP "
                    "echoes, and clean exits.")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="hard cap on the whole demo (seconds)")
    parser.add_argument("--udp", type=int, default=20)
    parser.add_argument("--callee", default="bob")
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)
    try:
        return asyncio.run(
            asyncio.wait_for(_demo(args), timeout=args.timeout))
    except asyncio.TimeoutError:
        print("FAIL: demo exceeded %.0fs" % args.timeout,
              file=sys.stderr)
        return 1


async def _demo(args: argparse.Namespace) -> int:
    callee = args.callee
    # Process 2: the callee node, a real OS process running `repro serve`.
    proc = await asyncio.create_subprocess_exec(
        sys.executable, "-m", "repro", "serve",
        "--name", "devside", "--device", callee, "--no-http",
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=dict(os.environ, PYTHONUNBUFFERED="1"))
    failures: List[str] = []
    result: Dict[str, Any] = {}
    try:
        assert proc.stdout is not None
        ready = (await asyncio.wait_for(proc.stdout.readline(),
                                        20.0)).decode()
        fields = dict(part.split("=", 1)
                      for part in ready.split() if "=" in part)
        peer_host, peer_port = parse_hostport(fields["listen"])

        # Process 1 (this one): box-side node + gateway.
        node = LiveNode("boxside")
        await node.start()
        probe = MediaProbe()
        await probe.start()
        node.probe = probe
        gateway = Gateway(node)
        await gateway.start()
        node.add_peer("devside", peer_host, peer_port)
        try:
            # Drive it end-to-end from the gateway: a real HTTP POST
            # over a real localhost socket.
            gw_host, gw_port = gateway.listen_address
            status, result = await _http_json(
                gw_host, gw_port, "POST", "/call",
                {"to": "%s@devside" % callee, "udp": args.udp,
                 "timeout": 15.0})
            result = result if isinstance(result, dict) else {}
            if status != 200:
                failures.append("gateway answered HTTP %d: %s"
                                % (status, result))
            if result.get("state") != "flowing":
                failures.append("media not flowing: %r"
                                % result.get("state"))
            if result.get("parity") is not True:
                failures.append(
                    "journal fingerprint diverged from sim reference: "
                    "live=%s ref=%s"
                    % (result.get("journal", {}).get("fingerprint"),
                       result.get("reference")))
            if args.udp and not result.get("udp", {}).get("echoes"):
                failures.append("no UDP probe echoes: %r"
                                % result.get("udp"))
            if node.channels:
                failures.append("live channels leaked after hangup: %r"
                                % sorted(node.channels))
        finally:
            await gateway.stop()
            probe.close()
            await node.stop()
    finally:
        if proc.returncode is None:
            proc.send_signal(signal.SIGTERM)
        try:
            await asyncio.wait_for(proc.wait(), 10.0)
        except asyncio.TimeoutError:
            proc.kill()
            await proc.wait()
            failures.append("callee process had to be killed")
    if proc.returncode != 0:
        stderr = b"" if proc.stderr is None \
            else await proc.stderr.read()
        failures.append("callee exited %s: %s"
                        % (proc.returncode, stderr.decode()[-400:]))
    if args.json:
        print(json.dumps({"result": result, "failures": failures},
                         indent=2, sort_keys=True))
    if failures:
        for failure in failures:
            print("FAIL: %s" % failure, file=sys.stderr)
        return 1
    journal = result.get("journal", {})
    print("live-demo OK: flowing codec=%s signals=S%d/R%d "
          "fingerprint=%s parity=True udp_echoes=%s"
          % (result.get("codec"), journal.get("sent", 0),
             journal.get("received", 0),
             str(journal.get("fingerprint", ""))[:16],
             result.get("udp", {}).get("echoes", "-")))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(serve_main())
