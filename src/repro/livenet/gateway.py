"""The media gateway front door: HTTP + WebSocket over asyncio streams.

``python -m repro serve`` runs one :class:`~repro.livenet.tcp.LiveNode`
fronted by this gateway; ``repro call`` drives it.  Endpoints:

* ``GET /healthz`` — node status snapshot (peers, channels, sim clock);
* ``GET /channels`` — live channels with their journal summaries;
* ``GET /events`` — recent live-transport events;
* ``POST /call`` — place a call: open a signaling chain
  ``caller ── box ── target@peer`` with the live leg over TCP, wait for
  media to flow, optionally blast UDP probe datagrams, report the
  direction-wise journal fingerprint (and its sim reference), then
  tear the call down (unless ``hold``);
* ``GET /ws/events`` — the event stream over a minimal RFC 6455
  WebSocket (text frames of JSON objects).

Front-door hygiene, in order, before any routing:

1. per-client-IP token-bucket rate limiting (the same
   :class:`~repro.core.admission.TokenBucket` arithmetic the box
   admission layer runs on the simulated clock, here on
   ``time.monotonic``) — excess requests get 429 + Retry-After;
2. strict path validation — bounded length, allow-listed characters,
   no dot-dot, no double slash, no escapes, unknown paths 404 without
   detail;
3. strict body/address validation — bounded JSON bodies only, call
   targets must parse as ``name@peer`` with a registered peer, and the
   name obeys the same charset :mod:`repro.network.address` enforces.

The server binds by default to 127.0.0.1; it is a demo front door, not
an internet-facing proxy.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import struct
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.admission import TokenBucket
from ..network.address import _HOST_OK
from .journal import host_for, reference_fingerprint
from .tcp import LiveChannel, LiveNode

__all__ = ["Gateway", "CallError"]

_MAX_REQUEST_LINE = 1024
_MAX_HEADERS = 32
_MAX_HEADER_LINE = 1024
_MAX_BODY = 64 * 1024
_MAX_PATH = 80
_PATH_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789/_.-")
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: Default rate limit: 100 requests/minute per client IP, burst 20.
_RATE = 100 / 60.0
_BURST = 20
_MAX_CLIENTS = 1024

_NAME_OK = _HOST_OK  # call-target names share the address charset


class CallError(Exception):
    """A /call request failed; maps to an HTTP status + reason slug."""

    def __init__(self, status: int, reason: str, detail: str = ""):
        self.status = status
        self.reason = reason
        self.detail = detail
        super().__init__("%s (%s)" % (reason, detail) if detail else reason)


class Gateway:
    """One HTTP/WebSocket front door over one live node."""

    def __init__(self, node: LiveNode, caller: str = "caller",
                 box: str = "gw", rate: float = _RATE, burst: int = _BURST):
        self.node = node
        self.caller_name = caller
        self.box_name = box
        self.rate = rate
        self.burst = burst
        #: Per-client-IP limiters, insertion-ordered for bounded pruning.
        self._buckets: Dict[str, TokenBucket] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._listen: Tuple[str, int] = ("", 0)
        self._ws_tasks: List[asyncio.Task] = []
        self.calls = 0
        self.rejected = 0
        #: The gateway's own agents on the node's simulated network.
        self.caller = node.net.device(caller, auto_accept=False,
                                     host=host_for(caller))
        self.box = node.net.box(box)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = await asyncio.start_server(self._client, host, port)
        self._listen = self._server.sockets[0].getsockname()[:2]
        self.node._emit("gateway-up", detail="%s:%d" % self._listen)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in self._ws_tasks:
            task.cancel()
        for task in self._ws_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        del self._ws_tasks[:]

    @property
    def listen_address(self) -> Tuple[str, int]:
        return self._listen

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            await self._serve_one(reader, writer)
        except (OSError, asyncio.IncompleteReadError,
                ConnectionResetError):
            pass
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - platform-dependent
                pass

    async def _serve_one(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername") or ("?", 0)
        line = await reader.readline()
        if not line or len(line) > _MAX_REQUEST_LINE:
            return
        parts = line.decode("latin-1").rstrip("\r\n").split(" ")
        if len(parts) != 3:
            await self._respond(writer, 400, {"error": {
                "reason": "bad-request-line"}})
            return
        method, path, _version = parts
        headers = await self._read_headers(reader)
        if headers is None:
            await self._respond(writer, 431, {"error": {
                "reason": "headers-too-large"}})
            return
        # 1. rate limit (before any parsing of the path or body)
        if not self._admit(peer[0]):
            self.rejected += 1
            await self._respond(writer, 429, {"error": {
                "reason": "rate-limited"}},
                extra=["Retry-After: 1"])
            return
        # 2. path hygiene
        bad = _path_problem(path)
        if bad is not None:
            await self._respond(writer, 400, {"error": {
                "reason": bad}})
            return
        # 3. routing
        if method == "GET" and path == "/healthz":
            status = self.node.status()
            status["gateway"] = {"calls": self.calls,
                                 "rejected": self.rejected}
            await self._respond(writer, 200, status)
        elif method == "GET" and path == "/channels":
            await self._respond(writer, 200,
                                self.node.status()["channels"])
        elif method == "GET" and path == "/events":
            await self._respond(writer, 200, self.node.events[-100:])
        elif method == "GET" and path == "/ws/events":
            await self._websocket(reader, writer, headers)
        elif method == "POST" and path == "/call":
            await self._call(reader, writer, headers)
        elif path in ("/healthz", "/channels", "/events", "/ws/events",
                      "/call"):
            await self._respond(writer, 405, {"error": {
                "reason": "method-not-allowed"}})
        else:
            await self._respond(writer, 404, {"error": {
                "reason": "not-found"}})

    async def _read_headers(self, reader: asyncio.StreamReader
                            ) -> Optional[Dict[str, str]]:
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADERS + 1):
            line = await reader.readline()
            if len(line) > _MAX_HEADER_LINE:
                return None
            text = line.decode("latin-1").rstrip("\r\n")
            if not text:
                return headers
            name, sep, value = text.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        return None

    def _admit(self, ip: str) -> bool:
        bucket = self._buckets.get(ip)
        if bucket is None:
            while len(self._buckets) >= _MAX_CLIENTS:
                self._buckets.pop(next(iter(self._buckets)))
            bucket = self._buckets[ip] = TokenBucket(
                self.rate, self.burst, time.monotonic)
        return bucket.try_take()

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       body: Any, extra: Optional[List[str]] = None) -> None:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 413: "Payload Too Large",
                  429: "Too Many Requests", 431: "Headers Too Large",
                  502: "Bad Gateway", 504: "Gateway Timeout"}.get(
                      status, "Error")
        head = ["HTTP/1.1 %d %s" % (status, reason),
                "Content-Type: application/json",
                "Content-Length: %d" % len(payload),
                "Connection: close"]
        head += extra or []
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)
        try:
            await writer.drain()
        except (OSError, ConnectionResetError):
            pass

    # ------------------------------------------------------------------
    # POST /call
    # ------------------------------------------------------------------
    async def _call(self, reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter,
                    headers: Dict[str, str]) -> None:
        try:
            request = await self._read_json(reader, headers)
            result = await self.place_call(
                to=request.get("to"),
                medium=request.get("medium", "audio"),
                timeout=request.get("timeout", 5.0),
                udp=request.get("udp", 0),
                hold=request.get("hold", False))
        except CallError as exc:
            await self._respond(writer, exc.status, {"error": {
                "reason": exc.reason, "detail": exc.detail}})
            return
        await self._respond(writer, 200, result)

    async def _read_json(self, reader: asyncio.StreamReader,
                         headers: Dict[str, str]) -> Dict[str, Any]:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise CallError(400, "bad-content-length")
        if length <= 0:
            raise CallError(400, "empty-body")
        if length > _MAX_BODY:
            raise CallError(413, "body-too-large", str(length))
        try:
            raw = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise CallError(400, "truncated-body")
        try:
            request = json.loads(raw)
        except ValueError:
            raise CallError(400, "bad-json")
        if not isinstance(request, dict):
            raise CallError(400, "bad-json", "object required")
        return request

    async def place_call(self, to: Any, medium: Any = "audio",
                         timeout: Any = 5.0, udp: Any = 0,
                         hold: Any = False) -> Dict[str, Any]:
        """The call itself, reusable without HTTP (demo, tests).

        ``to`` must be ``"name@peer"``; the live leg runs box→peer with
        target ``name``; media flows caller ── box ── name.
        """
        target, peer = self._check_target(to)
        if medium not in ("audio", "video", "text"):
            raise CallError(400, "bad-medium", str(medium)[:32])
        if not isinstance(timeout, (int, float)) \
                or not 0 < timeout <= 60:
            raise CallError(400, "bad-timeout", str(timeout)[:32])
        if not isinstance(udp, int) or isinstance(udp, bool) \
                or not 0 <= udp <= 1000:
            raise CallError(400, "bad-udp-count", str(udp)[:32])
        node = self.node
        self.calls += 1
        ch1 = node.net.channel(self.caller, self.box)
        record = node.open_live(self.box, peer, target)
        self.box.flow_link(ch1.responder_end.slot(), record.half.slot())
        port = self.caller.open(ch1.initiator_end.slot(), medium)
        node._pump()

        def settled() -> bool:
            return (port.slot.state == "flowing"
                    or not record.half.alive
                    or bool(self.caller.failed_ports))

        flowing = await node.wait_for(settled, timeout=float(timeout))
        try:
            if not record.half.alive:
                raise CallError(502, "live-leg-lost",
                                self._bye_reason(record))
            if self.caller.failed_ports:
                raise CallError(502, "media-failed",
                                self.caller.failed_ports[-1][1])
            if not flowing or port.slot.state != "flowing":
                raise CallError(504, "not-flowing-in-time",
                                port.slot.state)
            selector = port.slot.selector_received
            result: Dict[str, Any] = {
                "state": "flowing",
                "channel": record.half.channel_id,
                "codec": selector.codec.name
                if selector is not None and selector.codec is not None
                else "",
                "journal": record.journal.summary(),
            }
            reference = reference_fingerprint(
                self.caller_name, self.box_name, target, medium)
            result["reference"] = reference
            result["parity"] = (
                reference == result["journal"]["fingerprint"])
            if udp:
                result["udp"] = await self._probe(record, int(udp),
                                                  float(timeout))
            return result
        finally:
            if not hold:
                await self.hang_up(record, ch1)

    def _check_target(self, to: Any) -> Tuple[str, str]:
        if not isinstance(to, str) or not to:
            raise CallError(400, "bad-target", "string required")
        if len(to) > 128:
            raise CallError(400, "bad-target", "too long")
        name, sep, peer = to.partition("@")
        if not sep or not name or not peer:
            raise CallError(400, "bad-target", "use name@peer")
        if set(name) - _NAME_OK or set(peer) - _NAME_OK:
            raise CallError(400, "bad-target", "bad characters")
        if peer not in self.node.peers:
            raise CallError(400, "unknown-peer", peer)
        return name, peer

    def _bye_reason(self, record: LiveChannel) -> str:
        for event in reversed(self.node.events):
            if event["action"] in ("channel-bye", "peer-dead") \
                    and record.half.channel_id in event["detail"]:
                return event["detail"]
        return "teardown"

    async def _probe(self, record: LiveChannel, count: int,
                     timeout: float) -> Dict[str, Any]:
        node = self.node
        if node.probe is None:
            return {"echoes": 0, "skipped": "no-probe"}
        node.announce_probe(record.half.channel_id)
        if not await node.wait_for(lambda: record.peer_probe is not None,
                                   timeout=timeout):
            return {"echoes": 0, "skipped": "peer-probe-unknown"}
        key = record.half.channel_id.encode("utf-8")
        node.probe.blast(record.peer_probe, key, count)
        await node.wait_for(
            lambda: node.probe.echo_count(key) >= count,
            timeout=min(timeout, 2.0))
        return {"sent": count, "echoes": node.probe.echo_count(key)}

    async def hang_up(self, record: LiveChannel,
                      channel: Any = None) -> None:
        """Tear one call down: live leg first (the TearDown crosses the
        wire), then the local caller leg; pump until quiet."""
        if record.half.alive:
            record.half.end.tear_down()
        if channel is not None and channel.active:
            channel.initiator_end.tear_down()
            # Self-initiated teardown never notifies the owner; release
            # the caller's ports here or every call strands one.
            self.caller.release_end(channel.initiator_end)
        self.node._pump()
        await asyncio.sleep(0)
        self.node._pump()

    # ------------------------------------------------------------------
    # GET /ws/events
    # ------------------------------------------------------------------
    async def _websocket(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter,
                         headers: Dict[str, str]) -> None:
        key = headers.get("sec-websocket-key")
        if headers.get("upgrade", "").lower() != "websocket" or not key:
            await self._respond(writer, 400, {"error": {
                "reason": "not-a-websocket"}})
            return
        accept = base64.b64encode(hashlib.sha1(
            (key + _WS_GUID).encode("latin-1")).digest()).decode("latin-1")
        writer.write((
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            "Sec-WebSocket-Accept: %s\r\n\r\n" % accept).encode("latin-1"))
        await writer.drain()
        queue: asyncio.Queue = asyncio.Queue(maxsize=256)

        def subscriber(event: Dict[str, Any]) -> None:
            try:
                queue.put_nowait(event)
            except asyncio.QueueFull:
                pass  # slow consumer: drop, never block the node

        self.node.subscribers.append(subscriber)
        pusher = asyncio.get_running_loop().create_task(
            self._ws_push(writer, queue), name="repro-ws-push")
        self._ws_tasks.append(pusher)
        try:
            await self._ws_read(reader)
        finally:
            if subscriber in self.node.subscribers:
                self.node.subscribers.remove(subscriber)
            pusher.cancel()
            try:
                await pusher
            except (asyncio.CancelledError, Exception):
                pass
            if pusher in self._ws_tasks:
                self._ws_tasks.remove(pusher)

    async def _ws_push(self, writer: asyncio.StreamWriter,
                       queue: asyncio.Queue) -> None:
        while True:
            event = await queue.get()
            payload = json.dumps(event, sort_keys=True).encode("utf-8")
            writer.write(_ws_text_frame(payload))
            await writer.drain()

    async def _ws_read(self, reader: asyncio.StreamReader) -> None:
        """Minimal client-frame loop: answer pings, exit on close/EOF."""
        while True:
            try:
                head = await reader.readexactly(2)
            except (asyncio.IncompleteReadError, OSError):
                return
            opcode = head[0] & 0x0F
            masked = bool(head[1] & 0x80)
            length = head[1] & 0x7F
            try:
                if length == 126:
                    length = struct.unpack(
                        ">H", await reader.readexactly(2))[0]
                elif length == 127:
                    length = struct.unpack(
                        ">Q", await reader.readexactly(8))[0]
                if length > _MAX_BODY:
                    return
                if masked:
                    await reader.readexactly(4)
                if length:
                    await reader.readexactly(length)
            except (asyncio.IncompleteReadError, OSError):
                return
            if opcode == 0x8:  # close
                return

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Gateway %s:%d calls=%d>" % (
            self._listen[0], self._listen[1], self.calls)


def _path_problem(path: str) -> Optional[str]:
    """The reason ``path`` is unacceptable, or ``None`` if clean."""
    if not path.startswith("/"):
        return "bad-path"
    if len(path) > _MAX_PATH:
        return "path-too-long"
    if set(path) - _PATH_OK:
        return "bad-path-chars"
    if ".." in path or "//" in path:
        return "bad-path"
    return None


def _ws_text_frame(payload: bytes) -> bytes:
    """One server→client text frame (FIN set, no mask)."""
    length = len(payload)
    if length < 126:
        head = struct.pack(">BB", 0x81, length)
    elif length < 1 << 16:
        head = struct.pack(">BBH", 0x81, 126, length)
    else:
        head = struct.pack(">BBQ", 0x81, 127, length)
    return head + payload
