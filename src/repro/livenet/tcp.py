"""The asyncio TCP transport: one :class:`LiveNode` per OS process.

A live node owns a full simulated deployment (a
:class:`~repro.network.network.Network`: event loop, media plane,
router, agents) plus the machinery that lets its signaling channels
extend into other processes:

* a TCP **server** accepting connections from peers;
* dialed :class:`PeerConnection` objects with exponential-backoff
  reconnect (accepted connections never redial — the dialer owns
  liveness);
* the **pump** that bridges asyncio's wall clock onto the repro
  :class:`~repro.network.eventloop.EventLoop`: after every socket or
  user stimulus, simulated time advances to the wall-elapsed anchor and
  the loop drains; a timer is armed for the next pending sim event, so
  retransmission and backoff timers fire live with the same semantics
  the simulator pins.

Everything runs on the asyncio thread; the repro loop is only ever
pumped from asyncio callbacks, so no locks exist anywhere in the stack.

Failure maps onto the paper's degradation path: when a dialed peer's
reconnect budget is exhausted (or an accepted connection dies with no
dialer behind it), every half-channel riding the connection is
abandoned — the owner sees the ordinary ``TearDown``/``on_channel_gone``
sequence and media degrades to ``noMedia`` exactly as for a simulated
channel loss.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..network.network import Network
from ..obs.events import LiveWireEvent
from ..protocol.channel import DEFAULT_TUNNEL, SignalingAgent
from ..protocol.errors import ConfigurationError
from ..protocol.slot import RetransmitPolicy
from .journal import SignalJournal
from .seam import HalfChannel
from .wire import (ByeFrame, Frame, FrameAssembler, HelloFrame, PingFrame,
                   PongFrame, ProbeFrame, SigFrame, WireError, decode_frame,
                   encode_frame, encode_sig_frame, frame)

__all__ = ["ReconnectPolicy", "PeerConnection", "LiveChannel", "LiveNode"]


@dataclass(frozen=True)
class ReconnectPolicy:
    """Backoff schedule for a dialed peer: ``initial`` seconds doubling
    by ``factor`` up to ``cap``, giving up for good after
    ``max_attempts`` consecutive failures."""

    initial: float = 0.05
    factor: float = 2.0
    cap: float = 2.0
    max_attempts: int = 8

    def delay(self, attempt: int) -> float:
        return min(self.cap, self.initial * (self.factor ** attempt))


#: Outbound frames buffered per disconnected peer before the node gives
#: up on it (retransmission makes small losses survivable; unbounded
#: buffering would just defer the failure and leak).
_BACKLOG_LIMIT = 256


class PeerConnection:
    """One TCP connection (dialed or accepted) carrying framed traffic.

    A dialed connection reconnects itself per the node's
    :class:`ReconnectPolicy`; while down, outbound frames are buffered
    (bounded) and flushed on reconnect.  An accepted connection simply
    dies on EOF — the remote dialer is responsible for coming back.
    """

    def __init__(self, node: "LiveNode", label: str,
                 host: str = "", port: int = 0, dialed: bool = False):
        self.node = node
        self.label = label
        self.host = host
        self.port = port
        self.dialed = dialed
        self.connected = False
        self.closed = False
        self.attempts = 0
        self._writer: Optional[asyncio.StreamWriter] = None
        self._backlog: List[bytes] = []
        self._task: Optional[asyncio.Task] = None

    # -- sending ----------------------------------------------------------
    def send(self, fr: Frame) -> None:
        """Frame and ship (or buffer) one frame, FIFO."""
        self.send_payload(encode_frame(fr))

    def send_payload(self, payload: bytes) -> None:
        """Ship (or buffer) one already-encoded frame payload, FIFO."""
        if self.closed:
            return
        framed = frame(payload)
        if self.connected and self._writer is not None:
            self._writer.write(framed)
        else:
            self._backlog.append(framed)
            if len(self._backlog) > _BACKLOG_LIMIT:
                self.node._peer_dead(self, "backlog-overflow")

    # -- dialed lifecycle -------------------------------------------------
    def start(self) -> None:
        """Begin dialing (idempotent)."""
        if self._task is None and not self.closed:
            self._task = asyncio.get_running_loop().create_task(
                self._dial_loop(), name="repro-dial-%s" % self.label)

    async def _dial_loop(self) -> None:
        policy = self.node.reconnect
        while not self.closed:
            try:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port)
            except OSError as exc:
                self.attempts += 1
                self.node._emit("connect-failed", peer=self.label,
                                detail="attempt %d: %s"
                                % (self.attempts, type(exc).__name__))
                if self.attempts >= policy.max_attempts:
                    self.node._peer_dead(self, "reconnect-exhausted")
                    return
                await asyncio.sleep(policy.delay(self.attempts - 1))
                continue
            self.attempts = 0
            self._attach(writer)
            self.node._emit("connected", peer=self.label)
            await self._read(reader)
            self._detach()
            if self.closed:
                return
            self.node._emit("disconnected", peer=self.label)
            self.attempts = 1
            await asyncio.sleep(policy.delay(0))

    # -- accepted lifecycle -----------------------------------------------
    async def serve(self, reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter) -> None:
        """Run an accepted connection until EOF (called by the server)."""
        self._attach(writer)
        try:
            await self._read(reader)
        finally:
            self._detach()
            if not self.closed:
                self.closed = True
                self.node._conn_gone(self, "peer-closed")

    # -- shared machinery -------------------------------------------------
    def _attach(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self.connected = True
        if self._backlog:
            writer.writelines(self._backlog)
            del self._backlog[:]

    def _detach(self) -> None:
        self.connected = False
        writer, self._writer = self._writer, None
        if writer is not None:
            try:
                writer.close()
            except Exception:  # pragma: no cover - platform-dependent
                pass

    async def _read(self, reader: asyncio.StreamReader) -> None:
        assembler = FrameAssembler()
        while True:
            try:
                chunk = await reader.read(65536)
            except (OSError, asyncio.IncompleteReadError):
                return
            if not chunk:
                return
            try:
                payloads = assembler.feed(chunk)
            except WireError as exc:
                # Desynchronized or hostile stream: drop the connection.
                self.node._emit("bad-stream", peer=self.label,
                                detail=exc.reason)
                return
            for payload in payloads:
                try:
                    fr = decode_frame(payload)
                except WireError as exc:
                    self.node._emit("bad-frame", peer=self.label,
                                    detail=exc.reason)
                    continue
                self.node._on_frame(self, fr)
            if payloads:
                self.node._pump()

    async def close(self) -> None:
        """Tear the connection down for good (no reconnect)."""
        self.closed = True
        task, self._task = self._task, None
        self._detach()
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self.closed else (
            "up" if self.connected else "down")
        return "<PeerConnection %s %s>" % (self.label, state)


class LiveChannel:
    """Bookkeeping for one half-channel riding a connection."""

    __slots__ = ("half", "conn", "journal", "peer_probe", "probe_sent")

    def __init__(self, half: HalfChannel, conn: PeerConnection):
        self.half = half
        self.conn = conn
        self.journal = SignalJournal()
        self.journal.attach(half.channel, half._local_side)
        #: The remote process's real UDP probe address, once announced.
        self.peer_probe: Optional[Tuple[str, int]] = None
        self.probe_sent = False


class LiveNode:
    """One process's live deployment: simulated network + TCP front."""

    def __init__(self, name: str, seed: int = 0,
                 retransmit: Optional[RetransmitPolicy] = None,
                 reconnect: Optional[ReconnectPolicy] = None,
                 trace: bool = False):
        self.name = name
        self.net = Network(seed=seed, retransmit=retransmit, trace=trace)
        self.reconnect = reconnect if reconnect is not None \
            else ReconnectPolicy()
        #: Dialable peers by name.
        self.peers: Dict[str, PeerConnection] = {}
        #: Accepted (unnamed) connections, newest last.
        self.accepted: List[PeerConnection] = []
        #: Live half-channels by channel id.
        self.channels: Dict[str, LiveChannel] = {}
        #: Channel ids torn down recently; SIG frames for them are
        #: dropped silently instead of answered with Bye (teardown
        #: crossing in flight is normal, not an error).
        self._closed_ids: Dict[str, None] = {}
        #: Event subscribers (gateway websockets, tests).
        self.subscribers: List[Callable[[Dict[str, Any]], None]] = []
        #: Recent events, for /events and diagnostics.
        self.events: List[Dict[str, Any]] = []
        self._server: Optional[asyncio.base_events.Server] = None
        self._listen: Tuple[str, int] = ("", 0)
        self._counter = 0
        self._anchor = 0.0
        self._timer: Optional[asyncio.TimerHandle] = None
        self._running = False
        #: Filled by :class:`~repro.livenet.udp.MediaProbe` when one is
        #: attached; advertised in ProbeFrames.
        self.probe: Optional[Any] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def loop(self):
        return self.net.loop

    @property
    def listen_address(self) -> Tuple[str, int]:
        """Where the node accepts peer connections (after ``start``)."""
        return self._listen

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind the signaling listener and anchor the pump clock."""
        self._running = True
        self._anchor = asyncio.get_running_loop().time() - self.loop.now
        self._server = await asyncio.start_server(
            self._accept, host, port)
        sock = self._server.sockets[0]
        self._listen = sock.getsockname()[:2]
        self._emit("listening", detail="%s:%d" % self._listen)

    async def stop(self) -> None:
        """Graceful teardown: close server and connections, abandon any
        channels still up, drain the sim loop, disarm the pump."""
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for record in list(self.channels.values()):
            record.half.abandon("node-stopped")
        for conn in list(self.peers.values()) + list(self.accepted):
            await conn.close()
        self.peers.clear()
        del self.accepted[:]
        self.loop.run_until_quiescent()
        self.channels.clear()
        self._closed_ids.clear()
        self._emit("stopped")

    # ------------------------------------------------------------------
    # peers and channels
    # ------------------------------------------------------------------
    def add_peer(self, name: str, host: str, port: int) -> PeerConnection:
        """Register (and start dialing) a named remote node."""
        if name in self.peers:
            return self.peers[name]
        conn = PeerConnection(self, name, host, port, dialed=True)
        self.peers[name] = conn
        conn.start()
        return conn

    def open_live(self, agent: SignalingAgent, peer: str, target: str,
                  tunnels: Iterable[str] = (DEFAULT_TUNNEL,),
                  retransmit: Optional[RetransmitPolicy] = None
                  ) -> LiveChannel:
        """Open a signaling channel from ``agent`` toward ``target``,
        served by the remote node ``peer``.  Returns immediately; the
        protocol proceeds as frames flow."""
        conn = self.peers.get(peer)
        if conn is None:
            raise ConfigurationError("unknown peer %r" % peer)
        self._counter += 1
        channel_id = "%s/c%d" % (self.name, self._counter)
        tunnel_ids = tuple(tunnels)
        conn.send(HelloFrame(channel_id, agent.name, target, tunnel_ids))
        half = HalfChannel(
            self.loop, agent, lambda data: self._ship(channel_id, data),
            channel_id, remote_name=target, outbound=True, target=target,
            tunnel_ids=tunnel_ids,
            retransmit=retransmit if retransmit is not None
            else self.net.retransmit)
        record = LiveChannel(half, conn)
        self.channels[channel_id] = record
        half.on_closed = self._half_closed
        self._emit("channel-open", peer=peer, detail=channel_id)
        self._pump()
        return record

    def announce_probe(self, channel_id: str) -> None:
        """Tell the remote side where our real UDP probe listens."""
        record = self.channels.get(channel_id)
        if record is None or self.probe is None:
            return
        host, port = self.probe.address
        record.conn.send(ProbeFrame(channel_id, host, port))
        record.probe_sent = True

    # ------------------------------------------------------------------
    # frame handling
    # ------------------------------------------------------------------
    def _accept(self, reader: asyncio.StreamReader,
                writer: asyncio.StreamWriter) -> None:
        peername = writer.get_extra_info("peername") or ("?", 0)
        label = "accepted-%s:%s" % (peername[0], peername[1])
        conn = PeerConnection(self, label)
        self.accepted.append(conn)
        self._emit("accepted", peer=label)
        task = asyncio.get_running_loop().create_task(
            conn.serve(reader, writer), name="repro-serve-%s" % label)
        conn._task = task

    def _on_frame(self, conn: PeerConnection, fr: Frame) -> None:
        cls = type(fr)
        if cls is HelloFrame:
            self._on_hello(conn, fr)
        elif cls is SigFrame:
            record = self.channels.get(fr.channel_id)
            if record is None:
                if fr.channel_id not in self._closed_ids:
                    conn.send(ByeFrame(fr.channel_id, "unknown-channel"))
                return
            record.conn = conn  # rebind after a reconnect
            record.half.inject(fr.envelope)
        elif cls is ByeFrame:
            record = self.channels.get(fr.channel_id)
            if record is not None:
                self._emit("channel-bye", peer=conn.label,
                           detail="%s: %s" % (fr.channel_id, fr.reason))
                record.half.abandon(fr.reason or "bye")
        elif cls is PingFrame:
            conn.send(PongFrame(fr.nonce))
        elif cls is ProbeFrame:
            record = self.channels.get(fr.channel_id)
            if record is not None:
                record.peer_probe = (fr.host, fr.port)
                if not record.probe_sent:
                    self.announce_probe(fr.channel_id)

    def _on_hello(self, conn: PeerConnection, fr: HelloFrame) -> None:
        if fr.channel_id in self.channels:
            self.channels[fr.channel_id].conn = conn
            return
        try:
            agent = self.net.router.resolve(fr.target)
        except ConfigurationError:
            self._emit("no-route", peer=conn.label, detail=fr.target)
            conn.send(ByeFrame(fr.channel_id, "no-route"))
            return
        half = HalfChannel(
            self.loop, agent,
            lambda data: self._ship(fr.channel_id, data),
            fr.channel_id, remote_name=fr.initiator, outbound=False,
            target=fr.target, tunnel_ids=fr.tunnel_ids or (DEFAULT_TUNNEL,),
            retransmit=self.net.retransmit)
        record = LiveChannel(half, conn)
        self.channels[fr.channel_id] = record
        half.on_closed = self._half_closed
        self._emit("channel-accept", peer=conn.label, detail=fr.channel_id)

    def _ship(self, channel_id: str, data: bytes) -> None:
        """Half-channel sink: route one encoded envelope to its peer."""
        record = self.channels.get(channel_id)
        if record is None:  # raced with teardown
            return
        record.conn.send_payload(encode_sig_frame(channel_id, data))

    def _half_closed(self, half: HalfChannel) -> None:
        record = self.channels.pop(half.channel_id, None)
        if record is not None:
            record.journal.detach()
            self._closed_ids[half.channel_id] = None
            while len(self._closed_ids) > 1024:
                self._closed_ids.pop(next(iter(self._closed_ids)))
            self._emit("channel-closed", detail=half.channel_id)

    # ------------------------------------------------------------------
    # failure
    # ------------------------------------------------------------------
    def _peer_dead(self, conn: PeerConnection, reason: str) -> None:
        """A dialed peer is unreachable for good: abandon its channels
        (noMedia degradation) and stop dialing."""
        conn.closed = True
        self._emit("peer-dead", peer=conn.label, detail=reason)
        self._abandon_for(conn, reason)
        self.peers.pop(conn.label, None)
        self._pump()

    def _conn_gone(self, conn: PeerConnection, reason: str) -> None:
        """An accepted connection died.  Its channels stay mapped — the
        remote dialer may reconnect and rebind them — unless the node is
        shutting down."""
        if conn in self.accepted:
            self.accepted.remove(conn)
        self._emit("conn-gone", peer=conn.label, detail=reason)
        if not self._running:
            self._abandon_for(conn, reason)
        self._pump()

    def _abandon_for(self, conn: PeerConnection, reason: str) -> None:
        for record in list(self.channels.values()):
            if record.conn is conn:
                record.half.abandon(reason)

    # ------------------------------------------------------------------
    # the pump
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Advance the repro loop to wall-elapsed time and drain it,
        then arm a timer for the next pending simulated event."""
        if not self._running:
            return
        aio = asyncio.get_running_loop()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        target = aio.time() - self._anchor
        delta = target - self.loop.now
        self.loop.advance(delta if delta > 0 else 0.0)
        nxt = self.loop._front(pop_cancelled=True)
        if nxt is not None:
            delay = (self._anchor + nxt.time) - aio.time()
            self._timer = aio.call_later(
                delay if delay > 0 else 0.0, self._pump)

    async def wait_for(self, predicate: Callable[[], bool],
                       timeout: float = 5.0, poll: float = 0.01) -> bool:
        """Pump until ``predicate()`` holds or ``timeout`` passes."""
        aio = asyncio.get_running_loop()
        deadline = aio.time() + timeout
        while True:
            self._pump()
            if predicate():
                return True
            if aio.time() >= deadline:
                return False
            await asyncio.sleep(poll)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _emit(self, action: str, peer: str = "", detail: str = "") -> None:
        event = {"ts": round(self.loop.now, 6), "node": self.name,
                 "action": action, "peer": peer, "detail": detail}
        self.events.append(event)
        if len(self.events) > 512:
            del self.events[:256]
        tracer = self.net.trace
        if tracer is not None:
            tracer.emit(LiveWireEvent(ts=self.loop.now, action=action,
                                      peer=peer, detail=detail))
        for subscriber in list(self.subscribers):
            subscriber(event)

    def status(self) -> Dict[str, Any]:
        """JSON-friendly snapshot for the gateway's health endpoint."""
        return {
            "node": self.name,
            "listen": "%s:%d" % self._listen,
            "peers": {name: ("up" if c.connected else "down")
                      for name, c in self.peers.items()},
            "accepted": len(self.accepted),
            "channels": {
                cid: {"outbound": rec.half.outbound,
                      "alive": rec.half.alive,
                      "journal": rec.journal.summary()}
                for cid, rec in self.channels.items()},
            "sim_now": round(self.loop.now, 6),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<LiveNode %s peers=%d channels=%d>" % (
            self.name, len(self.peers), len(self.channels))
