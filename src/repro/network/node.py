"""Serialized stimulus processors.

A :class:`Node` models the paper's unit of processing cost: "``c`` [is]
the average time it takes for a server to read a new stimulus from an
input queue and compute the next signal to send" (Sec. VIII-C).  Every
box, user device, and media resource in the simulation is (or owns) a
Node: stimuli are queued and handled one at a time, each taking ``cost``
seconds, and any output signals are emitted when the handling completes.

With ``cost = 0`` a node degenerates into immediate in-order dispatch,
which is what unit tests use.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Callable, Deque, Optional, Tuple

from .backend import CORE as _CORE
from .eventloop import Event, EventLoop

__all__ = ["Node"]

Thunk = Tuple[Callable[..., Any], Tuple[Any, ...]]


class Node:
    """A named, serialized processor of stimuli on an event loop."""

    def __init__(self, loop: EventLoop, name: Optional[str] = None,
                 cost: float = 0.0):
        self.loop = loop
        self.name = name or loop.autoname("node", "%s-%d")
        if cost < 0:
            raise ValueError("processing cost must be non-negative")
        self.cost = cost
        self._inbox: Deque[Thunk] = deque()
        self._busy = False
        #: Stimuli handled so far (observability / performance assertions).
        self.handled = 0
        #: A crashed node (fault injection): stimuli arriving while
        #: offline are dropped, as for a process that is down.  State held
        #: in the owning agent survives, modeling a restart from stable
        #: storage; recovery relies on peers retransmitting.
        self.offline = False
        self.dropped_while_offline = 0
        #: The node's single in-flight completion event, recycled across
        #: stimuli.  ``_busy`` guarantees at most one is scheduled at a
        #: time, so once it has fired (``_loop is None``) and is not a
        #: cancellation tombstone it can be re-armed in place with a
        #: fresh ``seq`` — same execution order, no allocation.
        self._stim_event: Optional[Event] = None
        #: The callback armed for each stimulus completion.  Under the
        #: compiled backend this is a C callable the drain loop
        #: dispatches without a Python frame; otherwise the bound
        #: method.  Created after ``loop``/``cost``/``_inbox`` exist
        #: (the C object caches them).
        self._finish_cb: Callable[[], None] = (
            self._finish_one if _CORE is None else _CORE.Finish(self))
        #: Live timer events armed through :meth:`set_timer`, so a
        #: crash can cancel them wholesale (a dead process's pending
        #: alarms must not fire into its restarted self).  Compacted
        #: lazily once fired entries dominate.
        self._timers: list = []

    def _arm(self) -> None:
        """Schedule ``_finish_one`` after ``cost`` seconds (inlined
        ``loop.schedule``: every signal delivery funnels through here,
        and ``cost`` is a constant >= 0 by construction)."""
        loop = self.loop
        when = loop._now + self.cost
        event = self._stim_event
        if event is not None and event._loop is None and not event.cancelled:
            event.time = when
            event.seq = next(loop._seq)
            event._loop = loop
        else:
            event = self._stim_event = Event(
                when, 0, next(loop._seq), self._finish_cb, (), loop)
        if when == loop._now:
            loop._ready.append(event)
        else:
            heappush(loop._heap, event)
        loop._live += 1

    # ------------------------------------------------------------------
    # stimulus queueing
    # ------------------------------------------------------------------
    def enqueue(self, handler: Callable[..., Any], *args: Any) -> None:
        """Queue ``handler(*args)`` as one stimulus for this node.

        The handler runs ``cost`` seconds after this node becomes free to
        process it (immediately-but-in-order when ``cost`` is 0).
        """
        if self.offline:
            self.dropped_while_offline += 1
            return
        self._inbox.append((handler, args))
        if not self._busy:
            self._busy = True
            self._arm()

    def _finish_one(self) -> None:
        handler, args = self._inbox.popleft()
        self.handled += 1
        try:
            handler(*args)
        finally:
            if self._inbox:
                self._arm()
            else:
                self._busy = False

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def set_timer(self, delay: float, handler: Callable[..., Any],
                  *args: Any):
        """Arrange for ``handler(*args)`` to be enqueued as a stimulus
        after ``delay`` seconds.  Returns the underlying event, whose
        ``cancel()`` method cancels the timer."""
        event = self.loop.schedule(delay, self.enqueue, handler, *args)
        timers = self._timers
        timers.append(event)
        if len(timers) >= 32:
            alive = [e for e in timers
                     if e._loop is not None and not e.cancelled]
            if len(alive) * 2 <= len(timers):
                timers[:] = alive
        return event

    def cancel_timers(self) -> int:
        """Cancel every timer still armed on this node; returns how
        many were live.  Used by the fault layer's crash model: a
        crashed process loses its pending alarms (retransmit timers,
        staleness timers) along with its volatile state — they must
        not fire into the restarted node."""
        cancelled = 0
        for event in self._timers:
            if event._loop is not None and not event.cancelled:
                event.cancel()
                cancelled += 1
        self._timers.clear()
        return cancelled

    @property
    def idle(self) -> bool:
        """True when no stimulus is queued or being processed."""
        return not self._busy and not self._inbox

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Node %s cost=%g queued=%d>" % (
            self.name, self.cost, len(self._inbox))
