"""Backend selection for the dispatch-critical runtime kernels.

The simulator's hot core — the event scheduler (:mod:`.eventloop`), the
link transmit/delivery path (:mod:`.transport`), and the slot send path
(:mod:`repro.protocol.slot`) — is factored behind this seam so the same
protocol semantics can run on two interchangeable implementations:

``python``
    The pure-Python kernels that live inline in the modules above.
    Always available; the reference implementation the fingerprint
    suite pins.

``compiled``
    A CPython extension module (:mod:`repro.network._ccore`) holding
    hand-written C versions of the same kernels: the ``Event`` type
    with a C-level comparison, the batched two-lane drain loop, and
    the per-signal transmit/deliver/receive/slot-send fast paths.
    Build it with ``python tools/build_backend.py`` (requires only a C
    compiler and the CPython headers; ``mypyc``/``Cython`` are *not*
    needed — when they are absent, which is the common case in
    hermetic containers, the hand-written core is the compiled
    artifact).  Semantics are identical by construction and enforced
    by the runtime fingerprint suite
    (``tests/unit/test_runtime_fingerprints.py`` under both values of
    ``REPRO_BACKEND``).

The backend is chosen **once, at import time**, from the
``REPRO_BACKEND`` environment variable:

- ``python`` (default) — pure Python, never imports the extension.
- ``compiled`` — use the extension; falls back to python **with a
  one-time RuntimeWarning** when no compiled artifact exists or its
  ABI is stale (a fresh checkout must never fail to import, but an
  explicit ask that degrades must not do so silently).
- ``auto`` — like ``compiled`` but opportunistic: the fallback is
  expected, so it stays silent.

An unknown ``REPRO_BACKEND`` value likewise degrades to ``python``
with a one-time RuntimeWarning naming the valid values.

``repro.network.backend.BACKEND`` reports what was actually selected
(``"python"`` or ``"compiled"``); bench reports record it so per-
backend numbers in ``BENCH_load.json`` are attributable.
"""

from __future__ import annotations

import os
import warnings
from typing import Any, Dict, Optional

__all__ = ["ARENA_POISON", "BACKEND", "BACKEND_ENV",
           "BACKEND_REQUESTED", "CORE", "compiled_available",
           "describe"]

#: Environment variable consulted once at import time.
BACKEND_ENV = "REPRO_BACKEND"

_VALID = ("python", "compiled", "auto")

#: What the environment asked for (normalized; unknown values degrade
#: to ``python`` with a one-time warning rather than exploding an
#: import chain — a typo is visible on stderr and in ``describe()``,
#: not fatal).
_RAW_REQUESTED = os.environ.get(BACKEND_ENV)
BACKEND_REQUESTED = (_RAW_REQUESTED or "python").strip().lower()
if BACKEND_REQUESTED not in _VALID:
    warnings.warn(
        "unknown %s value %r (valid: %s); falling back to the "
        "pure-Python backend" % (BACKEND_ENV, _RAW_REQUESTED,
                                 ", ".join(_VALID)),
        RuntimeWarning, stacklevel=2)
    BACKEND_REQUESTED = "python"

#: Opt-in debug mode: poison arena objects on release so a
#: use-after-release fails loudly instead of silently delivering a
#: recycled envelope or replaying a stale event.  Read here because
#: this module is the one sanctioned ``os.environ`` seam (RC813); the
#: consumers are :mod:`repro.network.transport` (Event freelist) and
#: :mod:`repro.protocol.channel` (envelope pool).  A pure-Python debug
#: aid: the compiled kernels keep their own (audited) release paths.
ARENA_POISON: bool = (os.environ.get("REPRO_ARENA_POISON", "")
                      .strip().lower() in ("1", "true", "yes", "on"))

#: The extension module when selected *and* importable, else ``None``.
#: Every kernel consumer guards on this exact object.
CORE: Optional[Any] = None

if BACKEND_REQUESTED in ("compiled", "auto"):
    try:
        from . import _ccore as _core_mod  # type: ignore[attr-defined]
    except ImportError:
        # No artifact built: pure-Python fallback.  ``compiled`` was an
        # explicit ask, so its degradation warns once; ``auto`` is
        # opportunistic by definition and stays silent.
        _core_mod = None
        if BACKEND_REQUESTED == "compiled":
            warnings.warn(
                "%s=compiled but no compiled artifact is importable; "
                "build one with 'python tools/build_backend.py' -- "
                "falling back to the pure-Python backend"
                % BACKEND_ENV, RuntimeWarning, stacklevel=2)
    else:
        # A stale artifact built against different kernel contracts must
        # not half-load; the ABI tag is bumped whenever the C side's
        # expectations of the Python objects change.
        if getattr(_core_mod, "ABI_VERSION", None) != 2:
            if BACKEND_REQUESTED == "compiled":
                warnings.warn(
                    "%s=compiled but the artifact's ABI_VERSION is %r "
                    "(expected 2); rebuild with 'python "
                    "tools/build_backend.py --force' -- falling back "
                    "to the pure-Python backend"
                    % (BACKEND_ENV,
                       getattr(_core_mod, "ABI_VERSION", None)),
                    RuntimeWarning, stacklevel=2)
            _core_mod = None
    CORE = _core_mod

#: The backend actually in effect for this process.
BACKEND: str = "compiled" if CORE is not None else "python"


def compiled_available() -> bool:
    """True when the compiled core is importable *in this process*
    (regardless of whether it was selected)."""
    if CORE is not None:
        return True
    try:
        from . import _ccore  # noqa: F401
    except ImportError:
        return False
    return getattr(_ccore, "ABI_VERSION", None) == 2


def describe() -> Dict[str, Any]:
    """Backend facts for bench reports and diagnostics."""
    return {
        "backend": BACKEND,
        "requested": BACKEND_REQUESTED,
        "compiled_loaded": CORE is not None,
        "arena_poison": ARENA_POISON,
    }
