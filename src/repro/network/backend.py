"""Backend selection for the dispatch-critical runtime kernels.

The simulator's hot core — the event scheduler (:mod:`.eventloop`), the
link transmit/delivery path (:mod:`.transport`), and the slot send path
(:mod:`repro.protocol.slot`) — is factored behind this seam so the same
protocol semantics can run on two interchangeable implementations:

``python``
    The pure-Python kernels that live inline in the modules above.
    Always available; the reference implementation the fingerprint
    suite pins.

``compiled``
    A CPython extension module (:mod:`repro.network._ccore`) holding
    hand-written C versions of the same kernels: the ``Event`` type
    with a C-level comparison, the batched two-lane drain loop, and
    the per-signal transmit/deliver/receive/slot-send fast paths.
    Build it with ``python tools/build_backend.py`` (requires only a C
    compiler and the CPython headers; ``mypyc``/``Cython`` are *not*
    needed — when they are absent, which is the common case in
    hermetic containers, the hand-written core is the compiled
    artifact).  Semantics are identical by construction and enforced
    by the runtime fingerprint suite
    (``tests/unit/test_runtime_fingerprints.py`` under both values of
    ``REPRO_BACKEND``).

The backend is chosen **once, at import time**, from the
``REPRO_BACKEND`` environment variable:

- ``python`` (default) — pure Python, never imports the extension.
- ``compiled`` — use the extension; **falls back silently to python**
  when no compiled artifact exists (a fresh checkout must never fail
  to import).
- ``auto`` — synonym for ``compiled`` (opportunistic).

``repro.network.backend.BACKEND`` reports what was actually selected
(``"python"`` or ``"compiled"``); bench reports record it so per-
backend numbers in ``BENCH_load.json`` are attributable.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

__all__ = ["BACKEND", "BACKEND_ENV", "BACKEND_REQUESTED", "CORE",
           "compiled_available", "describe"]

#: Environment variable consulted once at import time.
BACKEND_ENV = "REPRO_BACKEND"

_VALID = ("python", "compiled", "auto")

#: What the environment asked for (normalized; unknown values degrade
#: to ``python`` rather than exploding an import chain — CLIs surface
#: the resolved backend so a typo is visible, not fatal).
BACKEND_REQUESTED = (os.environ.get(BACKEND_ENV) or "python").strip().lower()
if BACKEND_REQUESTED not in _VALID:
    BACKEND_REQUESTED = "python"

#: The extension module when selected *and* importable, else ``None``.
#: Every kernel consumer guards on this exact object.
CORE: Optional[Any] = None

if BACKEND_REQUESTED in ("compiled", "auto"):
    try:
        from . import _ccore as _core_mod  # type: ignore[attr-defined]
    except ImportError:
        _core_mod = None  # no artifact built: silent pure-Python fallback
    else:
        # A stale artifact built against different kernel contracts must
        # not half-load; the ABI tag is bumped whenever the C side's
        # expectations of the Python objects change.
        if getattr(_core_mod, "ABI_VERSION", None) != 1:
            _core_mod = None
    CORE = _core_mod

#: The backend actually in effect for this process.
BACKEND: str = "compiled" if CORE is not None else "python"


def compiled_available() -> bool:
    """True when the compiled core is importable *in this process*
    (regardless of whether it was selected)."""
    if CORE is not None:
        return True
    try:
        from . import _ccore  # noqa: F401
    except ImportError:
        return False
    return getattr(_ccore, "ABI_VERSION", None) == 1


def describe() -> Dict[str, Any]:
    """Backend facts for bench reports and diagnostics."""
    return {
        "backend": BACKEND,
        "requested": BACKEND_REQUESTED,
        "compiled_loaded": CORE is not None,
    }
