"""Reliable FIFO duplex links.

A :class:`Link` is the simulated equivalent of the TCP connection that
carries a signaling channel between two physical components (Sec. III-A:
"A signaling channel is two-way, FIFO, and reliable").  Each direction
preserves order even when the latency model jitters, by clamping each
delivery to be no earlier than the previous delivery in that direction.

A link between two *virtual* modules inside the same physical component
("implemented by two software queues") is simply a link with zero latency.

Observers and adversaries share one seam: the *transmit-hook chain*.  A
hook wraps the link's faithful transmit (``hook(origin, message,
forward)``); the fault-injection layer uses one to drop, duplicate, and
reorder, and the tracing layer uses another to count offered load.  The
most recently added hook is outermost, so a tracer installed after a
fault policy sees messages before the adversary touches them.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Callable, Deque, List, Optional, Tuple

from .backend import ARENA_POISON as _ARENA_POISON
from .backend import CORE as _CORE
from .eventloop import Event, EventLoop
from .latency import FixedLatency, LatencyModel


def _poisoned_event_fired(*args: Any) -> None:
    """Installed as a harvested event's callback under
    ``REPRO_ARENA_POISON``.  A legal freelist reuse overwrites the
    callback at its acquire site, so this only ever runs when a
    harvested event was pushed back into a scheduler lane *without*
    re-arming — the use-after-release the poison mode exists to catch.
    """
    raise RuntimeError(
        "arena poison: use-after-release — a freelist event fired "
        "without being re-armed through the acquire path")

__all__ = ["Link", "LinkEnd"]

#: Compact the in-flight event list once it reaches this length; entries
#: whose events already fired are pruned, keeping memory O(in-flight).
_PENDING_COMPACT = 16

#: Cap on each link's recycled-:class:`Event` freelist; beyond this,
#: fired events are simply released to the allocator.
_FREELIST_MAX = 32

Receiver = Callable[[Any], None]
TransmitFn = Callable[["LinkEnd", Any], None]
#: A transmit hook: ``hook(origin, message, forward)``.  Call ``forward``
#: (the next layer down) zero or more times; not calling it drops the
#: message, calling it twice duplicates it.
TransmitHook = Callable[["LinkEnd", Any, TransmitFn], None]


class LinkEnd:
    """One end of a duplex link.

    The owner installs a receiver callback; messages sent from the other
    end are delivered to it, in order, after the link latency.
    """

    def __init__(self, link: "Link", side: int):
        self._link = link
        self._side = side
        self._receiver: Optional[Receiver] = None
        #: Latest delivery time already promised in the outgoing direction;
        #: used to preserve FIFO order under jittered latency.
        self._horizon = 0.0
        #: The opposite end; filled in by ``Link.__init__`` once both
        #: ends exist (the transmit path reads it once per message).
        self._peer: "LinkEnd" = self  # placeholder until wired
        #: Mirror of ``link._chain`` (kept in sync by
        #: ``Link._rebuild_chain``) so ``send`` is a single call.
        self._chain: TransmitFn = link._base_transmit

    @property
    def link(self) -> "Link":
        return self._link

    @property
    def peer(self) -> "LinkEnd":
        """The opposite end of the link."""
        return self._peer

    def set_receiver(self, receiver: Receiver) -> None:
        """Install the callback invoked for each delivered message."""
        self._receiver = receiver

    def send(self, message: Any) -> None:
        """Send ``message`` to the peer end, FIFO and reliably."""
        # Equivalent to self._link.transmit(self, message) minus one
        # call frame and one indirection; every tunnel signal passes
        # through here.
        self._chain(self, message)

    def _deliver(self, message: Any) -> None:
        if self._link.down:
            return
        if self._receiver is None:
            raise RuntimeError(
                "message delivered to a link end with no receiver: %r"
                % (message,))
        self._receiver(message)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<LinkEnd %s side=%d>" % (self._link.name, self._side)


class Link:
    """A reliable, FIFO, duplex message pipe with a latency model."""

    def __init__(self, loop: EventLoop,
                 latency: Optional[LatencyModel] = None,
                 name: Optional[str] = None):
        self.loop = loop
        self.latency = latency if latency is not None else FixedLatency(0.0)
        self.name = name or loop.autoname("link", "%s-%d")
        self.ends = (LinkEnd(self, 0), LinkEnd(self, 1))
        self.ends[0]._peer = self.ends[1]
        self.ends[1]._peer = self.ends[0]
        #: A torn-down link silently drops traffic still in flight,
        #: matching a closed TCP connection.
        self.down = False
        #: Total messages handed to the link (observability).
        self.sent = 0
        #: Delivery events still in flight; cancelled wholesale when the
        #: link goes down so they never fire into a dead link.
        self._pending: List[Event] = []
        #: Compaction threshold for ``_pending`` (doubles with the live
        #: population so compaction cost stays amortized O(1) per send).
        self._compact_at = _PENDING_COMPACT
        #: Recycled delivery events (fired, unreferenced, re-armable).
        self._free: List[Event] = []
        #: Installed transmit hooks, innermost first.
        self._hooks: List[TransmitHook] = []
        #: Backpressure (see :meth:`set_backpressure`): high-water mark
        #: on in-flight deliveries, ``None`` = unbounded (the default).
        self._bp_high: Optional[int] = None
        self._bp_live = 0
        self._bp_deferred: Deque[Tuple[LinkEnd, Any]] = deque()
        #: Observability: transmits deferred / deepest drain queue seen.
        self.deferred_total = 0
        self.deferred_peak = 0
        #: The composed transmit entry point (rebuilt on hook changes).
        self._chain: TransmitFn = self._base_transmit
        if _CORE is not None:
            # Compiled backend: per-end delivery kernels first (the
            # transmit kernel caches them), then shadow the bound
            # ``_base_transmit`` with the C transmit so every chain —
            # including ones rebuilt after hook changes — bottoms out
            # in C.  The Python method above stays the reference.
            self.ends[0]._cdeliver = _CORE.Deliver(self.ends[0])
            self.ends[1]._cdeliver = _CORE.Deliver(self.ends[1])
            base = _CORE.LinkTransmit(self)
            self._base_transmit = base  # type: ignore[method-assign]
            self._chain = base
            self.ends[0]._chain = base
            self.ends[1]._chain = base

    def transmit(self, origin: LinkEnd, message: Any) -> None:
        """Schedule delivery of ``message`` at the end opposite ``origin``,
        through the installed hook chain (if any)."""
        self._chain(origin, message)

    def _base_transmit(self, origin: LinkEnd, message: Any) -> None:
        """The faithful transmit every hook chain bottoms out in.

        This is ``_schedule`` with the FIFO clamp inlined: the faithful
        path runs once per signal, and the extra call frame plus
        re-checks were measurable at load.  Behavior is identical.
        """
        if self.down:
            return
        self.sent += 1
        # Constant-latency models (the common case: every in-process
        # link and the default link) expose their delay as an attribute;
        # reading it skips a sample() call per message and draws no
        # randomness, so the seeded RNG stream is unchanged.
        latency = self.latency
        delay = latency.fixed_delay
        if delay is None:
            delay = latency.sample(self.loop.rng)
        loop = self.loop
        deliver_at = loop._now + delay
        if deliver_at < origin._horizon:
            deliver_at = origin._horizon
        origin._horizon = deliver_at
        target = origin._peer
        pending = self._pending
        if len(pending) >= self._compact_at:
            pending = self._compact_pending()
        # Delivery events are recycled through a per-link freelist: an
        # entry whose ``_loop`` is ``None`` and whose ``cancelled`` flag
        # is clear has *fired* and is referenced by nobody but this
        # link, so it can be re-armed in place.  (Cancelled events are
        # never recycled — they may still sit in a lane as tombstones.)
        # The freelist is per-link, not per-loop, so ``tear_down`` /
        # ``_drop_in_flight`` on one link can never cancel an event
        # another link has already re-armed.  A fresh ``seq`` is drawn
        # on reuse, making the execution order identical to a fresh
        # allocation.
        free = self._free
        if free:
            event = free.pop()
            event.time = deliver_at
            event.seq = next(loop._seq)
            event.args = (message,)
            event.callback = target._deliver
            event._loop = loop
        else:
            event = Event(deliver_at, 0, next(loop._seq),
                          target._deliver, (message,), loop)
        if deliver_at == loop._now:
            loop._ready.append(event)
        else:
            heappush(loop._heap, event)
        loop._live += 1
        pending.append(event)

    def _compact_pending(self) -> List[Event]:
        """Prune fired entries from ``_pending``, harvesting them onto
        the freelist, and re-arm the amortization threshold."""
        alive: List[Event] = []
        free = self._free
        for e in self._pending:
            if e._loop is not None:
                alive.append(e)
            elif not e.cancelled and len(free) < _FREELIST_MAX:
                if _ARENA_POISON:
                    # Debug mode: a harvested event that fires without
                    # re-arming raises instead of delivering a stale
                    # message.  Both fields are overwritten by every
                    # legal acquire, so behavior is otherwise unchanged.
                    e.callback = _poisoned_event_fired
                    e.args = ()
                free.append(e)
        # In-place replacement (not rebinding): the compiled backend's
        # transmit kernel holds a direct reference to this list.
        self._pending[:] = alive
        # Amortize: raise the threshold with the live population so a
        # busy link is not rescanned on every send, but an idle one
        # shrinks back to the floor.
        self._compact_at = max(_PENDING_COMPACT, 2 * len(alive))
        return self._pending

    # -- the hook chain ----------------------------------------------------
    def add_transmit_hook(self, hook: TransmitHook,
                          innermost: bool = False) -> None:
        """Install ``hook`` as the new outermost transmit wrapper.

        ``innermost=True`` places it next to the faithful transmit
        instead — the fault layer uses this so that observers (added
        normally, hence outermost) always see traffic before the
        adversary drops or duplicates it.
        """
        if innermost:
            self._hooks.insert(0, hook)
        else:
            self._hooks.append(hook)
        self._rebuild_chain()

    def remove_transmit_hook(self, hook: TransmitHook) -> None:
        """Remove one installed hook (wherever it sits in the chain).
        Removing a hook that is not installed is a no-op, so detach
        paths need not track installation state."""
        if hook in self._hooks:
            self._hooks.remove(hook)
            self._rebuild_chain()

    def _rebuild_chain(self) -> None:
        chain: TransmitFn = self._base_transmit
        for hook in self._hooks:
            def bound(origin: LinkEnd, message: Any,
                      _hook: TransmitHook = hook,
                      _next: TransmitFn = chain) -> None:
                _hook(origin, message, _next)
            chain = bound
        self._chain = chain
        self.ends[0]._chain = chain
        self.ends[1]._chain = chain

    # -- backpressure ------------------------------------------------------
    def set_backpressure(self, high_water: Optional[int]) -> None:
        """Bound this link's in-flight deliveries at ``high_water``.

        While the bound is reached, further transmits are *deferred*
        into a FIFO drain queue instead of growing the scheduler
        without limit; each completed delivery drains as many deferred
        transmits as fit back under the mark.  FIFO order per direction
        is preserved (the queue is FIFO and the horizon clamp still
        applies at actual send time), and as long as the mark is never
        hit the wire behavior — timing, ordering, RNG draws — is
        byte-identical to an unbounded link under both backends: the
        bounded transmit replaces the faithful one at the bottom of the
        hook chain and reproduces it exactly, only routing delivery
        through an accounting trampoline.

        ``None`` removes the bound (deferred messages already queued
        are drained by the still-in-flight deliveries).
        """
        if high_water is not None and high_water < 1:
            raise ValueError(
                "backpressure high-water mark must be >= 1, got %r"
                % (high_water,))
        if high_water is None:
            if self._bp_high is not None:
                self._bp_high = None
                self._base_transmit = (  # type: ignore[method-assign]
                    self._bp_faithful)
                self._rebuild_chain()
            return
        if self._bp_high is None:
            #: The faithful transmit being shadowed — the C kernel under
            #: the compiled backend, the bound Python method otherwise.
            self._bp_faithful = self._base_transmit
            self._base_transmit = (  # type: ignore[method-assign]
                self._bp_transmit)
            self._rebuild_chain()
        self._bp_high = high_water

    def _bp_transmit(self, origin: LinkEnd, message: Any) -> None:
        """Bounded transmit: defer above the high-water mark, otherwise
        behave exactly like :meth:`_base_transmit`."""
        if self.down:
            return
        high = self._bp_high
        if high is not None and self._bp_live >= high:
            self._bp_deferred.append((origin, message))
            self.deferred_total += 1
            depth = len(self._bp_deferred)
            if depth > self.deferred_peak:
                self.deferred_peak = depth
            return
        self._bp_send(origin, message)

    def _bp_send(self, origin: LinkEnd, message: Any) -> None:
        # Mirrors _base_transmit exactly (same clamp, same event time /
        # priority / seq draw, same lane choice) so the no-deferral
        # trace is byte-identical; delivery goes through _bp_deliver to
        # keep the in-flight count and drain the queue.
        self.sent += 1
        latency = self.latency
        delay = latency.fixed_delay
        if delay is None:
            delay = latency.sample(self.loop.rng)
        loop = self.loop
        deliver_at = loop._now + delay
        if deliver_at < origin._horizon:
            deliver_at = origin._horizon
        origin._horizon = deliver_at
        target = origin._peer
        pending = self._pending
        if len(pending) >= self._compact_at:
            pending = self._compact_pending()
        event = Event(deliver_at, 0, next(loop._seq),
                      self._bp_deliver, (target, message), loop)
        if deliver_at == loop._now:
            loop._ready.append(event)
        else:
            heappush(loop._heap, event)
        loop._live += 1
        pending.append(event)
        self._bp_live += 1

    def _bp_deliver(self, target: LinkEnd, message: Any) -> None:
        self._bp_live -= 1
        target._deliver(message)
        # A slot freed up: drain deferred transmits back under the mark.
        deferred = self._bp_deferred
        while deferred and not self.down \
                and (self._bp_high is None
                     or self._bp_live < self._bp_high):
            origin, queued = deferred.popleft()
            self._bp_send(origin, queued)

    def backpressure_stats(self) -> dict:
        """Deterministic snapshot of the backpressure counters."""
        return {
            "high_water": self._bp_high,
            "in_flight": self._bp_live,
            "deferred_now": len(self._bp_deferred),
            "deferred_total": self.deferred_total,
            "deferred_peak": self.deferred_peak,
        }

    def _schedule(self, origin: LinkEnd, message: Any, delay: float,
                  fifo: bool = True) -> Event:
        """Schedule one delivery toward ``origin``'s peer.

        ``fifo=False`` skips the horizon clamp, letting a message overtake
        earlier traffic in the same direction — only the fault-injection
        layer's reorder policy uses it.
        """
        loop = self.loop
        deliver_at = loop._now + delay
        if fifo:
            # FIFO restoration: never deliver before an earlier message in
            # the same direction.
            if deliver_at < origin._horizon:
                deliver_at = origin._horizon
            origin._horizon = deliver_at
        target = origin._peer
        pending = self._pending
        if len(pending) >= self._compact_at:
            pending = self._compact_pending()
        if deliver_at >= loop._now:
            # Inlined loop.schedule_at: one delivery per signal makes
            # this the single hottest allocation site in a load run.
            event = Event(deliver_at, 0, next(loop._seq),
                          target._deliver, (message,), loop)
            heappush(loop._heap, event)
            loop._live += 1
        else:  # pragma: no cover - negative-delay latency models only
            event = loop.schedule_at(deliver_at, target._deliver, message)
        pending.append(event)
        return event

    def in_flight(self) -> int:
        """Number of deliveries scheduled but not yet executed."""
        return sum(1 for e in self._pending if e._loop is not None)

    def tear_down(self) -> None:
        """Take the link down; queued and future messages are dropped.

        In-flight delivery events are cancelled (not merely ignored at
        delivery time), so they stop occupying the event loop and cannot
        keep a simulation from quiescing.
        """
        self.down = True
        self._drop_in_flight()

    def _drop_in_flight(self) -> int:
        """Cancel every pending delivery; returns how many were live.
        Also used by the fault layer's link flaps (an outage drops what
        the wire was carrying)."""
        dropped = 0
        for event in self._pending:
            if event._loop is not None:
                event.cancel()
                dropped += 1
        self._pending.clear()
        self._compact_at = _PENDING_COMPACT
        if self._bp_deferred:
            # What the wire carried is gone; what was queued behind the
            # high-water mark goes with it (a dead link drains nothing).
            dropped += len(self._bp_deferred)
            self._bp_deferred.clear()
        self._bp_live = 0
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " DOWN" if self.down else ""
        return "<Link %s sent=%d%s>" % (self.name, self.sent, state)
