"""The Network facade: one object wiring loop, media plane, router,
agents, and channels together.

This is the main entry point of the public API::

    net = Network(seed=1)
    alice = net.device("alice")
    bob = net.device("bob")
    ch = net.channel(alice, bob)
    alice.open(ch.initiator_end.slot(), AUDIO)
    net.settle()
"""

from __future__ import annotations

from typing import Iterable, Optional, Type, Union

from ..obs.tracer import Tracer
from ..protocol.channel import (SignalingAgent, SignalingChannel,
                                DEFAULT_TUNNEL)
from ..protocol.slot import RetransmitPolicy
from .eventloop import EventLoop
from .faults import FaultPlan, FaultStats, FaultyLink
from .latency import FixedLatency, LatencyModel
from .router import Router

__all__ = ["Network"]


def _is_meta(message) -> bool:
    """Fault-exemption predicate: meta-signal envelopes model the
    out-of-band channel operations (setup/teardown/availability) the
    paper keeps on reliable transport; fault plans target the tunnel
    signal plane, whose idempotent retransmission is the claim under
    test."""
    from ..protocol.signals import MetaMessage
    return isinstance(message, MetaMessage)


class Network:
    """Container for one simulated deployment."""

    def __init__(self, seed: Optional[int] = 0,
                 latency: Optional[LatencyModel] = None,
                 cost: float = 0.0,
                 retransmit: Optional[RetransmitPolicy] = None,
                 faults: Optional[FaultPlan] = None,
                 trace: Union[bool, Tracer] = False,
                 backpressure: Optional[int] = None):
        from ..media.plane import MediaPlane  # local import: layer order
        self.loop = EventLoop(seed=seed)
        #: The run's tracer: pass ``trace=True`` for a default
        #: :class:`~repro.obs.tracer.Tracer`, or a configured instance.
        #: ``False`` (the default) leaves the loop untraced — every
        #: emission site then costs one attribute test and nothing more.
        self.trace: Optional[Tracer] = None
        if trace is True:
            self.trace = Tracer()
        elif isinstance(trace, Tracer):
            self.trace = trace
        self.loop.trace = self.trace
        self.plane = MediaPlane()
        self.router = Router()
        #: Default latency for new channels.
        self.latency = latency if latency is not None else FixedLatency(0.0)
        #: Default per-stimulus processing cost for new agents.
        self.cost = cost
        #: Default retransmission policy for new channels (robust mode).
        self.retransmit = retransmit
        #: Fault plan installed on every new channel's link (chaos runs).
        self.faults = faults
        #: Per-link in-flight high-water mark installed on every new
        #: channel's link (``None`` = unbounded, the default).
        self.backpressure = backpressure
        #: Aggregate adversary counters across all faulty links.
        self.fault_stats = FaultStats()
        self._faulty_links = []
        self.agents = {}
        self.channels = []

    # ------------------------------------------------------------------
    # agent factories
    # ------------------------------------------------------------------
    def _register(self, agent: SignalingAgent, address: Optional[str]):
        self.agents[agent.name] = agent
        if address is not None:
            self.router.register(address, agent)
        return agent

    def box(self, name: str, cls: Optional[Type] = None,
            address: Optional[str] = None, **kwargs):
        """Create an application-server box (default
        :class:`repro.core.box.Box`)."""
        from ..core.box import Box
        cls = cls or Box
        kwargs.setdefault("cost", self.cost)
        return self._register(cls(self.loop, name, **kwargs), address)

    def device(self, name: str, cls: Optional[Type] = None,
               address: Optional[str] = None, **kwargs):
        """Create a user device (default
        :class:`repro.media.device.UserDevice`)."""
        from ..media.device import UserDevice
        cls = cls or UserDevice
        kwargs.setdefault("cost", self.cost)
        agent = cls(self.loop, self.plane, name, **kwargs)
        return self._register(agent, address if address is not None
                              else name)

    def resource(self, name: str, cls: Type, address: Optional[str] = None,
                 **kwargs):
        """Create a media resource (tone generator, bridge, ...)."""
        kwargs.setdefault("cost", self.cost)
        agent = cls(self.loop, self.plane, name, **kwargs)
        return self._register(agent, address)

    # ------------------------------------------------------------------
    # channels
    # ------------------------------------------------------------------
    def channel(self, initiator: SignalingAgent, responder: SignalingAgent,
                tunnels: Iterable[str] = (DEFAULT_TUNNEL,),
                latency: Optional[LatencyModel] = None,
                target: str = "", name: Optional[str] = None,
                strict: bool = True,
                retransmit: Optional[RetransmitPolicy] = None) \
            -> SignalingChannel:
        """Create a signaling channel between two agents."""
        channel = SignalingChannel(
            self.loop, initiator, responder, tunnel_ids=tunnels,
            latency=latency if latency is not None else self.latency,
            target=target, name=name, strict=strict,
            retransmit=retransmit if retransmit is not None
            else self.retransmit)
        self.channels.append(channel)
        if self.backpressure is not None:
            channel.link.set_backpressure(self.backpressure)
        if self.faults is not None:
            self._faulty_links.append(FaultyLink(
                channel.link, self.faults, exempt=_is_meta,
                stats=self.fault_stats))
        return channel

    def dial(self, initiator: SignalingAgent, address: str,
             tunnels: Iterable[str] = (DEFAULT_TUNNEL,),
             latency: Optional[LatencyModel] = None,
             name: Optional[str] = None) -> SignalingChannel:
        """Create a channel toward whatever agent serves ``address``."""
        responder = self.router.resolve(address)
        return self.channel(initiator, responder, tunnels=tunnels,
                            latency=latency, target=address, name=name)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.loop.now

    def run(self, duration: float) -> int:
        """Advance simulated time by ``duration`` seconds."""
        return self.loop.advance(duration)

    def settle(self, max_events: int = 100_000) -> int:
        """Run until no events remain (raises
        :class:`~repro.network.eventloop.QuiescenceError` on livelock)."""
        return self.loop.run_until_quiescent(max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Network t=%g agents=%d channels=%d>" % (
            self.loop.now, len(self.agents), len(self.channels))
