"""Simulation substrate: event loop, addresses, links, nodes."""

from .address import Address, AddressAllocator
from .eventloop import Event, EventLoop, QuiescenceError
from .faults import (CrashSchedule, FaultPlan, FaultStats, FaultyLink,
                     PLANS, plan_by_name)
from .latency import (FixedLatency, LatencyModel, UniformLatency,
                      PAPER_C, PAPER_N)
from .network import Network
from .node import Node
from .router import Router
from .transport import Link, LinkEnd

__all__ = [
    "Network", "Router",
    "Address", "AddressAllocator",
    "Event", "EventLoop", "QuiescenceError",
    "CrashSchedule", "FaultPlan", "FaultStats", "FaultyLink",
    "PLANS", "plan_by_name",
    "FixedLatency", "LatencyModel", "UniformLatency", "PAPER_C", "PAPER_N",
    "Node",
    "Link", "LinkEnd",
]
