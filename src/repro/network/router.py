"""Address routing for signaling-channel placement.

"We do not discuss how the graph of boxes and signaling channels is
configured, as this is outside the scope of this paper.  Configuration
is performed in varying ways by DFC, IMS, and SIP" (Sec. III-A).

This minimal router fills that gap for the examples: each dialable
address is registered to the agent that serves it (a device directly,
or the application server fronting it — e.g. telephone ``A`` is reached
through its PBX).  Longest-prefix matching supports catch-all service
addresses such as ``prepaid:``.
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

from ..protocol.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from ..protocol.channel import SignalingAgent

__all__ = ["Router"]


class Router:
    """Address → serving-agent table with longest-prefix matching."""

    def __init__(self) -> None:
        self._table: Dict[str, "SignalingAgent"] = {}

    def register(self, address: str, agent: "SignalingAgent") -> None:
        """Route ``address`` (an exact address or a prefix) to ``agent``."""
        self._table[address] = agent

    def unregister(self, address: str) -> None:
        self._table.pop(address, None)

    def resolve(self, address: str) -> "SignalingAgent":
        """The agent serving ``address``; exact match wins, then the
        longest registered prefix."""
        if address in self._table:
            return self._table[address]
        best = None
        best_len = -1
        for prefix, agent in self._table.items():
            if address.startswith(prefix) and len(prefix) > best_len:
                best = agent
                best_len = len(prefix)
        if best is None:
            raise ConfigurationError("no route to address %r" % address)
        return best

    def addresses(self) -> Dict[str, "SignalingAgent"]:
        return dict(self._table)
