/* _ccore: the compiled backend for the simulator's dispatch-critical
 * kernels (see repro/network/backend.py).
 *
 * Selected at import time via REPRO_BACKEND=compiled|auto.  Everything
 * here is a hand-written C twin of a pure-Python kernel; the Python
 * implementations remain the reference and the runtime fingerprint
 * suite pins that both produce bit-identical executions.
 *
 * Exposed objects:
 *
 *   Event          C twin of repro.network.eventloop.Event: same
 *                  constructor, attributes, cancel() semantics
 *                  (including the heap-compaction trigger), and a
 *                  C-level __lt__ compatible with the Python one.
 *   drain          C twin of EventLoop._drain_py: the untimed merged
 *                  two-lane batched drain (deferred counter flush,
 *                  clock stored once per same-timestamp batch).
 *   LinkTransmit   C twin of Link._base_transmit (installed as the
 *                  chain bottom), including the per-link Event
 *                  freelist and ready-lane routing.
 *   Deliver        C twin of LinkEnd._deliver, used as the delivery
 *                  event callback so drain can dispatch it without a
 *                  Python frame.
 *   Receive        C twin of ChannelEnd._receive (inbox append + node
 *                  arm with stimulus-event reuse).
 *   Finish         C twin of Node._finish_one (pop, dispatch, re-arm).
 *   Process        C twin of the untraced TunnelMessage fast path of
 *                  ChannelEnd._process (falls back to the Python
 *                  method for traced runs, meta messages, and every
 *                  other cold path).
 *
 * Correctness invariants shared with the Python side:
 *   - events execute in strict (time, priority, seq) order; the ready
 *     lane holds only priority-0 events at the current instant, so the
 *     two-lane merge reproduces the single-heap order exactly;
 *   - a fired event has _loop == NULL and cancelled == 0 and may be
 *     re-armed only with a freshly drawn seq;
 *   - cancelled events are never recycled (they may still be lane
 *     tombstones);
 *   - loop._pending/_free/_heap/_ready lists are mutated strictly in
 *     place, never rebound, so cached references stay valid.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

#define CCORE_ABI_VERSION 2

/* Caps mirrored from the Python side (transport._FREELIST_MAX,
 * channel._ENV_POOL_MAX, and eventloop._DELIVER_BATCH_MAX). */
#define FREELIST_MAX 32
#define ENV_POOL_MAX 64
#define DELIVER_BATCH_MAX 16

/* ------------------------------------------------------------------ */
/* interned attribute names                                            */
/* ------------------------------------------------------------------ */
static struct {
    PyObject *_heap, *_ready, *_now, *_live, *executed, *_seq, *trace;
    PyObject *_env_pool, *rng, *_compact;
    PyObject *popleft, *append, *sample;
    PyObject *down, *sent, *latency, *fixed_delay, *_pending, *_compact_at;
    PyObject *_free, *_horizon, *_receiver, *_peer, *_cdeliver, *ends, *loop;
    PyObject *offline, *dropped_while_offline, *_inbox, *_busy;
    PyObject *_stim_event, *handled, *cost, *_finish_cb, *_link, *_node;
    PyObject *_loop, *_process, *_process_fn, *alive, *slots, *owner;
    PyObject *on_tunnel_signal, *signal, *tunnel_id, *pooled;
    PyObject *state, *_retx_kind, *signals_received, *signals_sent;
    PyObject *_cancel_retx, *_wire, *_chain, *_end, *_transmit, *_hooks;
    PyObject *qualname;
    /* slot FSM fast path (third perf wave) */
    PyObject *retransmit, *strict, *failed, *medium, *remote_descriptor;
    PyObject *local_descriptor, *selector_received, *selector_sent;
    PyObject *descriptor, *selector, *race_drops, *stale_drops, *side;
    PyObject *_tx, *_retx_timer, *_stale_timer, *_busy_timer;
    /* goal dispatch + memoized poll */
    PyObject *maps, *_by_slot, *goal_receive, *after_stimulus, *admission;
    PyObject *goal_gen, *_poll_gen;
} S;

static PyObject *g_empty_tuple;
/* lazily imported protocol objects (avoid import cycles at init) */
static PyObject *g_tunnelmsg_type;   /* repro.protocol.signals.TunnelMessage */
static PyObject *g_slot_type;        /* repro.protocol.slot.Slot */
static PyObject *g_slot_receive;     /* unbound Slot.receive */
static PyObject *g_dispatch;         /* repro.protocol.slot._DISPATCH */
static PyObject *g_state_opening;    /* slot.OPENING */
static PyObject *g_state_closed;     /* slot.CLOSED */
static PyObject *g_kind_open;        /* "open" */
static PyObject *g_kind_close;       /* "close" */
/* slot FSM fast path: the remaining state strings, the six final signal
 * classes, and the shared closeack singleton */
static PyObject *g_state_opened;     /* slot.OPENED */
static PyObject *g_state_flowing;    /* slot.FLOWING */
static PyObject *g_state_closing;    /* slot.CLOSING */
static PyObject *g_sig_open;         /* signals.Open */
static PyObject *g_sig_oack;         /* signals.Oack */
static PyObject *g_sig_close;        /* signals.Close */
static PyObject *g_sig_closeack;     /* signals.CloseAck */
static PyObject *g_sig_describe;     /* signals.Describe */
static PyObject *g_sig_select;       /* signals.Select */
static PyObject *g_sig_busy;         /* signals.Busy */
static PyObject *g_closeack;         /* slot._CLOSEACK singleton */
/* goal dispatch: the reference Box.on_tunnel_signal function (methods
 * bound to it with no admission control are inlined in C) */
static PyObject *g_box_ots;
/* backend.ARENA_POISON: poisoned-release debugging disables every slot
 * fast path so the reference receive sees the poisoned signals */
static int g_arena_poison;

static int
ensure_protocol(void)
{
    PyObject *mod, *box_cls, *poison;
    if (g_tunnelmsg_type != NULL)
        return 0;
    mod = PyImport_ImportModule("repro.protocol.signals");
    if (mod == NULL)
        return -1;
    g_tunnelmsg_type = PyObject_GetAttrString(mod, "TunnelMessage");
    if (g_tunnelmsg_type == NULL) {
        Py_DECREF(mod);
        return -1;
    }
    g_sig_open = PyObject_GetAttrString(mod, "Open");
    g_sig_oack = PyObject_GetAttrString(mod, "Oack");
    g_sig_close = PyObject_GetAttrString(mod, "Close");
    g_sig_closeack = PyObject_GetAttrString(mod, "CloseAck");
    g_sig_describe = PyObject_GetAttrString(mod, "Describe");
    g_sig_select = PyObject_GetAttrString(mod, "Select");
    g_sig_busy = PyObject_GetAttrString(mod, "Busy");
    Py_DECREF(mod);
    if (g_sig_open == NULL || g_sig_oack == NULL || g_sig_close == NULL
        || g_sig_closeack == NULL || g_sig_describe == NULL
        || g_sig_select == NULL || g_sig_busy == NULL)
        return -1;
    mod = PyImport_ImportModule("repro.protocol.slot");
    if (mod == NULL)
        return -1;
    g_slot_type = PyObject_GetAttrString(mod, "Slot");
    Py_DECREF(mod);
    if (g_slot_type == NULL)
        return -1;
    g_slot_receive = PyObject_GetAttrString(g_slot_type, "receive");
    if (g_slot_receive == NULL)
        return -1;
    mod = PyImport_ImportModule("repro.protocol.slot");
    if (mod == NULL)
        return -1;
    g_dispatch = PyObject_GetAttrString(mod, "_DISPATCH");
    if (g_dispatch == NULL || !PyDict_Check(g_dispatch)) {
        Py_DECREF(mod);
        if (g_dispatch != NULL)
            PyErr_SetString(PyExc_TypeError, "slot._DISPATCH must be a dict");
        return -1;
    }
    g_state_opening = PyObject_GetAttrString(mod, "OPENING");
    g_state_closed = PyObject_GetAttrString(mod, "CLOSED");
    g_state_opened = PyObject_GetAttrString(mod, "OPENED");
    g_state_flowing = PyObject_GetAttrString(mod, "FLOWING");
    g_state_closing = PyObject_GetAttrString(mod, "CLOSING");
    g_closeack = PyObject_GetAttrString(mod, "_CLOSEACK");
    Py_DECREF(mod);
    if (g_state_opening == NULL || g_state_closed == NULL
        || g_state_opened == NULL || g_state_flowing == NULL
        || g_state_closing == NULL || g_closeack == NULL)
        return -1;
    mod = PyImport_ImportModule("repro.network.backend");
    if (mod == NULL)
        return -1;
    poison = PyObject_GetAttrString(mod, "ARENA_POISON");
    Py_DECREF(mod);
    if (poison == NULL)
        return -1;
    g_arena_poison = PyObject_IsTrue(poison);
    Py_DECREF(poison);
    if (g_arena_poison < 0)
        return -1;
    mod = PyImport_ImportModule("repro.core.box");
    if (mod == NULL)
        return -1;
    box_cls = PyObject_GetAttrString(mod, "Box");
    Py_DECREF(mod);
    if (box_cls == NULL)
        return -1;
    g_box_ots = PyObject_GetAttr(box_cls, S.on_tunnel_signal);
    Py_DECREF(box_cls);
    if (g_box_ots == NULL)
        return -1;
    g_kind_open = PyUnicode_InternFromString("open");
    g_kind_close = PyUnicode_InternFromString("close");
    if (g_kind_open == NULL || g_kind_close == NULL)
        return -1;
    return 0;
}

/* ------------------------------------------------------------------ */
/* small attribute helpers                                             */
/* ------------------------------------------------------------------ */

/* obj.<name> as C double (accepts int or float); -1.0 + PyErr on error */
static int
get_attr_double(PyObject *obj, PyObject *name, double *out)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL)
        return -1;
    *out = PyFloat_AsDouble(v);
    Py_DECREF(v);
    if (*out == -1.0 && PyErr_Occurred())
        return -1;
    return 0;
}

static int
set_attr_double(PyObject *obj, PyObject *name, double value)
{
    PyObject *v = PyFloat_FromDouble(value);
    int st;
    if (v == NULL)
        return -1;
    st = PyObject_SetAttr(obj, name, v);
    Py_DECREF(v);
    return st;
}

static int
get_attr_bool(PyObject *obj, PyObject *name)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    int st;
    if (v == NULL)
        return -1;
    st = PyObject_IsTrue(v);
    Py_DECREF(v);
    return st;
}

static int
get_attr_ll(PyObject *obj, PyObject *name, long long *out)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL)
        return -1;
    *out = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (*out == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

/* obj.<name> += delta; optionally reports the new value */
static int
attr_add_ll(PyObject *obj, PyObject *name, long long delta, long long *out)
{
    long long cur;
    PyObject *nv;
    int st;
    if (get_attr_ll(obj, name, &cur) < 0)
        return -1;
    cur += delta;
    nv = PyLong_FromLongLong(cur);
    if (nv == NULL)
        return -1;
    st = PyObject_SetAttr(obj, name, nv);
    Py_DECREF(nv);
    if (out != NULL)
        *out = cur;
    return st;
}

/* next(seq_iter) as long long (itertools.count: C-level iteration) */
static long long
next_seq(PyObject *seq_iter)
{
    PyObject *v = PyIter_Next(seq_iter);
    long long r;
    if (v == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_RuntimeError, "sequence counter exhausted");
        return -1;
    }
    r = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (r == -1 && PyErr_Occurred())
        return -1;
    return r;
}

/* ------------------------------------------------------------------ */
/* Event                                                               */
/* ------------------------------------------------------------------ */
typedef struct {
    PyObject_HEAD
    double time;
    int priority;
    long long seq;
    PyObject *callback;
    PyObject *args;        /* always a tuple */
    PyObject *loop;        /* NULL when detached (fired or never armed) */
    char cancelled;
} CEvent;

static PyTypeObject CEventType;

#define CEvent_CheckExact(op) (Py_TYPE(op) == &CEventType)

/* strict (time, priority, seq) order between two known CEvents */
static inline int
cev_lt(CEvent *a, CEvent *b)
{
    if (a->time != b->time)
        return a->time < b->time;
    if (a->priority != b->priority)
        return a->priority < b->priority;
    return a->seq < b->seq;
}

/* a < b for arbitrary heap entries; -1 + PyErr on comparison error */
static inline int
ev_lt(PyObject *a, PyObject *b)
{
    if (CEvent_CheckExact(a) && CEvent_CheckExact(b))
        return cev_lt((CEvent *)a, (CEvent *)b);
    return PyObject_RichCompareBool(a, b, Py_LT);
}

static PyObject *
cevent_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    CEvent *self = (CEvent *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->time = 0.0;
    self->priority = 0;
    self->seq = 0;
    self->callback = NULL;
    self->args = NULL;
    self->loop = NULL;
    self->cancelled = 0;
    return (PyObject *)self;
}

static int
cevent_init(CEvent *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"time", "priority", "seq", "callback", "args",
                             "loop", NULL};
    double time;
    int priority;
    long long seq;
    PyObject *callback, *cargs, *loop = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "diLOO|O", kwlist,
                                     &time, &priority, &seq, &callback,
                                     &cargs, &loop))
        return -1;
    if (!PyTuple_Check(cargs)) {
        PyErr_SetString(PyExc_TypeError, "Event args must be a tuple");
        return -1;
    }
    self->time = time;
    self->priority = priority;
    self->seq = seq;
    Py_INCREF(callback);
    Py_XSETREF(self->callback, callback);
    Py_INCREF(cargs);
    Py_XSETREF(self->args, cargs);
    if (loop == Py_None) {
        Py_CLEAR(self->loop);
    }
    else {
        Py_INCREF(loop);
        Py_XSETREF(self->loop, loop);
    }
    self->cancelled = 0;
    return 0;
}

/* fast internal constructor (no arg parsing) */
static CEvent *
cevent_make(double time, int priority, long long seq, PyObject *callback,
            PyObject *cargs, PyObject *loop)
{
    CEvent *ev = (CEvent *)CEventType.tp_alloc(&CEventType, 0);
    if (ev == NULL)
        return NULL;
    ev->time = time;
    ev->priority = priority;
    ev->seq = seq;
    Py_INCREF(callback);
    ev->callback = callback;
    Py_INCREF(cargs);
    ev->args = cargs;
    if (loop != NULL && loop != Py_None) {
        Py_INCREF(loop);
        ev->loop = loop;
    }
    else {
        ev->loop = NULL;
    }
    ev->cancelled = 0;
    return ev;
}

static int
cevent_traverse(CEvent *self, visitproc visit, void *arg)
{
    Py_VISIT(self->callback);
    Py_VISIT(self->args);
    Py_VISIT(self->loop);
    return 0;
}

static int
cevent_clear(CEvent *self)
{
    Py_CLEAR(self->callback);
    Py_CLEAR(self->args);
    Py_CLEAR(self->loop);
    return 0;
}

static void
cevent_dealloc(CEvent *self)
{
    PyObject_GC_UnTrack(self);
    cevent_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* Event.cancel(): mirror of the Python implementation, including the
 * threshold-triggered heap compaction. */
static PyObject *
cevent_cancel(CEvent *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *loop, *heap;
    long long live;
    if (self->cancelled)
        Py_RETURN_NONE;
    self->cancelled = 1;
    loop = self->loop;
    if (loop == NULL)
        Py_RETURN_NONE;
    self->loop = NULL;           /* we now own the reference */
    if (attr_add_ll(loop, S._live, -1, &live) < 0) {
        Py_DECREF(loop);
        return NULL;
    }
    heap = PyObject_GetAttr(loop, S._heap);
    if (heap == NULL) {
        Py_DECREF(loop);
        return NULL;
    }
    if (PyList_Check(heap)) {
        Py_ssize_t n = PyList_GET_SIZE(heap);
        if (n > 64 && live < (long long)(n >> 1)) {
            PyObject *res = PyObject_CallMethodNoArgs(loop, S._compact);
            if (res == NULL) {
                Py_DECREF(heap);
                Py_DECREF(loop);
                return NULL;
            }
            Py_DECREF(res);
        }
    }
    Py_DECREF(heap);
    Py_DECREF(loop);
    Py_RETURN_NONE;
}

static PyObject *
cevent_richcompare(PyObject *a, PyObject *b, int op)
{
    int lt;
    if (!CEvent_CheckExact(a) || !CEvent_CheckExact(b) ||
        (op != Py_LT && op != Py_GT && op != Py_LE && op != Py_GE))
        Py_RETURN_NOTIMPLEMENTED;
    switch (op) {
    case Py_LT:
        lt = cev_lt((CEvent *)a, (CEvent *)b);
        break;
    case Py_GT:
        lt = cev_lt((CEvent *)b, (CEvent *)a);
        break;
    case Py_LE:
        lt = !cev_lt((CEvent *)b, (CEvent *)a);
        break;
    default:                     /* Py_GE */
        lt = !cev_lt((CEvent *)a, (CEvent *)b);
        break;
    }
    if (lt)
        Py_RETURN_TRUE;
    Py_RETURN_FALSE;
}

static PyObject *
cevent_repr(CEvent *self)
{
    char tbuf[64];
    PyObject *name = NULL, *out;
    PyOS_snprintf(tbuf, sizeof(tbuf), "%g", self->time);
    if (self->callback != NULL) {
        name = PyObject_GetAttr(self->callback, S.qualname);
        if (name == NULL) {
            PyErr_Clear();
            name = PyObject_Str(self->callback);
            if (name == NULL)
                return NULL;
        }
    }
    else {
        name = PyUnicode_FromString("?");
        if (name == NULL)
            return NULL;
    }
    out = PyUnicode_FromFormat("<Event t=%s p=%d #%lld %U%s>",
                               tbuf, self->priority, self->seq, name,
                               self->cancelled ? " cancelled" : "");
    Py_DECREF(name);
    return out;
}

static PyObject *
cevent_get_loop(CEvent *self, void *closure)
{
    PyObject *loop = self->loop ? self->loop : Py_None;
    Py_INCREF(loop);
    return loop;
}

static int
cevent_set_loop(CEvent *self, PyObject *value, void *closure)
{
    if (value == NULL || value == Py_None) {
        Py_CLEAR(self->loop);
        return 0;
    }
    Py_INCREF(value);
    Py_XSETREF(self->loop, value);
    return 0;
}

static PyMemberDef cevent_members[] = {
    {"time", T_DOUBLE, offsetof(CEvent, time), 0, "fire time"},
    {"priority", T_INT, offsetof(CEvent, priority), 0, "tie-break priority"},
    {"seq", T_LONGLONG, offsetof(CEvent, seq), 0, "monotonic tie-breaker"},
    {"callback", T_OBJECT_EX, offsetof(CEvent, callback), 0, "callback"},
    {"args", T_OBJECT_EX, offsetof(CEvent, args), 0, "callback args"},
    {"cancelled", T_BOOL, offsetof(CEvent, cancelled), 0, "tombstone flag"},
    {NULL}
};

static PyGetSetDef cevent_getset[] = {
    {"_loop", (getter)cevent_get_loop, (setter)cevent_set_loop,
     "owning loop while scheduled, None once fired/cancelled", NULL},
    {NULL}
};

static PyMethodDef cevent_methods[] = {
    {"cancel", (PyCFunction)cevent_cancel, METH_NOARGS,
     "Prevent the event from firing.  Idempotent."},
    {NULL}
};

static PyTypeObject CEventType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.network._ccore.Event",
    .tp_basicsize = sizeof(CEvent),
    .tp_dealloc = (destructor)cevent_dealloc,
    .tp_repr = (reprfunc)cevent_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A scheduled callback (compiled backend).",
    .tp_traverse = (traverseproc)cevent_traverse,
    .tp_clear = (inquiry)cevent_clear,
    .tp_richcompare = cevent_richcompare,
    .tp_methods = cevent_methods,
    .tp_members = cevent_members,
    .tp_getset = cevent_getset,
    .tp_init = (initproc)cevent_init,
    .tp_new = cevent_new,
};

/* ------------------------------------------------------------------ */
/* binary-heap primitives over a PyList of events                      */
/* ------------------------------------------------------------------ */

/* push ev (borrowed; the list takes its own reference) */
static int
heap_push(PyObject *heap, PyObject *ev)
{
    Py_ssize_t pos, parent;
    if (PyList_Append(heap, ev) < 0)
        return -1;
    pos = PyList_GET_SIZE(heap) - 1;
    while (pos > 0) {
        PyObject *p;
        int lt;
        parent = (pos - 1) >> 1;
        p = PyList_GET_ITEM(heap, parent);
        lt = ev_lt(ev, p);
        if (lt < 0)
            return -1;
        if (!lt)
            break;
        /* swap: both objects stay referenced by the list */
        PyList_SET_ITEM(heap, pos, p);
        PyList_SET_ITEM(heap, parent, ev);
        pos = parent;
    }
    return 0;
}

/* pop the minimum; returns a new reference (NULL + PyErr on error) */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *last, *ret;
    Py_ssize_t pos;
    if (n == 0) {
        PyErr_SetString(PyExc_IndexError, "pop from empty heap");
        return NULL;
    }
    last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    n -= 1;
    if (n == 0)
        return last;
    ret = PyList_GET_ITEM(heap, 0);
    /* Overwrite the root with `last`: our reference to `last` moves
     * into the list, and the list's former reference to the old root
     * transfers to `ret` (PyList_SET_ITEM does not decref). */
    PyList_SET_ITEM(heap, 0, last);
    /* sift the new root down */
    pos = 0;
    for (;;) {
        Py_ssize_t child = 2 * pos + 1, right = child + 1;
        PyObject *c, *r;
        int lt;
        if (child >= n)
            break;
        c = PyList_GET_ITEM(heap, child);
        if (right < n) {
            r = PyList_GET_ITEM(heap, right);
            lt = ev_lt(c, r);
            if (lt < 0)
                goto fail;
            if (!lt) {
                child = right;
                c = r;
            }
        }
        lt = ev_lt(c, last);
        if (lt < 0)
            goto fail;
        if (!lt)
            break;
        PyList_SET_ITEM(heap, pos, c);
        PyList_SET_ITEM(heap, child, last);
        pos = child;
    }
    return ret;
fail:
    Py_DECREF(ret);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* kernel callables: forward declarations                              */
/* ------------------------------------------------------------------ */
static PyTypeObject DeliverType, ReceiveType, FinishType, ProcessType,
    LinkTransmitType;

typedef struct {
    PyObject_HEAD
    PyObject *end;               /* LinkEnd */
    PyObject *link;              /* Link (== end._link, cached) */
} DeliverObj;

typedef struct {
    PyObject_HEAD
    PyObject *chend;             /* ChannelEnd */
    PyObject *node;              /* owner node */
    PyObject *loop;              /* event loop */
    PyObject *heap;              /* loop._heap */
    PyObject *ready;             /* loop._ready */
    PyObject *inbox;             /* node._inbox */
    PyObject *seq_iter;          /* loop._seq */
    PyObject *process_fn;        /* chend._process_fn */
    PyObject *finish_cb;         /* node._finish_cb */
    /* bound deque methods, cached alongside the deques they belong to
     * (the kernels already pin the deque objects at init; caching the
     * bound method removes a type lookup per signal) */
    PyObject *inbox_append;      /* inbox.append */
    PyObject *ready_append;      /* ready.append */
} ReceiveObj;

typedef struct {
    PyObject_HEAD
    PyObject *node;
    PyObject *loop;
    PyObject *heap;
    PyObject *ready;
    PyObject *inbox;
    PyObject *seq_iter;
    PyObject *inbox_popleft;     /* inbox.popleft, cached */
    PyObject *ready_append;      /* ready.append, cached */
} FinishObj;

typedef struct {
    PyObject_HEAD
    PyObject *chend;             /* ChannelEnd */
    PyObject *loop;
    PyObject *owner;             /* chend.owner */
    PyObject *slots;             /* chend.slots (dict) */
    PyObject *py_process;        /* bound ChannelEnd._process */
    PyObject *env_pool;          /* loop._env_pool (list) */
    PyObject *by_slot;           /* owner.maps._by_slot (dict, mutated in
                                  * place, never rebound) or NULL for
                                  * owners without goal maps (devices) */
} ProcessObj;

typedef struct {
    PyObject_HEAD
    PyObject *link;
    PyObject *loop;
    PyObject *heap;
    PyObject *ready;
    PyObject *seq_iter;
    PyObject *rng;
    PyObject *end0, *end1;
    PyObject *deliver0, *deliver1;  /* the ends' Deliver callables */
    PyObject *pending;           /* link._pending (list, mutated in place) */
    PyObject *freelist;          /* link._free (list) */
    PyObject *ready_append;      /* ready.append, cached */
} TransmitObj;

static int deliver_impl(DeliverObj *d, PyObject *msg);
static int receive_impl(ReceiveObj *rc, PyObject *msg);
static int finish_impl(FinishObj *f);
static int process_impl(ProcessObj *p, PyObject *msg);
static int transmit_impl(TransmitObj *t, PyObject *origin, PyObject *msg);
/* defined after the SlotTransmit kernel (it fuses into it) */
static int fsm_tx(PyObject *slot, PyObject *sig);

/* ------------------------------------------------------------------ */
/* node arming (shared by Receive and Finish)                          */
/* ------------------------------------------------------------------ */

/* Schedule node._finish_cb to run `cost` seconds from now, re-arming
 * the node's singleton stimulus event when it has fired (the _busy
 * flag guarantees at most one is in flight).  Mirrors Node._arm. */
static int
arm_node(PyObject *node, PyObject *loop, PyObject *heap, PyObject *ready,
         PyObject *ready_append, PyObject *seq_iter, PyObject *finish_cb)
{
    double now, when, cost;
    long long seq;
    PyObject *ev_obj;
    CEvent *ev = NULL;
    int st;

    if (get_attr_double(loop, S._now, &now) < 0)
        return -1;
    /* cost is read per arm, not cached: tests and scenarios may retune
     * a node's processing cost after construction */
    if (get_attr_double(node, S.cost, &cost) < 0)
        return -1;
    when = now + cost;
    seq = next_seq(seq_iter);
    if (seq < 0 && PyErr_Occurred())
        return -1;
    ev_obj = PyObject_GetAttr(node, S._stim_event);
    if (ev_obj == NULL)
        return -1;
    if (CEvent_CheckExact(ev_obj)) {
        CEvent *c = (CEvent *)ev_obj;
        if (c->loop == NULL && !c->cancelled)
            ev = c;
    }
    if (ev != NULL) {
        ev->time = when;
        ev->seq = seq;
        Py_INCREF(loop);
        ev->loop = loop;
    }
    else {
        Py_DECREF(ev_obj);
        ev = cevent_make(when, 0, seq, finish_cb, g_empty_tuple, loop);
        if (ev == NULL)
            return -1;
        ev_obj = (PyObject *)ev;
        if (PyObject_SetAttr(node, S._stim_event, ev_obj) < 0) {
            Py_DECREF(ev_obj);
            return -1;
        }
    }
    if (when == now) {
        PyObject *res = ready_append != NULL
            ? PyObject_CallOneArg(ready_append, ev_obj)
            : PyObject_CallMethodObjArgs(ready, S.append, ev_obj, NULL);
        st = (res == NULL) ? -1 : 0;
        Py_XDECREF(res);
    }
    else {
        st = heap_push(heap, ev_obj);
    }
    Py_DECREF(ev_obj);
    if (st < 0)
        return -1;
    return attr_add_ll(loop, S._live, 1, NULL);
}

/* ------------------------------------------------------------------ */
/* Deliver                                                             */
/* ------------------------------------------------------------------ */
static int
deliver_impl(DeliverObj *d, PyObject *msg)
{
    PyObject *recv;
    int down = get_attr_bool(d->link, S.down);
    int st;
    if (down < 0)
        return -1;
    if (down)
        return 0;
    recv = PyObject_GetAttr(d->end, S._receiver);
    if (recv == NULL)
        return -1;
    if (recv == Py_None) {
        Py_DECREF(recv);
        PyErr_Format(PyExc_RuntimeError,
                     "message delivered to a link end with no receiver: %R",
                     msg);
        return -1;
    }
    if (Py_TYPE(recv) == &ReceiveType) {
        st = receive_impl((ReceiveObj *)recv, msg);
    }
    else {
        PyObject *res = PyObject_CallOneArg(recv, msg);
        st = (res == NULL) ? -1 : 0;
        Py_XDECREF(res);
    }
    Py_DECREF(recv);
    return st;
}

static int
deliver_init(DeliverObj *self, PyObject *args, PyObject *kwds)
{
    PyObject *end;
    if (!PyArg_ParseTuple(args, "O", &end))
        return -1;
    Py_INCREF(end);
    Py_XSETREF(self->end, end);
    Py_XSETREF(self->link, PyObject_GetAttr(end, S._link));
    if (self->link == NULL)
        return -1;
    return 0;
}

static PyObject *
deliver_call(DeliverObj *self, PyObject *args, PyObject *kwds)
{
    PyObject *msg;
    if (!PyArg_ParseTuple(args, "O", &msg))
        return NULL;
    if (deliver_impl(self, msg) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static int
deliver_traverse(DeliverObj *self, visitproc visit, void *arg)
{
    Py_VISIT(self->end);
    Py_VISIT(self->link);
    return 0;
}

static int
deliver_clear(DeliverObj *self)
{
    Py_CLEAR(self->end);
    Py_CLEAR(self->link);
    return 0;
}

static void
deliver_dealloc(DeliverObj *self)
{
    PyObject_GC_UnTrack(self);
    deliver_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyTypeObject DeliverType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.network._ccore.Deliver",
    .tp_basicsize = sizeof(DeliverObj),
    .tp_dealloc = (destructor)deliver_dealloc,
    .tp_call = (ternaryfunc)deliver_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled LinkEnd._deliver twin (delivery event callback).",
    .tp_traverse = (traverseproc)deliver_traverse,
    .tp_clear = (inquiry)deliver_clear,
    .tp_init = (initproc)deliver_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* Receive                                                             */
/* ------------------------------------------------------------------ */
static int
receive_impl(ReceiveObj *rc, PyObject *msg)
{
    PyObject *margs, *thunk, *res;
    int flag;

    flag = get_attr_bool(rc->node, S.offline);
    if (flag < 0)
        return -1;
    if (flag)
        return attr_add_ll(rc->node, S.dropped_while_offline, 1, NULL);
    margs = PyTuple_Pack(1, msg);
    if (margs == NULL)
        return -1;
    thunk = PyTuple_Pack(2, rc->process_fn, margs);
    Py_DECREF(margs);
    if (thunk == NULL)
        return -1;
    res = PyObject_CallOneArg(rc->inbox_append, thunk);
    Py_DECREF(thunk);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    flag = get_attr_bool(rc->node, S._busy);
    if (flag < 0)
        return -1;
    if (!flag) {
        if (PyObject_SetAttr(rc->node, S._busy, Py_True) < 0)
            return -1;
        return arm_node(rc->node, rc->loop, rc->heap, rc->ready,
                        rc->ready_append, rc->seq_iter, rc->finish_cb);
    }
    return 0;
}

/* N receive_impl calls coalesced (batched cross-link delivery).  The
 * offline and busy flags cannot change between same-instant C
 * deliveries (no user code runs), so they are checked once.  Inbox
 * append order is delivery order, and arming after the appends draws
 * the same event seq as the reference's arm-after-first-append --
 * deliveries themselves never draw seqs. */
static int
receive_batch(ReceiveObj *rc, PyObject **msgs, Py_ssize_t n)
{
    PyObject *margs, *thunk, *res;
    Py_ssize_t i;
    int flag;

    flag = get_attr_bool(rc->node, S.offline);
    if (flag < 0)
        return -1;
    if (flag)
        return attr_add_ll(rc->node, S.dropped_while_offline, n, NULL);
    for (i = 0; i < n; i++) {
        margs = PyTuple_Pack(1, msgs[i]);
        if (margs == NULL)
            return -1;
        thunk = PyTuple_Pack(2, rc->process_fn, margs);
        Py_DECREF(margs);
        if (thunk == NULL)
            return -1;
        res = PyObject_CallOneArg(rc->inbox_append, thunk);
        Py_DECREF(thunk);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
    }
    flag = get_attr_bool(rc->node, S._busy);
    if (flag < 0)
        return -1;
    if (!flag) {
        if (PyObject_SetAttr(rc->node, S._busy, Py_True) < 0)
            return -1;
        return arm_node(rc->node, rc->loop, rc->heap, rc->ready,
                        rc->ready_append, rc->seq_iter, rc->finish_cb);
    }
    return 0;
}

static int
receive_init(ReceiveObj *self, PyObject *args, PyObject *kwds)
{
    PyObject *chend;
    if (!PyArg_ParseTuple(args, "O", &chend))
        return -1;
    Py_INCREF(chend);
    Py_XSETREF(self->chend, chend);
    Py_XSETREF(self->node, PyObject_GetAttr(chend, S._node));
    if (self->node == NULL)
        return -1;
    Py_XSETREF(self->loop, PyObject_GetAttr(chend, S._loop));
    if (self->loop == NULL)
        return -1;
    Py_XSETREF(self->heap, PyObject_GetAttr(self->loop, S._heap));
    if (self->heap == NULL)
        return -1;
    Py_XSETREF(self->ready, PyObject_GetAttr(self->loop, S._ready));
    if (self->ready == NULL)
        return -1;
    Py_XSETREF(self->inbox, PyObject_GetAttr(self->node, S._inbox));
    if (self->inbox == NULL)
        return -1;
    Py_XSETREF(self->seq_iter, PyObject_GetAttr(self->loop, S._seq));
    if (self->seq_iter == NULL)
        return -1;
    Py_XSETREF(self->process_fn, PyObject_GetAttr(chend, S._process_fn));
    if (self->process_fn == NULL)
        return -1;
    Py_XSETREF(self->finish_cb, PyObject_GetAttr(self->node, S._finish_cb));
    if (self->finish_cb == NULL)
        return -1;
    Py_XSETREF(self->inbox_append, PyObject_GetAttr(self->inbox, S.append));
    if (self->inbox_append == NULL)
        return -1;
    Py_XSETREF(self->ready_append, PyObject_GetAttr(self->ready, S.append));
    if (self->ready_append == NULL)
        return -1;
    return 0;
}

static PyObject *
receive_call(ReceiveObj *self, PyObject *args, PyObject *kwds)
{
    PyObject *msg;
    if (!PyArg_ParseTuple(args, "O", &msg))
        return NULL;
    if (receive_impl(self, msg) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static int
receive_traverse(ReceiveObj *self, visitproc visit, void *arg)
{
    Py_VISIT(self->chend);
    Py_VISIT(self->node);
    Py_VISIT(self->loop);
    Py_VISIT(self->heap);
    Py_VISIT(self->ready);
    Py_VISIT(self->inbox);
    Py_VISIT(self->seq_iter);
    Py_VISIT(self->process_fn);
    Py_VISIT(self->finish_cb);
    Py_VISIT(self->inbox_append);
    Py_VISIT(self->ready_append);
    return 0;
}

static int
receive_clear(ReceiveObj *self)
{
    Py_CLEAR(self->chend);
    Py_CLEAR(self->node);
    Py_CLEAR(self->loop);
    Py_CLEAR(self->heap);
    Py_CLEAR(self->ready);
    Py_CLEAR(self->inbox);
    Py_CLEAR(self->seq_iter);
    Py_CLEAR(self->process_fn);
    Py_CLEAR(self->finish_cb);
    Py_CLEAR(self->inbox_append);
    Py_CLEAR(self->ready_append);
    return 0;
}

static void
receive_dealloc(ReceiveObj *self)
{
    PyObject_GC_UnTrack(self);
    receive_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyTypeObject ReceiveType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.network._ccore.Receive",
    .tp_basicsize = sizeof(ReceiveObj),
    .tp_dealloc = (destructor)receive_dealloc,
    .tp_call = (ternaryfunc)receive_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled ChannelEnd._receive twin (wire receiver).",
    .tp_traverse = (traverseproc)receive_traverse,
    .tp_clear = (inquiry)receive_clear,
    .tp_init = (initproc)receive_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* Finish                                                              */
/* ------------------------------------------------------------------ */
static int
finish_impl(FinishObj *f)
{
    PyObject *thunk, *handler, *hargs;
    Py_ssize_t remaining;
    int st = 0;

    thunk = PyObject_CallNoArgs(f->inbox_popleft);
    if (thunk == NULL)
        return -1;
    if (!PyTuple_Check(thunk) || PyTuple_GET_SIZE(thunk) != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "node inbox entries must be (handler, args) tuples");
        Py_DECREF(thunk);
        return -1;
    }
    if (attr_add_ll(f->node, S.handled, 1, NULL) < 0) {
        Py_DECREF(thunk);
        return -1;
    }
    handler = PyTuple_GET_ITEM(thunk, 0);
    hargs = PyTuple_GET_ITEM(thunk, 1);
    if (Py_TYPE(handler) == &ProcessType && PyTuple_Check(hargs) &&
        PyTuple_GET_SIZE(hargs) == 1) {
        st = process_impl((ProcessObj *)handler,
                          PyTuple_GET_ITEM(hargs, 0));
    }
    else {
        PyObject *res = PyObject_CallObject(handler, hargs);
        st = (res == NULL) ? -1 : 0;
        Py_XDECREF(res);
    }
    /* finally: re-arm or go idle, preserving any in-flight exception */
    {
        PyObject *etype = NULL, *eval = NULL, *etb = NULL;
        if (st < 0)
            PyErr_Fetch(&etype, &eval, &etb);
        remaining = PyObject_Length(f->inbox);
        if (remaining < 0) {
            PyErr_Clear();
            remaining = 0;
        }
        if (remaining > 0) {
            if (arm_node(f->node, f->loop, f->heap, f->ready,
                         f->ready_append, f->seq_iter,
                         (PyObject *)f) < 0) {
                if (st < 0) {
                    /* keep the original exception */
                    PyErr_Clear();
                }
                else {
                    st = -1;
                    PyErr_Fetch(&etype, &eval, &etb);
                }
            }
        }
        else {
            if (PyObject_SetAttr(f->node, S._busy, Py_False) < 0) {
                if (st < 0)
                    PyErr_Clear();
                else {
                    st = -1;
                    PyErr_Fetch(&etype, &eval, &etb);
                }
            }
        }
        if (st < 0)
            PyErr_Restore(etype, eval, etb);
    }
    Py_DECREF(thunk);
    return st;
}

static int
finish_init(FinishObj *self, PyObject *args, PyObject *kwds)
{
    PyObject *node;
    if (!PyArg_ParseTuple(args, "O", &node))
        return -1;
    Py_INCREF(node);
    Py_XSETREF(self->node, node);
    Py_XSETREF(self->loop, PyObject_GetAttr(node, S.loop));
    if (self->loop == NULL)
        return -1;
    Py_XSETREF(self->heap, PyObject_GetAttr(self->loop, S._heap));
    if (self->heap == NULL)
        return -1;
    Py_XSETREF(self->ready, PyObject_GetAttr(self->loop, S._ready));
    if (self->ready == NULL)
        return -1;
    Py_XSETREF(self->inbox, PyObject_GetAttr(node, S._inbox));
    if (self->inbox == NULL)
        return -1;
    Py_XSETREF(self->seq_iter, PyObject_GetAttr(self->loop, S._seq));
    if (self->seq_iter == NULL)
        return -1;
    Py_XSETREF(self->inbox_popleft,
               PyObject_GetAttr(self->inbox, S.popleft));
    if (self->inbox_popleft == NULL)
        return -1;
    Py_XSETREF(self->ready_append, PyObject_GetAttr(self->ready, S.append));
    if (self->ready_append == NULL)
        return -1;
    return 0;
}

static PyObject *
finish_call(FinishObj *self, PyObject *args, PyObject *kwds)
{
    if (args != NULL && PyTuple_GET_SIZE(args) != 0) {
        PyErr_SetString(PyExc_TypeError, "Finish takes no arguments");
        return NULL;
    }
    if (finish_impl(self) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static int
finish_traverse(FinishObj *self, visitproc visit, void *arg)
{
    Py_VISIT(self->node);
    Py_VISIT(self->loop);
    Py_VISIT(self->heap);
    Py_VISIT(self->ready);
    Py_VISIT(self->inbox);
    Py_VISIT(self->seq_iter);
    Py_VISIT(self->inbox_popleft);
    Py_VISIT(self->ready_append);
    return 0;
}

static int
finish_clear(FinishObj *self)
{
    Py_CLEAR(self->node);
    Py_CLEAR(self->loop);
    Py_CLEAR(self->heap);
    Py_CLEAR(self->ready);
    Py_CLEAR(self->inbox);
    Py_CLEAR(self->seq_iter);
    Py_CLEAR(self->inbox_popleft);
    Py_CLEAR(self->ready_append);
    return 0;
}

static void
finish_dealloc(FinishObj *self)
{
    PyObject_GC_UnTrack(self);
    finish_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyTypeObject FinishType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.network._ccore.Finish",
    .tp_basicsize = sizeof(FinishObj),
    .tp_dealloc = (destructor)finish_dealloc,
    .tp_call = (ternaryfunc)finish_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled Node._finish_one twin (stimulus event callback).",
    .tp_traverse = (traverseproc)finish_traverse,
    .tp_clear = (inquiry)finish_clear,
    .tp_init = (initproc)finish_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* slot FSM fast path (third perf wave)                                */
/* ------------------------------------------------------------------ */
/* The legal receive transitions of a reliable strict slot are executed
 * here without entering a Python frame.  Anything outside that
 * configuration -- robust mode, lenient slots, armed timers, busy
 * refusals, illegal receives, traced loops, arena poisoning -- falls
 * back to the reference handlers in protocol/slot.py, which stay the
 * specification. */

/* owner.goal_gen += 1: the C twin of the bump in Slot._set_state. */
static int
fsm_bump_gen(PyObject *owner)
{
    return attr_add_ll(owner, S.goal_gen, 1, NULL);
}

/* slot.state = new_state plus the generation bump _set_state performs.
 * Only reached untraced, so no SlotTransition record is due. */
static int
fsm_set_state(PyObject *slot, PyObject *owner, PyObject *new_state)
{
    if (PyObject_SetAttr(slot, S.state, new_state) < 0)
        return -1;
    return fsm_bump_gen(owner);
}

/* slot.<dst> = sig.<src> */
static int
fsm_copy_attr(PyObject *slot, PyObject *dst, PyObject *sig, PyObject *src)
{
    PyObject *v = PyObject_GetAttr(sig, src);
    int st;
    if (v == NULL)
        return -1;
    st = PyObject_SetAttr(slot, dst, v);
    Py_DECREF(v);
    return st;
}

static int
fsm_attr_is_none(PyObject *obj, PyObject *name, int *is_none)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL)
        return -1;
    *is_none = (v == Py_None);
    Py_DECREF(v);
    return 0;
}

/* All retransmission/staleness/busy timers unarmed?  The reference
 * close path cancels them; the C reset only clears descriptor state,
 * so an armed timer routes the signal back to the Python handler. */
static int
fsm_timers_clear(PyObject *slot, int *clear)
{
    int none;
    *clear = 0;
    if (fsm_attr_is_none(slot, S._retx_timer, &none) < 0)
        return -1;
    if (!none)
        return 0;
    if (fsm_attr_is_none(slot, S._stale_timer, &none) < 0)
        return -1;
    if (!none)
        return 0;
    if (fsm_attr_is_none(slot, S._busy_timer, &none) < 0)
        return -1;
    if (!none)
        return 0;
    *clear = 1;
    return 0;
}

/* The C twin of Slot._reset_to_closed for a reliable strict slot whose
 * timers are verified unarmed: state to closed (with the generation
 * bump) and the descriptor/selector fields to None.  The _cancel_*
 * calls in the reference are no-ops in that configuration beyond
 * re-Noneing fields that are already None. */
static int
fsm_reset_to_closed(PyObject *slot, PyObject *owner)
{
    if (fsm_set_state(slot, owner, g_state_closed) < 0)
        return -1;
    if (PyObject_SetAttr(slot, S.medium, Py_None) < 0 ||
        PyObject_SetAttr(slot, S.remote_descriptor, Py_None) < 0 ||
        PyObject_SetAttr(slot, S.local_descriptor, Py_None) < 0 ||
        PyObject_SetAttr(slot, S.selector_received, Py_None) < 0 ||
        PyObject_SetAttr(slot, S.selector_sent, Py_None) < 0)
        return -1;
    return 0;
}

/* Try to run one receive entirely in C.  Caller guarantees the loop is
 * untraced and arena poisoning is off.  *handled is set when the
 * (state, signal, mode) combination was executed here; every other
 * combination leaves *handled == 0 and falls through to the reference
 * handlers.  Returns the accepted verdict (0/1) or -1 + PyErr. */
static int
slot_fsm_fast(PyObject *slot, PyObject *sig, PyObject *state,
              PyObject *owner, int *handled)
{
    PyObject *tp = (PyObject *)Py_TYPE(sig);
    int st_id, flag, none;

    *handled = 0;
    if (state == g_state_closed)
        st_id = 0;
    else if (state == g_state_opening)
        st_id = 1;
    else if (state == g_state_opened)
        st_id = 2;
    else if (state == g_state_flowing)
        st_id = 3;
    else if (state == g_state_closing)
        st_id = 4;
    else
        return 0;

    /* Gate: reliable (no retransmission policy, no pending ack),
     * strict, not failed -- the provably timer-free configuration. */
    if (fsm_attr_is_none(slot, S.retransmit, &none) < 0)
        return -1;
    if (!none)
        return 0;
    if (fsm_attr_is_none(slot, S._retx_kind, &none) < 0)
        return -1;
    if (!none)
        return 0;
    flag = get_attr_bool(slot, S.strict);
    if (flag < 0)
        return -1;
    if (!flag)
        return 0;
    flag = get_attr_bool(slot, S.failed);
    if (flag < 0)
        return -1;
    if (flag)
        return 0;

    switch (st_id) {
    case 0:  /* closed */
        if (tp == g_sig_open) {
            *handled = 1;
            if (attr_add_ll(slot, S.signals_received, 1, NULL) < 0)
                return -1;
            if (fsm_copy_attr(slot, S.medium, sig, S.medium) < 0)
                return -1;
            if (fsm_copy_attr(slot, S.remote_descriptor, sig,
                              S.descriptor) < 0)
                return -1;
            if (fsm_set_state(slot, owner, g_state_opened) < 0)
                return -1;
            return 1;
        }
        return 0;
    case 1:  /* opening */
        if (tp == g_sig_open) {
            /* open/open race (Sec. VI-B): the initiator wins */
            PyObject *end = PyObject_GetAttr(slot, S._end);
            long long side;
            if (end == NULL)
                return -1;
            if (get_attr_ll(end, S.side, &side) < 0) {
                Py_DECREF(end);
                return -1;
            }
            Py_DECREF(end);
            *handled = 1;
            if (attr_add_ll(slot, S.signals_received, 1, NULL) < 0)
                return -1;
            if (side == 0)
                return attr_add_ll(slot, S.race_drops, 1, NULL) < 0
                    ? -1 : 0;
            if (fsm_copy_attr(slot, S.medium, sig, S.medium) < 0)
                return -1;
            if (fsm_copy_attr(slot, S.remote_descriptor, sig,
                              S.descriptor) < 0)
                return -1;
            if (fsm_set_state(slot, owner, g_state_opened) < 0)
                return -1;
            return 1;
        }
        if (tp == g_sig_oack) {
            *handled = 1;
            if (attr_add_ll(slot, S.signals_received, 1, NULL) < 0)
                return -1;
            if (fsm_copy_attr(slot, S.remote_descriptor, sig,
                              S.descriptor) < 0)
                return -1;
            if (fsm_set_state(slot, owner, g_state_flowing) < 0)
                return -1;
            return 1;
        }
        if (tp == g_sig_close)
            goto ack_close;
        return 0;  /* Busy (refusal machinery) and illegal: reference */
    case 2:  /* opened */
        if (tp == g_sig_close)
            goto ack_close;
        return 0;
    case 3:  /* flowing */
        if (tp == g_sig_describe) {
            *handled = 1;
            if (attr_add_ll(slot, S.signals_received, 1, NULL) < 0)
                return -1;
            if (fsm_copy_attr(slot, S.remote_descriptor, sig,
                              S.descriptor) < 0)
                return -1;
            return 1;
        }
        if (tp == g_sig_select) {
            /* with no staleness recovery armed the reference handler
             * only records the selector */
            if (fsm_attr_is_none(slot, S._stale_timer, &none) < 0)
                return -1;
            if (!none)
                return 0;
            *handled = 1;
            if (attr_add_ll(slot, S.signals_received, 1, NULL) < 0)
                return -1;
            if (fsm_copy_attr(slot, S.selector_received, sig,
                              S.selector) < 0)
                return -1;
            return 1;
        }
        if (tp == g_sig_close)
            goto ack_close;
        return 0;
    case 4:  /* closing */
        if (tp == g_sig_close) {
            /* crossing closes: acknowledge theirs, keep waiting */
            *handled = 1;
            if (attr_add_ll(slot, S.signals_received, 1, NULL) < 0)
                return -1;
            if (fsm_tx(slot, g_closeack) < 0)
                return -1;
            return 1;
        }
        if (tp == g_sig_closeack) {
            if (fsm_timers_clear(slot, &flag) < 0)
                return -1;
            if (!flag)
                return 0;
            *handled = 1;
            if (attr_add_ll(slot, S.signals_received, 1, NULL) < 0)
                return -1;
            if (fsm_reset_to_closed(slot, owner) < 0)
                return -1;
            return 1;
        }
        if (tp == g_sig_open || tp == g_sig_oack || tp == g_sig_describe
            || tp == g_sig_select || tp == g_sig_busy) {
            /* sent before the peer saw our close; drain */
            *handled = 1;
            if (attr_add_ll(slot, S.signals_received, 1, NULL) < 0)
                return -1;
            return attr_add_ll(slot, S.stale_drops, 1, NULL) < 0 ? -1 : 0;
        }
        return 0;
    }
    return 0;

ack_close:
    /* _acknowledge_close: answer with a closeack, reset to closed */
    if (fsm_timers_clear(slot, &flag) < 0)
        return -1;
    if (!flag)
        return 0;
    *handled = 1;
    if (attr_add_ll(slot, S.signals_received, 1, NULL) < 0)
        return -1;
    if (fsm_tx(slot, g_closeack) < 0)
        return -1;
    if (fsm_reset_to_closed(slot, owner) < 0)
        return -1;
    return 1;
}

/* ------------------------------------------------------------------ */
/* Process                                                             */
/* ------------------------------------------------------------------ */
/* Inline of Slot.receive's dispatch shell: counter bump, per-state
 * handler dispatch, and the robust-mode retransmission-acknowledged
 * check.  Legal fast-path signals are executed by slot_fsm_fast above
 * without a Python frame.  Returns 0/1 (the handler's accepted
 * verdict) or -1 + PyErr.  Unknown states fall back to the Python
 * method, which owns the descriptive failure. */
static int
slot_receive_inline(PyObject *slot, PyObject *sig, PyObject *owner)
{
    PyObject *state, *handler, *res, *retx;
    int accepted, eq;

    state = PyObject_GetAttr(slot, S.state);
    if (state == NULL)
        return -1;
    if (!g_arena_poison) {
        int fsm_handled = 0;
        accepted = slot_fsm_fast(slot, sig, state, owner, &fsm_handled);
        if (fsm_handled || accepted < 0) {
            Py_DECREF(state);
            return accepted;
        }
    }
    handler = PyDict_GetItemWithError(g_dispatch, state);  /* borrowed */
    Py_DECREF(state);
    if (handler == NULL) {
        if (PyErr_Occurred())
            return -1;
        res = PyObject_CallFunctionObjArgs(g_slot_receive, slot, sig, NULL);
        if (res == NULL)
            return -1;
        accepted = PyObject_IsTrue(res);
        Py_DECREF(res);
        return accepted;
    }
    if (attr_add_ll(slot, S.signals_received, 1, NULL) < 0)
        return -1;
    res = PyObject_CallFunctionObjArgs(handler, slot, sig, NULL);
    if (res == NULL)
        return -1;
    accepted = PyObject_IsTrue(res);
    Py_DECREF(res);
    if (accepted < 0)
        return -1;
    retx = PyObject_GetAttr(slot, S._retx_kind);
    if (retx == NULL)
        return -1;
    if (retx != Py_None) {
        eq = PyObject_RichCompareBool(retx, g_kind_open, Py_EQ);
        if (eq < 0)
            goto retx_fail;
        if (eq) {
            state = PyObject_GetAttr(slot, S.state);
            if (state == NULL)
                goto retx_fail;
            eq = PyObject_RichCompareBool(state, g_state_opening, Py_EQ);
            Py_DECREF(state);
            if (eq < 0)
                goto retx_fail;
            if (!eq) {
                res = PyObject_CallMethodNoArgs(slot, S._cancel_retx);
                if (res == NULL)
                    goto retx_fail;
                Py_DECREF(res);
            }
        }
        else {
            eq = PyObject_RichCompareBool(retx, g_kind_close, Py_EQ);
            if (eq < 0)
                goto retx_fail;
            if (eq) {
                state = PyObject_GetAttr(slot, S.state);
                if (state == NULL)
                    goto retx_fail;
                eq = PyObject_RichCompareBool(state, g_state_closed, Py_EQ);
                Py_DECREF(state);
                if (eq < 0)
                    goto retx_fail;
                if (eq) {
                    res = PyObject_CallMethodNoArgs(slot, S._cancel_retx);
                    if (res == NULL)
                        goto retx_fail;
                    Py_DECREF(res);
                }
            }
        }
    }
    Py_DECREF(retx);
    return accepted;
retx_fail:
    Py_DECREF(retx);
    return -1;
}

static int
call_py_process(ProcessObj *p, PyObject *msg)
{
    PyObject *res = PyObject_CallOneArg(p->py_process, msg);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* The accepted-signal upcall.  When the owner's handler is the
 * reference Box.on_tunnel_signal, admission control is off, and a goal
 * controls the slot, the dispatch runs here: goal.goal_receive plus
 * the generation-gated program poll (Box._poll).  Every other
 * combination -- overridden handlers, admission control installed,
 * unmanaged slots -- calls the bound handler, which owns the
 * bookkeeping. */
static int
upcall_accepted(ProcessObj *p, PyObject *slot, PyObject *sig)
{
    PyObject *handler, *res;
    int done = 0;

    handler = PyObject_GetAttr(p->owner, S.on_tunnel_signal);
    if (handler == NULL)
        return -1;
    if (p->by_slot != NULL && PyMethod_Check(handler)
        && PyMethod_GET_FUNCTION(handler) == g_box_ots) {
        PyObject *adm = PyObject_GetAttr(p->owner, S.admission);
        if (adm == NULL)
            goto fail;
        if (adm != Py_None)
            Py_DECREF(adm);
        else {
            PyObject *goal;
            Py_DECREF(adm);
            goal = PyDict_GetItemWithError(p->by_slot, slot); /* borrowed */
            if (goal == NULL) {
                if (PyErr_Occurred())
                    goto fail;
                /* unmanaged slot: the reference method records it */
            }
            else {
                PyObject *gr, *cb;
                Py_INCREF(goal);
                gr = PyObject_GetAttr(goal, S.goal_receive);
                Py_DECREF(goal);
                if (gr == NULL)
                    goto fail;
                res = PyObject_CallFunctionObjArgs(gr, slot, sig, NULL);
                Py_DECREF(gr);
                if (res == NULL)
                    goto fail;
                Py_DECREF(res);
                /* Box._poll: re-evaluate program guards only when a
                 * guard input moved since the last full pass */
                cb = PyObject_GetAttr(p->owner, S.after_stimulus);
                if (cb == NULL)
                    goto fail;
                if (cb != Py_None) {
                    long long gg, pg;
                    if (get_attr_ll(p->owner, S.goal_gen, &gg) < 0 ||
                        get_attr_ll(p->owner, S._poll_gen, &pg) < 0) {
                        Py_DECREF(cb);
                        goto fail;
                    }
                    if (gg != pg) {
                        res = PyObject_CallNoArgs(cb);
                        if (res == NULL) {
                            Py_DECREF(cb);
                            goto fail;
                        }
                        Py_DECREF(res);
                    }
                }
                Py_DECREF(cb);
                done = 1;
            }
        }
    }
    if (!done) {
        res = PyObject_CallFunctionObjArgs(handler, slot, sig, NULL);
        if (res == NULL)
            goto fail;
        Py_DECREF(res);
    }
    Py_DECREF(handler);
    return 0;
fail:
    Py_DECREF(handler);
    return -1;
}

static int
process_impl(ProcessObj *p, PyObject *msg)
{
    PyObject *trace, *tid, *slot, *sig, *acc;
    int flag, accepted;

    flag = get_attr_bool(p->chend, S.alive);
    if (flag < 0)
        return -1;
    if (!flag)
        return 0;
    if (ensure_protocol() < 0)
        return -1;
    if ((PyObject *)Py_TYPE(msg) != g_tunnelmsg_type)
        return call_py_process(p, msg);
    trace = PyObject_GetAttr(p->loop, S.trace);
    if (trace == NULL)
        return -1;
    if (trace != Py_None) {
        /* traced runs take the full Python path (pre/post state capture,
         * SignalReceived emission, pooled release) */
        Py_DECREF(trace);
        return call_py_process(p, msg);
    }
    Py_DECREF(trace);
    tid = PyObject_GetAttr(msg, S.tunnel_id);
    if (tid == NULL)
        return -1;
    slot = PyDict_GetItemWithError(p->slots, tid);
    Py_DECREF(tid);
    if (slot == NULL) {
        if (PyErr_Occurred())
            return -1;
        /* unknown tunnel: Python path raises the descriptive error */
        return call_py_process(p, msg);
    }
    if ((PyObject *)Py_TYPE(slot) != g_slot_type)
        return call_py_process(p, msg);
    Py_INCREF(slot);   /* the handler below may drop the channel's slots */
    sig = PyObject_GetAttr(msg, S.signal);
    if (sig == NULL) {
        Py_DECREF(slot);
        return -1;
    }
    accepted = slot_receive_inline(slot, sig, p->owner);
    if (accepted < 0) {
        Py_DECREF(sig);
        Py_DECREF(slot);
        return -1;
    }
    if (accepted) {
        if (upcall_accepted(p, slot, sig) < 0) {
            Py_DECREF(sig);
            Py_DECREF(slot);
            return -1;
        }
    }
    Py_DECREF(sig);
    Py_DECREF(slot);
    /* envelope reset contract: exactly one delivery happened (pooling
     * is only enabled on hook-free links), so release the envelope */
    flag = get_attr_bool(msg, S.pooled);
    if (flag < 0)
        return -1;
    if (flag) {
        if (PyObject_SetAttr(msg, S.signal, Py_None) < 0)
            return -1;
        if (PyList_Check(p->env_pool) &&
            PyList_GET_SIZE(p->env_pool) < ENV_POOL_MAX) {
            if (PyList_Append(p->env_pool, msg) < 0)
                return -1;
        }
    }
    return 0;
}

static int
process_init(ProcessObj *self, PyObject *args, PyObject *kwds)
{
    PyObject *chend;
    if (!PyArg_ParseTuple(args, "O", &chend))
        return -1;
    Py_INCREF(chend);
    Py_XSETREF(self->chend, chend);
    Py_XSETREF(self->loop, PyObject_GetAttr(chend, S._loop));
    if (self->loop == NULL)
        return -1;
    Py_XSETREF(self->owner, PyObject_GetAttr(chend, S.owner));
    if (self->owner == NULL)
        return -1;
    Py_XSETREF(self->slots, PyObject_GetAttr(chend, S.slots));
    if (self->slots == NULL || !PyDict_Check(self->slots)) {
        if (self->slots != NULL)
            PyErr_SetString(PyExc_TypeError, "chend.slots must be a dict");
        return -1;
    }
    Py_XSETREF(self->py_process, PyObject_GetAttr(chend, S._process));
    if (self->py_process == NULL)
        return -1;
    Py_XSETREF(self->env_pool, PyObject_GetAttr(self->loop, S._env_pool));
    if (self->env_pool == NULL)
        return -1;
    /* owner.maps._by_slot, cached for C-side goal dispatch.  Sound
     * because both attributes are assigned once at construction and
     * the dict is only ever mutated in place.  Owners without goal
     * maps (devices, gateways) leave it NULL and take the
     * bound-method path. */
    {
        PyObject *maps = PyObject_GetAttr(self->owner, S.maps);
        if (maps == NULL) {
            if (!PyErr_ExceptionMatches(PyExc_AttributeError))
                return -1;
            PyErr_Clear();
        }
        else {
            PyObject *by_slot = PyObject_GetAttr(maps, S._by_slot);
            Py_DECREF(maps);
            if (by_slot == NULL) {
                if (!PyErr_ExceptionMatches(PyExc_AttributeError))
                    return -1;
                PyErr_Clear();
            }
            else if (PyDict_CheckExact(by_slot))
                Py_XSETREF(self->by_slot, by_slot);
            else
                Py_DECREF(by_slot);
        }
    }
    return 0;
}

static PyObject *
process_call(ProcessObj *self, PyObject *args, PyObject *kwds)
{
    PyObject *msg;
    if (!PyArg_ParseTuple(args, "O", &msg))
        return NULL;
    if (process_impl(self, msg) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static int
process_traverse(ProcessObj *self, visitproc visit, void *arg)
{
    Py_VISIT(self->chend);
    Py_VISIT(self->loop);
    Py_VISIT(self->owner);
    Py_VISIT(self->slots);
    Py_VISIT(self->py_process);
    Py_VISIT(self->env_pool);
    Py_VISIT(self->by_slot);
    return 0;
}

static int
process_clear(ProcessObj *self)
{
    Py_CLEAR(self->chend);
    Py_CLEAR(self->loop);
    Py_CLEAR(self->owner);
    Py_CLEAR(self->slots);
    Py_CLEAR(self->py_process);
    Py_CLEAR(self->env_pool);
    Py_CLEAR(self->by_slot);
    return 0;
}

static void
process_dealloc(ProcessObj *self)
{
    PyObject_GC_UnTrack(self);
    process_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyTypeObject ProcessType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.network._ccore.Process",
    .tp_basicsize = sizeof(ProcessObj),
    .tp_dealloc = (destructor)process_dealloc,
    .tp_call = (ternaryfunc)process_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled ChannelEnd._process fast path (untraced tunnel "
              "messages; everything else falls back to Python).",
    .tp_traverse = (traverseproc)process_traverse,
    .tp_clear = (inquiry)process_clear,
    .tp_init = (initproc)process_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* LinkTransmit                                                        */
/* ------------------------------------------------------------------ */

/* Prune fired entries from link._pending in place, harvesting
 * recyclable events (fired, not cancelled) onto link._free.  Mirrors
 * Link._compact_pending. */
static int
compact_pending_c(TransmitObj *t)
{
    PyObject *alive = PyList_New(0);
    Py_ssize_t i, n;
    long long threshold;
    PyObject *th;
    if (alive == NULL)
        return -1;
    n = PyList_GET_SIZE(t->pending);
    for (i = 0; i < n; i++) {
        PyObject *e = PyList_GET_ITEM(t->pending, i);
        if (CEvent_CheckExact(e)) {
            CEvent *c = (CEvent *)e;
            if (c->loop != NULL) {
                if (PyList_Append(alive, e) < 0)
                    goto fail;
            }
            else if (!c->cancelled &&
                     PyList_GET_SIZE(t->freelist) < FREELIST_MAX) {
                if (PyList_Append(t->freelist, e) < 0)
                    goto fail;
            }
        }
        else {
            /* foreign event object: keep it if still scheduled */
            PyObject *lp = PyObject_GetAttr(e, S._loop);
            if (lp == NULL)
                goto fail;
            if (lp != Py_None) {
                if (PyList_Append(alive, e) < 0) {
                    Py_DECREF(lp);
                    goto fail;
                }
            }
            Py_DECREF(lp);
        }
    }
    if (PyList_SetSlice(t->pending, 0, n, alive) < 0)
        goto fail;
    threshold = 2 * (long long)PyList_GET_SIZE(alive);
    if (threshold < 16)
        threshold = 16;
    th = PyLong_FromLongLong(threshold);
    if (th == NULL)
        goto fail;
    if (PyObject_SetAttr(t->link, S._compact_at, th) < 0) {
        Py_DECREF(th);
        goto fail;
    }
    Py_DECREF(th);
    Py_DECREF(alive);
    return 0;
fail:
    Py_DECREF(alive);
    return -1;
}

static int
transmit_impl(TransmitObj *t, PyObject *origin, PyObject *msg)
{
    PyObject *lat, *fd, *deliver;
    double delay, now, deliver_at, horizon;
    long long compact_at, seq;
    CEvent *ev;
    Py_ssize_t fn;
    int flag;

    flag = get_attr_bool(t->link, S.down);
    if (flag < 0)
        return -1;
    if (flag)
        return 0;
    if (attr_add_ll(t->link, S.sent, 1, NULL) < 0)
        return -1;
    lat = PyObject_GetAttr(t->link, S.latency);
    if (lat == NULL)
        return -1;
    fd = PyObject_GetAttr(lat, S.fixed_delay);
    if (fd == NULL) {
        Py_DECREF(lat);
        return -1;
    }
    if (fd == Py_None) {
        PyObject *res = PyObject_CallMethodObjArgs(lat, S.sample, t->rng,
                                                   NULL);
        Py_DECREF(fd);
        Py_DECREF(lat);
        if (res == NULL)
            return -1;
        delay = PyFloat_AsDouble(res);
        Py_DECREF(res);
        if (delay == -1.0 && PyErr_Occurred())
            return -1;
    }
    else {
        delay = PyFloat_AsDouble(fd);
        Py_DECREF(fd);
        Py_DECREF(lat);
        if (delay == -1.0 && PyErr_Occurred())
            return -1;
    }
    if (get_attr_double(t->loop, S._now, &now) < 0)
        return -1;
    deliver_at = now + delay;
    if (get_attr_double(origin, S._horizon, &horizon) < 0)
        return -1;
    if (deliver_at < horizon)
        deliver_at = horizon;
    if (set_attr_double(origin, S._horizon, deliver_at) < 0)
        return -1;
    deliver = (origin == t->end0) ? t->deliver1 : t->deliver0;

    if (get_attr_ll(t->link, S._compact_at, &compact_at) < 0)
        return -1;
    if ((long long)PyList_GET_SIZE(t->pending) >= compact_at) {
        if (compact_pending_c(t) < 0)
            return -1;
    }
    seq = next_seq(t->seq_iter);
    if (seq < 0 && PyErr_Occurred())
        return -1;
    fn = PyList_GET_SIZE(t->freelist);
    if (fn > 0) {
        PyObject *margs;
        ev = (CEvent *)PyList_GET_ITEM(t->freelist, fn - 1);
        Py_INCREF(ev);
        if (PyList_SetSlice(t->freelist, fn - 1, fn, NULL) < 0) {
            Py_DECREF(ev);
            return -1;
        }
        margs = PyTuple_Pack(1, msg);
        if (margs == NULL) {
            Py_DECREF(ev);
            return -1;
        }
        ev->time = deliver_at;
        ev->priority = 0;
        ev->seq = seq;
        Py_INCREF(deliver);
        Py_XSETREF(ev->callback, deliver);
        Py_XSETREF(ev->args, margs);
        Py_INCREF(t->loop);
        Py_XSETREF(ev->loop, t->loop);
    }
    else {
        PyObject *margs = PyTuple_Pack(1, msg);
        if (margs == NULL)
            return -1;
        ev = cevent_make(deliver_at, 0, seq, deliver, margs, t->loop);
        Py_DECREF(margs);
        if (ev == NULL)
            return -1;
    }
    if (deliver_at == now) {
        PyObject *res = PyObject_CallOneArg(t->ready_append,
                                            (PyObject *)ev);
        if (res == NULL) {
            Py_DECREF(ev);
            return -1;
        }
        Py_DECREF(res);
    }
    else {
        if (heap_push(t->heap, (PyObject *)ev) < 0) {
            Py_DECREF(ev);
            return -1;
        }
    }
    if (attr_add_ll(t->loop, S._live, 1, NULL) < 0) {
        Py_DECREF(ev);
        return -1;
    }
    if (PyList_Append(t->pending, (PyObject *)ev) < 0) {
        Py_DECREF(ev);
        return -1;
    }
    Py_DECREF(ev);
    return 0;
}

static int
transmit_init(TransmitObj *self, PyObject *args, PyObject *kwds)
{
    PyObject *link, *ends;
    if (!PyArg_ParseTuple(args, "O", &link))
        return -1;
    Py_INCREF(link);
    Py_XSETREF(self->link, link);
    Py_XSETREF(self->loop, PyObject_GetAttr(link, S.loop));
    if (self->loop == NULL)
        return -1;
    Py_XSETREF(self->heap, PyObject_GetAttr(self->loop, S._heap));
    if (self->heap == NULL || !PyList_Check(self->heap)) {
        if (self->heap != NULL)
            PyErr_SetString(PyExc_TypeError, "loop._heap must be a list");
        return -1;
    }
    Py_XSETREF(self->ready, PyObject_GetAttr(self->loop, S._ready));
    if (self->ready == NULL)
        return -1;
    Py_XSETREF(self->seq_iter, PyObject_GetAttr(self->loop, S._seq));
    if (self->seq_iter == NULL)
        return -1;
    Py_XSETREF(self->rng, PyObject_GetAttr(self->loop, S.rng));
    if (self->rng == NULL)
        return -1;
    ends = PyObject_GetAttr(link, S.ends);
    if (ends == NULL)
        return -1;
    if (!PyTuple_Check(ends) || PyTuple_GET_SIZE(ends) != 2) {
        Py_DECREF(ends);
        PyErr_SetString(PyExc_TypeError, "link.ends must be a 2-tuple");
        return -1;
    }
    Py_INCREF(PyTuple_GET_ITEM(ends, 0));
    Py_XSETREF(self->end0, PyTuple_GET_ITEM(ends, 0));
    Py_INCREF(PyTuple_GET_ITEM(ends, 1));
    Py_XSETREF(self->end1, PyTuple_GET_ITEM(ends, 1));
    Py_DECREF(ends);
    Py_XSETREF(self->deliver0, PyObject_GetAttr(self->end0, S._cdeliver));
    if (self->deliver0 == NULL)
        return -1;
    Py_XSETREF(self->deliver1, PyObject_GetAttr(self->end1, S._cdeliver));
    if (self->deliver1 == NULL)
        return -1;
    Py_XSETREF(self->pending, PyObject_GetAttr(link, S._pending));
    if (self->pending == NULL || !PyList_Check(self->pending)) {
        if (self->pending != NULL)
            PyErr_SetString(PyExc_TypeError, "link._pending must be a list");
        return -1;
    }
    Py_XSETREF(self->freelist, PyObject_GetAttr(link, S._free));
    if (self->freelist == NULL || !PyList_Check(self->freelist)) {
        if (self->freelist != NULL)
            PyErr_SetString(PyExc_TypeError, "link._free must be a list");
        return -1;
    }
    Py_XSETREF(self->ready_append, PyObject_GetAttr(self->ready, S.append));
    if (self->ready_append == NULL)
        return -1;
    return 0;
}

static PyObject *
transmit_call(TransmitObj *self, PyObject *args, PyObject *kwds)
{
    PyObject *origin, *msg;
    if (!PyArg_ParseTuple(args, "OO", &origin, &msg))
        return NULL;
    if (transmit_impl(self, origin, msg) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static int
transmit_traverse(TransmitObj *self, visitproc visit, void *arg)
{
    Py_VISIT(self->link);
    Py_VISIT(self->loop);
    Py_VISIT(self->heap);
    Py_VISIT(self->ready);
    Py_VISIT(self->seq_iter);
    Py_VISIT(self->rng);
    Py_VISIT(self->end0);
    Py_VISIT(self->end1);
    Py_VISIT(self->deliver0);
    Py_VISIT(self->deliver1);
    Py_VISIT(self->pending);
    Py_VISIT(self->freelist);
    Py_VISIT(self->ready_append);
    return 0;
}

static int
transmit_clear(TransmitObj *self)
{
    Py_CLEAR(self->link);
    Py_CLEAR(self->loop);
    Py_CLEAR(self->heap);
    Py_CLEAR(self->ready);
    Py_CLEAR(self->seq_iter);
    Py_CLEAR(self->rng);
    Py_CLEAR(self->end0);
    Py_CLEAR(self->end1);
    Py_CLEAR(self->deliver0);
    Py_CLEAR(self->deliver1);
    Py_CLEAR(self->pending);
    Py_CLEAR(self->freelist);
    Py_CLEAR(self->ready_append);
    return 0;
}

static void
transmit_dealloc(TransmitObj *self)
{
    PyObject_GC_UnTrack(self);
    transmit_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyTypeObject LinkTransmitType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.network._ccore.LinkTransmit",
    .tp_basicsize = sizeof(TransmitObj),
    .tp_dealloc = (destructor)transmit_dealloc,
    .tp_call = (ternaryfunc)transmit_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled Link._base_transmit twin (hook-chain bottom).",
    .tp_traverse = (traverseproc)transmit_traverse,
    .tp_clear = (inquiry)transmit_clear,
    .tp_init = (initproc)transmit_init,
    .tp_new = PyType_GenericNew,
};


/* ------------------------------------------------------------------ */
/* SlotTransmit                                                        */
/* ------------------------------------------------------------------ */
typedef struct {
    PyObject_HEAD
    PyObject *slot;
    PyObject *end;               /* slot._end (ChannelEnd) */
    PyObject *wire;              /* end._wire (LinkEnd) */
    PyObject *hooks;             /* wire._link._hooks (list, in place) */
    PyObject *env_pool;          /* loop._env_pool (list) */
    PyObject *tunnel_id;         /* slot.tunnel_id (immutable) */
} SlotTransmitObj;

static PyTypeObject SlotTransmitType;

/* Mirror of Slot._transmit: counter bump, dead-end drop, and either
 * the hooked path (fresh, never-pooled envelope through the generic
 * chain) or the pooled fast path straight into the C link transmit. */
static int
slot_transmit_impl(SlotTransmitObj *st, PyObject *sig)
{
    PyObject *msg, *chain, *res;
    Py_ssize_t pn;
    int alive, hooked;

    if (attr_add_ll(st->slot, S.signals_sent, 1, NULL) < 0)
        return -1;
    alive = get_attr_bool(st->end, S.alive);
    if (alive < 0)
        return -1;
    if (!alive)
        return 0;
    hooked = PyList_GET_SIZE(st->hooks) != 0;
    if (hooked) {
        /* A hooked link (fault layer, tracer tap) may duplicate the
         * envelope or deliver it late; never pool those. */
        msg = PyObject_CallFunctionObjArgs(g_tunnelmsg_type, st->tunnel_id,
                                           sig, NULL);
        if (msg == NULL)
            return -1;
    }
    else {
        pn = PyList_GET_SIZE(st->env_pool);
        if (pn > 0) {
            msg = PyList_GET_ITEM(st->env_pool, pn - 1);
            Py_INCREF(msg);
            if (PyList_SetSlice(st->env_pool, pn - 1, pn, NULL) < 0) {
                Py_DECREF(msg);
                return -1;
            }
            if (PyObject_SetAttr(msg, S.tunnel_id, st->tunnel_id) < 0 ||
                PyObject_SetAttr(msg, S.signal, sig) < 0) {
                Py_DECREF(msg);
                return -1;
            }
        }
        else {
            msg = PyObject_CallFunctionObjArgs(g_tunnelmsg_type,
                                               st->tunnel_id, sig,
                                               Py_True, NULL);
            if (msg == NULL)
                return -1;
        }
    }
    chain = PyObject_GetAttr(st->wire, S._chain);
    if (chain == NULL) {
        Py_DECREF(msg);
        return -1;
    }
    if (!hooked && Py_TYPE(chain) == &LinkTransmitType) {
        int stx = transmit_impl((TransmitObj *)chain, st->wire, msg);
        Py_DECREF(chain);
        Py_DECREF(msg);
        return stx;
    }
    res = PyObject_CallFunctionObjArgs(chain, st->wire, msg, NULL);
    Py_DECREF(chain);
    Py_DECREF(msg);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* slot._tx(sig) for the FSM fast path: fuse into the SlotTransmit
 * kernel when the slot carries one (the compiled-backend default),
 * fall back to the generic callable otherwise. */
static int
fsm_tx(PyObject *slot, PyObject *sig)
{
    PyObject *tx = PyObject_GetAttr(slot, S._tx);
    int st;
    if (tx == NULL)
        return -1;
    if (Py_TYPE(tx) == &SlotTransmitType)
        st = slot_transmit_impl((SlotTransmitObj *)tx, sig);
    else {
        PyObject *res = PyObject_CallOneArg(tx, sig);
        st = (res == NULL) ? -1 : 0;
        Py_XDECREF(res);
    }
    Py_DECREF(tx);
    return st;
}

static int
slot_transmit_init(SlotTransmitObj *self, PyObject *args, PyObject *kwds)
{
    PyObject *slot, *link, *loop;
    if (!PyArg_ParseTuple(args, "O", &slot))
        return -1;
    if (ensure_protocol() < 0)
        return -1;
    Py_INCREF(slot);
    Py_XSETREF(self->slot, slot);
    Py_XSETREF(self->end, PyObject_GetAttr(slot, S._end));
    if (self->end == NULL)
        return -1;
    Py_XSETREF(self->wire, PyObject_GetAttr(self->end, S._wire));
    if (self->wire == NULL)
        return -1;
    link = PyObject_GetAttr(self->wire, S._link);
    if (link == NULL)
        return -1;
    Py_XSETREF(self->hooks, PyObject_GetAttr(link, S._hooks));
    Py_DECREF(link);
    if (self->hooks == NULL || !PyList_Check(self->hooks)) {
        if (self->hooks != NULL)
            PyErr_SetString(PyExc_TypeError, "link._hooks must be a list");
        return -1;
    }
    loop = PyObject_GetAttr(slot, S._loop);
    if (loop == NULL)
        return -1;
    Py_XSETREF(self->env_pool, PyObject_GetAttr(loop, S._env_pool));
    Py_DECREF(loop);
    if (self->env_pool == NULL || !PyList_Check(self->env_pool)) {
        if (self->env_pool != NULL)
            PyErr_SetString(PyExc_TypeError, "loop._env_pool must be a list");
        return -1;
    }
    Py_XSETREF(self->tunnel_id, PyObject_GetAttr(slot, S.tunnel_id));
    if (self->tunnel_id == NULL)
        return -1;
    return 0;
}

static PyObject *
slot_transmit_call(SlotTransmitObj *self, PyObject *args, PyObject *kwds)
{
    PyObject *sig;
    if (!PyArg_ParseTuple(args, "O", &sig))
        return NULL;
    if (slot_transmit_impl(self, sig) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static int
slot_transmit_traverse(SlotTransmitObj *self, visitproc visit, void *arg)
{
    Py_VISIT(self->slot);
    Py_VISIT(self->end);
    Py_VISIT(self->wire);
    Py_VISIT(self->hooks);
    Py_VISIT(self->env_pool);
    Py_VISIT(self->tunnel_id);
    return 0;
}

static int
slot_transmit_clear(SlotTransmitObj *self)
{
    Py_CLEAR(self->slot);
    Py_CLEAR(self->end);
    Py_CLEAR(self->wire);
    Py_CLEAR(self->hooks);
    Py_CLEAR(self->env_pool);
    Py_CLEAR(self->tunnel_id);
    return 0;
}

static void
slot_transmit_dealloc(SlotTransmitObj *self)
{
    PyObject_GC_UnTrack(self);
    slot_transmit_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyTypeObject SlotTransmitType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.network._ccore.SlotTransmit",
    .tp_basicsize = sizeof(SlotTransmitObj),
    .tp_dealloc = (destructor)slot_transmit_dealloc,
    .tp_call = (ternaryfunc)slot_transmit_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled Slot._transmit twin (per-signal send path).",
    .tp_traverse = (traverseproc)slot_transmit_traverse,
    .tp_clear = (inquiry)slot_transmit_clear,
    .tp_init = (initproc)slot_transmit_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* drain(loop, limit)                                                  */
/* ------------------------------------------------------------------ */

/* Peek the merged-order front of the two lanes; when it is an
 * uncancelled CEvent carrying the same Deliver callback at the same
 * instant, pop it (returns 1, event in *out).  Returns 0 when the
 * front does not extend the batch, -1 on error.  Pops draw no seqs and
 * run no user code, so batch membership cannot change while
 * collecting. */
static int
pop_matching_deliver(PyObject *heap, PyObject *ready,
                     PyObject *ready_popleft, PyObject *cb,
                     double t, PyObject **out)
{
    Py_ssize_t hs = PyList_GET_SIZE(heap);
    Py_ssize_t rs = PyObject_Length(ready);
    PyObject *front;
    CEvent *c;
    int from_ready;

    *out = NULL;
    if (rs < 0)
        return -1;
    if (rs > 0) {
        PyObject *r0 = PySequence_GetItem(ready, 0);
        if (r0 == NULL)
            return -1;
        /* the deque's own reference keeps r0 alive after this DECREF */
        Py_DECREF(r0);
        if (hs > 0) {
            int lt = ev_lt(PyList_GET_ITEM(heap, 0), r0);
            if (lt < 0)
                return -1;
            if (lt) {
                front = PyList_GET_ITEM(heap, 0);
                from_ready = 0;
            }
            else {
                front = r0;
                from_ready = 1;
            }
        }
        else {
            front = r0;
            from_ready = 1;
        }
    }
    else if (hs > 0) {
        front = PyList_GET_ITEM(heap, 0);
        from_ready = 0;
    }
    else
        return 0;
    if (!CEvent_CheckExact(front))
        return 0;
    c = (CEvent *)front;
    if (c->cancelled || c->callback != cb || c->time != t
        || !PyTuple_Check(c->args) || PyTuple_GET_SIZE(c->args) != 1)
        return 0;
    if (from_ready)
        *out = PyObject_CallNoArgs(ready_popleft);
    else
        *out = heap_pop(heap);
    return (*out == NULL) ? -1 : 1;
}

static PyObject *
mod_drain(PyObject *mod, PyObject *args)
{
    PyObject *loop;
    long long limit, executed = 0;
    PyObject *heap, *ready, *ready_popleft;
    int failed = 0;

    if (!PyArg_ParseTuple(args, "OL", &loop, &limit))
        return NULL;
    heap = PyObject_GetAttr(loop, S._heap);
    if (heap == NULL)
        return NULL;
    if (!PyList_Check(heap)) {
        Py_DECREF(heap);
        PyErr_SetString(PyExc_TypeError, "loop._heap must be a list");
        return NULL;
    }
    ready = PyObject_GetAttr(loop, S._ready);
    if (ready == NULL) {
        Py_DECREF(heap);
        return NULL;
    }
    ready_popleft = PyObject_GetAttr(ready, S.popleft);
    if (ready_popleft == NULL) {
        Py_DECREF(heap);
        Py_DECREF(ready);
        return NULL;
    }

    for (;;) {
        CEvent *ev;
        PyObject *ev_obj = NULL;
        Py_ssize_t hs, rs;
        double now;
        PyObject *cb;
        int st;

        if (executed == limit)
            break;
        hs = PyList_GET_SIZE(heap);
        rs = PyObject_Length(ready);
        if (rs < 0) {
            failed = 1;
            break;
        }
        if (rs > 0) {
            PyObject *r0 = PySequence_GetItem(ready, 0);
            if (r0 == NULL) {
                failed = 1;
                break;
            }
            if (hs > 0) {
                PyObject *f0 = PyList_GET_ITEM(heap, 0);
                int lt = ev_lt(f0, r0);
                Py_DECREF(r0);
                if (lt < 0) {
                    failed = 1;
                    break;
                }
                if (lt) {
                    ev_obj = heap_pop(heap);
                }
                else {
                    ev_obj = PyObject_CallNoArgs(ready_popleft);
                }
            }
            else {
                Py_DECREF(r0);
                ev_obj = PyObject_CallNoArgs(ready_popleft);
            }
        }
        else if (hs > 0) {
            ev_obj = heap_pop(heap);
        }
        else {
            break;
        }
        if (ev_obj == NULL) {
            failed = 1;
            break;
        }
        if (!CEvent_CheckExact(ev_obj)) {
            /* Foreign event object (should not happen under the
             * compiled backend, but stay safe): emulate the Python
             * drain on it via attribute access. */
            PyObject *c = PyObject_GetAttrString(ev_obj, "cancelled");
            int cflag = c ? PyObject_IsTrue(c) : -1;
            Py_XDECREF(c);
            if (cflag < 0) {
                Py_DECREF(ev_obj);
                failed = 1;
                break;
            }
            if (cflag) {
                Py_DECREF(ev_obj);
                continue;
            }
            executed++;
            if (PyObject_SetAttrString(ev_obj, "_loop", Py_None) < 0 ||
                get_attr_double(loop, S._now, &now) < 0) {
                Py_DECREF(ev_obj);
                failed = 1;
                break;
            }
            {
                PyObject *tv = PyObject_GetAttrString(ev_obj, "time");
                PyObject *cbv, *argv, *res;
                double tval = tv ? PyFloat_AsDouble(tv) : -1.0;
                Py_XDECREF(tv);
                if (tv == NULL || (tval == -1.0 && PyErr_Occurred())) {
                    Py_DECREF(ev_obj);
                    failed = 1;
                    break;
                }
                if (tval != now &&
                    set_attr_double(loop, S._now, tval) < 0) {
                    Py_DECREF(ev_obj);
                    failed = 1;
                    break;
                }
                cbv = PyObject_GetAttrString(ev_obj, "callback");
                argv = cbv ? PyObject_GetAttrString(ev_obj, "args") : NULL;
                res = argv ? PyObject_CallObject(cbv, argv) : NULL;
                Py_XDECREF(cbv);
                Py_XDECREF(argv);
                Py_DECREF(ev_obj);
                if (res == NULL) {
                    failed = 1;
                    break;
                }
                Py_DECREF(res);
            }
            continue;
        }
        ev = (CEvent *)ev_obj;
        if (ev->cancelled) {
            Py_DECREF(ev_obj);
            continue;
        }
        executed++;
        /* detach before the callback so a post-hoc cancel() cannot
         * double-count */
        Py_CLEAR(ev->loop);
        /* clock: one store per same-timestamp batch; re-read per event
         * because a callback may run nested timed drains */
        if (get_attr_double(loop, S._now, &now) < 0) {
            Py_DECREF(ev_obj);
            failed = 1;
            break;
        }
        if (ev->time != now) {
            if (set_attr_double(loop, S._now, ev->time) < 0) {
                Py_DECREF(ev_obj);
                failed = 1;
                break;
            }
        }
        cb = ev->callback;
        if (Py_TYPE(cb) == &DeliverType && PyTuple_GET_SIZE(ev->args) == 1) {
            /* Batched cross-link delivery: same-instant deliveries to
             * the same link end collapse into one C walk when the
             * delivery runs no user code (a down link drops; a Receive
             * kernel only appends thunks), so nothing a batched event
             * does can cancel or reorder the events collected behind
             * it. */
            DeliverObj *d = (DeliverObj *)cb;
            PyObject *recv = NULL;
            int down = get_attr_bool(d->link, S.down);
            int batch_ok = down;
            st = 0;
            if (down < 0)
                st = -1;
            else if (!down) {
                recv = PyObject_GetAttr(d->end, S._receiver);
                if (recv == NULL)
                    st = -1;
                else
                    batch_ok = (Py_TYPE(recv) == &ReceiveType);
            }
            if (st == 0 && batch_ok) {
                PyObject *extra[DELIVER_BATCH_MAX];
                PyObject *msgs[DELIVER_BATCH_MAX];
                Py_ssize_t nx = 0, i;
                msgs[0] = PyTuple_GET_ITEM(ev->args, 0);
                while (nx + 1 < DELIVER_BATCH_MAX && executed != limit) {
                    PyObject *nxt = NULL;
                    int got = pop_matching_deliver(heap, ready,
                                                   ready_popleft, cb,
                                                   ev->time, &nxt);
                    if (got < 0) {
                        st = -1;
                        break;
                    }
                    if (!got)
                        break;
                    executed++;
                    Py_CLEAR(((CEvent *)nxt)->loop);
                    extra[nx] = nxt;
                    msgs[nx + 1] =
                        PyTuple_GET_ITEM(((CEvent *)nxt)->args, 0);
                    nx++;
                }
                if (st == 0 && !down)
                    st = receive_batch((ReceiveObj *)recv, msgs, nx + 1);
                for (i = 0; i < nx; i++)
                    Py_DECREF(extra[i]);
            }
            else if (st == 0) {
                st = deliver_impl(d, PyTuple_GET_ITEM(ev->args, 0));
            }
            Py_XDECREF(recv);
        }
        else if (Py_TYPE(cb) == &FinishType &&
                 PyTuple_GET_SIZE(ev->args) == 0) {
            st = finish_impl((FinishObj *)cb);
        }
        else {
            PyObject *res = PyObject_CallObject(cb, ev->args);
            st = (res == NULL) ? -1 : 0;
            Py_XDECREF(res);
        }
        Py_DECREF(ev_obj);
        if (st < 0) {
            failed = 1;
            break;
        }
    }

    /* deferred counter flush (exception-safe, mirrors the Python
     * drain's finally block) */
    {
        PyObject *etype = NULL, *eval = NULL, *etb = NULL;
        if (failed)
            PyErr_Fetch(&etype, &eval, &etb);
        if (attr_add_ll(loop, S._live, -executed, NULL) < 0 ||
            attr_add_ll(loop, S.executed, executed, NULL) < 0) {
            if (failed)
                PyErr_Clear();   /* keep the original exception */
            else
                failed = 1;
        }
        if (etype != NULL || eval != NULL || etb != NULL)
            PyErr_Restore(etype, eval, etb);
    }
    Py_DECREF(heap);
    Py_DECREF(ready);
    Py_DECREF(ready_popleft);
    if (failed)
        return NULL;
    return PyLong_FromLongLong(executed);
}

/* ------------------------------------------------------------------ */
/* module                                                              */
/* ------------------------------------------------------------------ */
static PyMethodDef ccore_methods[] = {
    {"drain", mod_drain, METH_VARARGS,
     "drain(loop, limit) -> int\n\n"
     "Untimed batched two-lane drain; executes events in strict\n"
     "(time, priority, seq) order until both lanes empty or `limit`\n"
     "events have run (limit < 0 means no budget).  Returns the number\n"
     "of events executed.  Mirrors EventLoop._drain_py exactly."},
    {NULL, NULL, 0, NULL}
};

static struct PyModuleDef ccore_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.network._ccore",
    .m_doc = "Compiled kernels for the repro event core "
             "(see repro.network.backend).",
    .m_size = -1,
    .m_methods = ccore_methods,
};

static int
intern_all(void)
{
#define INTERN(field, text)                                   \
    do {                                                      \
        S.field = PyUnicode_InternFromString(text);           \
        if (S.field == NULL)                                  \
            return -1;                                        \
    } while (0)
    INTERN(_heap, "_heap");
    INTERN(_ready, "_ready");
    INTERN(_now, "_now");
    INTERN(_live, "_live");
    INTERN(executed, "executed");
    INTERN(_seq, "_seq");
    INTERN(trace, "trace");
    INTERN(_env_pool, "_env_pool");
    INTERN(rng, "rng");
    INTERN(_compact, "_compact");
    INTERN(popleft, "popleft");
    INTERN(append, "append");
    INTERN(sample, "sample");
    INTERN(down, "down");
    INTERN(sent, "sent");
    INTERN(latency, "latency");
    INTERN(fixed_delay, "fixed_delay");
    INTERN(_pending, "_pending");
    INTERN(_compact_at, "_compact_at");
    INTERN(_free, "_free");
    INTERN(_horizon, "_horizon");
    INTERN(_receiver, "_receiver");
    INTERN(_peer, "_peer");
    INTERN(_cdeliver, "_cdeliver");
    INTERN(ends, "ends");
    INTERN(loop, "loop");
    INTERN(offline, "offline");
    INTERN(dropped_while_offline, "dropped_while_offline");
    INTERN(_inbox, "_inbox");
    INTERN(_busy, "_busy");
    INTERN(_stim_event, "_stim_event");
    INTERN(handled, "handled");
    INTERN(cost, "cost");
    INTERN(_finish_cb, "_finish_cb");
    INTERN(_link, "_link");
    INTERN(_node, "_node");
    INTERN(_loop, "_loop");
    INTERN(_process, "_process");
    INTERN(_process_fn, "_process_fn");
    INTERN(alive, "alive");
    INTERN(slots, "slots");
    INTERN(owner, "owner");
    INTERN(on_tunnel_signal, "on_tunnel_signal");
    INTERN(signal, "signal");
    INTERN(tunnel_id, "tunnel_id");
    INTERN(pooled, "pooled");
    INTERN(state, "state");
    INTERN(_retx_kind, "_retx_kind");
    INTERN(signals_received, "signals_received");
    INTERN(signals_sent, "signals_sent");
    INTERN(_cancel_retx, "_cancel_retx");
    INTERN(_wire, "_wire");
    INTERN(_chain, "_chain");
    INTERN(_end, "_end");
    INTERN(_transmit, "_transmit");
    INTERN(_hooks, "_hooks");
    INTERN(qualname, "__qualname__");
    INTERN(retransmit, "retransmit");
    INTERN(strict, "strict");
    INTERN(failed, "failed");
    INTERN(medium, "medium");
    INTERN(remote_descriptor, "remote_descriptor");
    INTERN(local_descriptor, "local_descriptor");
    INTERN(selector_received, "selector_received");
    INTERN(selector_sent, "selector_sent");
    INTERN(descriptor, "descriptor");
    INTERN(selector, "selector");
    INTERN(race_drops, "race_drops");
    INTERN(stale_drops, "stale_drops");
    INTERN(side, "side");
    INTERN(_tx, "_tx");
    INTERN(_retx_timer, "_retx_timer");
    INTERN(_stale_timer, "_stale_timer");
    INTERN(_busy_timer, "_busy_timer");
    INTERN(maps, "maps");
    INTERN(_by_slot, "_by_slot");
    INTERN(goal_receive, "goal_receive");
    INTERN(after_stimulus, "after_stimulus");
    INTERN(admission, "admission");
    INTERN(goal_gen, "goal_gen");
    INTERN(_poll_gen, "_poll_gen");
#undef INTERN
    return 0;
}

PyMODINIT_FUNC
PyInit__ccore(void)
{
    PyObject *mod;
    if (intern_all() < 0)
        return NULL;
    g_empty_tuple = PyTuple_New(0);
    if (g_empty_tuple == NULL)
        return NULL;
    if (PyType_Ready(&CEventType) < 0 ||
        PyType_Ready(&DeliverType) < 0 ||
        PyType_Ready(&ReceiveType) < 0 ||
        PyType_Ready(&FinishType) < 0 ||
        PyType_Ready(&ProcessType) < 0 ||
        PyType_Ready(&LinkTransmitType) < 0 ||
        PyType_Ready(&SlotTransmitType) < 0)
        return NULL;
    mod = PyModule_Create(&ccore_module);
    if (mod == NULL)
        return NULL;
    if (PyModule_AddIntConstant(mod, "ABI_VERSION", CCORE_ABI_VERSION) < 0)
        goto fail;
    Py_INCREF(&CEventType);
    if (PyModule_AddObject(mod, "Event", (PyObject *)&CEventType) < 0)
        goto fail;
    Py_INCREF(&DeliverType);
    if (PyModule_AddObject(mod, "Deliver", (PyObject *)&DeliverType) < 0)
        goto fail;
    Py_INCREF(&ReceiveType);
    if (PyModule_AddObject(mod, "Receive", (PyObject *)&ReceiveType) < 0)
        goto fail;
    Py_INCREF(&FinishType);
    if (PyModule_AddObject(mod, "Finish", (PyObject *)&FinishType) < 0)
        goto fail;
    Py_INCREF(&ProcessType);
    if (PyModule_AddObject(mod, "Process", (PyObject *)&ProcessType) < 0)
        goto fail;
    Py_INCREF(&LinkTransmitType);
    if (PyModule_AddObject(mod, "LinkTransmit",
                           (PyObject *)&LinkTransmitType) < 0)
        goto fail;
    Py_INCREF(&SlotTransmitType);
    if (PyModule_AddObject(mod, "SlotTransmit",
                           (PyObject *)&SlotTransmitType) < 0)
        goto fail;
    return mod;
fail:
    Py_DECREF(mod);
    return NULL;
}
