"""Deterministic fault injection for links, agents, and whole runs.

The paper's protocol claim (Sec. VI) is that tunnel signals are
*idempotent and unilateral*, so the protocol converges even when signals
are lost and retransmitted.  The simulator's links are perfectly
reliable, so this module supplies the adversary: a :class:`FaultPlan`
describes seeded drop/duplicate/reorder/delay-jitter policies plus
scheduled link flaps and box crash-restart windows, and a
:class:`FaultyLink` installs that plan on one
:class:`~repro.network.transport.Link` as a transmit hook (the same
seam the tracing layer taps).

Every random decision draws from the event loop's own ``random.Random``
(``loop.rng``), so a run under a fault plan is exactly as reproducible
as a fault-free run: one seed, one trace.

Layering note: this module knows nothing about the signaling protocol.
Callers that want faults confined to the tunnel-signal plane (the media
control protocol proper, which carries the retransmission machinery)
pass an ``exempt`` predicate — the Network facade exempts meta-signal
envelopes, which model the out-of-band channel operations the paper
keeps on reliable transport.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Optional, Tuple

from ..obs.events import FaultInjected
from .transport import Link, LinkEnd, TransmitFn

__all__ = ["FaultPlan", "FaultStats", "FaultyLink", "CrashSchedule",
           "PLANS", "plan_by_name", "scaled_plan"]


@dataclass(frozen=True)
class FaultPlan:
    """A declarative description of how a link misbehaves.

    Probabilities are per transmitted message (a duplicated message's
    copies suffer drop independently).  ``jitter`` adds a uniform extra
    delay in seconds on top of the link's latency model.  ``reorder`` is
    the probability that a delivery skips the FIFO horizon clamp and may
    overtake earlier traffic in the same direction.  ``flaps`` are
    ``(at, duration)`` outage windows during which the link is down and
    in-flight traffic is dropped.
    """

    name: str = "custom"
    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    jitter: float = 0.0
    flaps: Tuple[Tuple[float, float], ...] = ()

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "drop": self.drop,
            "duplicate": self.duplicate,
            "reorder": self.reorder,
            "jitter": self.jitter,
            "flaps": [list(f) for f in self.flaps],
        }


@dataclass
class FaultStats:
    """Counters of what the adversary actually did (observability)."""

    forwarded: int = 0
    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    jittered: int = 0
    flap_drops: int = 0
    exempted: int = 0

    def merge(self, other: "FaultStats") -> "FaultStats":
        return FaultStats(
            forwarded=self.forwarded + other.forwarded,
            dropped=self.dropped + other.dropped,
            duplicated=self.duplicated + other.duplicated,
            reordered=self.reordered + other.reordered,
            jittered=self.jittered + other.jittered,
            flap_drops=self.flap_drops + other.flap_drops,
            exempted=self.exempted + other.exempted)

    def to_json(self) -> Dict[str, int]:
        return {
            "forwarded": self.forwarded,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "jittered": self.jittered,
            "flap_drops": self.flap_drops,
            "exempted": self.exempted,
        }


class FaultyLink:
    """Installs a :class:`FaultPlan` on one link as a transmit hook.

    The hook sits in the link's transmit chain (the link object is
    shared by both channel ends, so every message in both directions
    passes through).  Non-exempt traffic is scheduled directly through
    the link's own ``_schedule`` internals — the FIFO horizon, in-flight
    tracking, and teardown cancellation all keep working — while exempt
    traffic is forwarded unharmed to the next layer of the chain.
    """

    def __init__(self, link: Link, plan: FaultPlan,
                 exempt: Optional[Callable[[Any], bool]] = None,
                 stats: Optional[FaultStats] = None):
        self.link = link
        self.plan = plan
        self.exempt = exempt
        self.stats = stats if stats is not None else FaultStats()
        link.add_transmit_hook(self._hook, innermost=True)
        for at, duration in plan.flaps:
            link.loop.schedule_at(at, self._flap_down, duration)

    def uninstall(self) -> None:
        """Remove the plan from the link's transmit chain."""
        self.link.remove_transmit_hook(self._hook)

    # -- the faulty transmit ----------------------------------------------
    def _hook(self, origin: LinkEnd, message: Any,
              forward: TransmitFn) -> None:
        link = self.link
        if link.down:
            return
        if self.exempt is not None and self.exempt(message):
            self.stats.exempted += 1
            forward(origin, message)
            return
        plan = self.plan
        rng = link.loop.rng
        tr = link.loop.trace
        link.sent += 1
        copies = 1
        if plan.duplicate and rng.random() < plan.duplicate:
            copies = 2
            self.stats.duplicated += 1
            if tr is not None:
                tr.emit(FaultInjected(ts=link.loop.now, link=link.name,
                                      action="duplicate",
                                      detail=str(message)))
        for _ in range(copies):
            if plan.drop and rng.random() < plan.drop:
                self.stats.dropped += 1
                if tr is not None:
                    tr.emit(FaultInjected(ts=link.loop.now, link=link.name,
                                          action="drop",
                                          detail=str(message)))
                continue
            delay = link.latency.sample(rng)
            if plan.jitter:
                delay += rng.uniform(0.0, plan.jitter)
                self.stats.jittered += 1
            fifo = True
            if plan.reorder and rng.random() < plan.reorder:
                fifo = False
                self.stats.reordered += 1
                if tr is not None:
                    tr.emit(FaultInjected(ts=link.loop.now, link=link.name,
                                          action="reorder",
                                          detail=str(message)))
            link._schedule(origin, message, delay, fifo=fifo)
            self.stats.forwarded += 1

    # -- link flaps --------------------------------------------------------
    def _flap_down(self, duration: float) -> None:
        link = self.link
        if link.down:
            return  # already torn down for real; stay down
        link.down = True
        self.stats.flap_drops += link._drop_in_flight()
        tr = link.loop.trace
        if tr is not None:
            tr.emit(FaultInjected(ts=link.loop.now, link=link.name,
                                  action="flap-down",
                                  detail="%gs" % duration))
        link.loop.schedule(duration, self._flap_up)

    def _flap_up(self) -> None:
        link = self.link
        link.down = False
        tr = link.loop.trace
        if tr is not None:
            tr.emit(FaultInjected(ts=link.loop.now, link=link.name,
                                  action="flap-up"))


class CrashSchedule:
    """Scheduled crash-restart windows for an agent's node.

    During ``(at, at + duration)`` the node is offline: stimuli —
    deliveries and its own timers alike — are dropped.  The agent's
    Python state survives (a restart from stable storage); recovery
    relies on peers retransmitting into the restarted process.
    """

    def __init__(self, node: Any,
                 windows: Tuple[Tuple[float, float], ...]):
        self.node = node
        self.windows = windows
        self.crashes = 0
        #: Timers (retransmit, staleness, busy-retry) cancelled by
        #: crashes: a dead process's pending alarms die with it.
        self.timers_cancelled = 0
        for at, duration in windows:
            node.loop.schedule_at(at, self._crash, duration)

    def _crash(self, duration: float) -> None:
        self.node.offline = True
        self.crashes += 1
        # The crash wipes the process's alarm table.  Without this, a
        # retransmit timer armed before the crash survives the outage
        # and fires into the *restarted* node — a ghost of the dead
        # incarnation driving the protocol.
        self.timers_cancelled += self.node.cancel_timers()
        tr = self.node.loop.trace
        if tr is not None:
            tr.emit(FaultInjected(ts=self.node.loop.now,
                                  link=self.node.name, action="crash",
                                  detail="%gs" % duration))
        self.node.loop.schedule(duration, self._restart)

    def _restart(self) -> None:
        self.node.offline = False
        tr = self.node.loop.trace
        if tr is not None:
            tr.emit(FaultInjected(ts=self.node.loop.now,
                                  link=self.node.name, action="restart"))


# ----------------------------------------------------------------------
# named plans (the chaos CLI's vocabulary)
# ----------------------------------------------------------------------
PLANS: Dict[str, FaultPlan] = {
    "none": FaultPlan(name="none"),
    "drop10": FaultPlan(name="drop10", drop=0.10),
    "dup10": FaultPlan(name="dup10", duplicate=0.10),
    "drop10+dup10": FaultPlan(name="drop10+dup10", drop=0.10,
                              duplicate=0.10),
    "drop20+dup20": FaultPlan(name="drop20+dup20", drop=0.20,
                              duplicate=0.20),
    "jitter": FaultPlan(name="jitter", jitter=0.05),
    "lossy-jitter": FaultPlan(name="lossy-jitter", drop=0.10,
                              duplicate=0.10, jitter=0.05),
    "flaky": FaultPlan(name="flaky", drop=0.05,
                       flaps=((1.0, 0.4), (4.0, 0.4))),
}


def plan_by_name(name: str) -> FaultPlan:
    """Look up a named plan; raises ``KeyError`` with the known names."""
    try:
        return PLANS[name]
    except KeyError:
        raise KeyError("unknown fault plan %r (known: %s)"
                       % (name, ", ".join(sorted(PLANS))))


def scaled_plan(base: FaultPlan, drop: float) -> FaultPlan:
    """``base`` with its drop rate replaced — used by the chaos bench
    sweep over fault rates."""
    return replace(base, name="%s@drop%.2f" % (base.name, drop), drop=drop)
