"""Latency models for simulated links.

The paper's performance analysis (Sec. VIII-C) is parameterised by two
constants: ``n``, the time for the network to deliver a signal to the next
box, and ``c``, the time for a box to process one stimulus.  The latency
models here produce the per-message ``n``; processing cost ``c`` lives in
:mod:`repro.network.node`.

All models preserve FIFO delivery: a message handed to the link after an
earlier one is never delivered before it, even under jitter.  This mirrors
TCP, which the paper assumes for signaling channels ("a signaling channel
can be regarded as FIFO and reliable", Sec. I).
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = [
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "PAPER_N",
    "PAPER_C",
]

#: Average one-hop network delay measured by the authors on "a typical
#: carrier network with multiple geographic sites" (Sec. VIII-C).
PAPER_N = 0.034

#: Typical per-stimulus server processing cost from Sec. VIII-C.
PAPER_C = 0.020


class LatencyModel:
    """Base class: produces per-message one-way delays."""

    #: When not ``None``, every sample is this constant and drawing it
    #: consumes no randomness — the transport reads the attribute
    #: instead of paying a ``sample()`` call per message.  Models whose
    #: delay depends on the RNG must leave it ``None``: skipping their
    #: ``sample()`` would desynchronize the seeded random stream.
    fixed_delay: Optional[float] = None

    def sample(self, rng: random.Random) -> float:
        """Return the next message's network delay in seconds."""
        raise NotImplementedError

    @property
    def mean(self) -> float:
        """Mean delay, used by analytic formulas."""
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """Every message takes exactly ``delay`` seconds."""

    def __init__(self, delay: float = PAPER_N):
        if delay < 0:
            raise ValueError("latency must be non-negative")
        self.delay = delay
        self.fixed_delay = delay

    def sample(self, rng: random.Random) -> float:
        return self.delay

    @property
    def mean(self) -> float:
        return self.delay

    def __repr__(self) -> str:
        return "FixedLatency(%g)" % self.delay


class UniformLatency(LatencyModel):
    """Delays drawn uniformly from ``[low, high]``.

    FIFO order across messages is restored by the link (see
    :class:`repro.network.transport.Link`), which clamps each delivery
    time to be no earlier than the previous one in the same direction.
    """

    def __init__(self, low: float, high: Optional[float] = None):
        if high is None:
            high = low
        if low < 0 or high < low:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return "UniformLatency(%g, %g)" % (self.low, self.high)
