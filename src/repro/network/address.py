"""Network addresses for the simulated media and signaling planes.

A media endpoint is identified to its peers by an :class:`Address`
(host, port) pair, carried inside protocol descriptors (Sec. VI-B of the
paper: "A descriptor contains an IP address, port number, and
priority-ordered list of codecs").  The :class:`AddressAllocator` hands
out unique addresses the way a host's socket layer would hand out ports.

With the live transport (:mod:`repro.livenet`) addresses also arrive
from outside the process — gateway requests, peer flags, decoded wire
descriptors — so parsing is strict: :func:`parse_hostport` and
:meth:`Address.parse` reject malformed input with a structured
:class:`AddressError` naming the offending text and the reason, instead
of propagating a bare ``ValueError`` from ``int()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

__all__ = ["Address", "AddressError", "AddressAllocator", "parse_hostport"]

#: Characters allowed in a host name or literal: letters, digits, dots,
#: dashes, and underscores.  (IPv6 bracket literals are deliberately out
#: of scope for the simulated planes; the live transport binds v4.)
_HOST_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.-_")

_MAX_HOST_LEN = 253  # RFC 1035 limit; also bounds wire-decoded hosts


class AddressError(ValueError):
    """A host:port string (or component) failed validation.

    Subclasses ``ValueError`` so legacy ``except ValueError`` sites keep
    working, but carries the offending ``text`` and a stable ``reason``
    slug so wire- and gateway-facing code can answer with a structured
    error instead of a stack trace.
    """

    def __init__(self, text: object, reason: str, detail: str = ""):
        self.text = text
        self.reason = reason
        self.detail = detail
        super().__init__("bad address %r: %s%s"
                         % (text, reason, " (%s)" % detail if detail else ""))


def _check_host(host: str, text: object) -> str:
    if not host:
        raise AddressError(text, "empty-host")
    if len(host) > _MAX_HOST_LEN:
        raise AddressError(text, "host-too-long",
                           "%d > %d chars" % (len(host), _MAX_HOST_LEN))
    bad = set(host) - _HOST_OK
    if bad:
        raise AddressError(text, "bad-host-char",
                           "".join(sorted(bad)))
    if host.startswith("-") or host.startswith("."):
        raise AddressError(text, "bad-host-start", host[0])
    return host


def _check_port(port: int, text: object) -> int:
    if not (0 < port < 65536):
        raise AddressError(text, "port-out-of-range", str(port))
    return port


def parse_hostport(text: str) -> Tuple[str, int]:
    """Parse ``"host:port"`` strictly into a validated ``(host, port)``.

    Raises :class:`AddressError` (never a bare ``ValueError``) on: a
    non-string, a missing or extra colon, an empty or over-long host,
    characters outside ``[A-Za-z0-9.-_]``, a non-numeric port, or a port
    outside 1..65535.
    """
    if not isinstance(text, str):
        raise AddressError(text, "not-a-string", type(text).__name__)
    if len(text) > _MAX_HOST_LEN + 6:
        raise AddressError(text[:64] + "...", "too-long",
                           "%d chars" % len(text))
    host, sep, port_text = text.rpartition(":")
    if not sep:
        raise AddressError(text, "missing-port")
    if ":" in host:
        raise AddressError(text, "extra-colon")
    _check_host(host, text)
    if not port_text.isdigit():
        raise AddressError(text, "bad-port", port_text or "<empty>")
    return host, _check_port(int(port_text), text)


@dataclass(frozen=True, order=True)
class Address:
    """An (IP host, UDP port) pair identifying one media receive point."""

    host: str
    port: int

    @classmethod
    def parse(cls, text: str) -> "Address":
        """Strictly parse ``"host:port"``; raises :class:`AddressError`
        on anything malformed (see :func:`parse_hostport`)."""
        host, port = parse_hostport(text)
        return cls(host, port)

    def validate(self) -> "Address":
        """Re-check an address built from decoded wire fields; returns
        ``self`` or raises :class:`AddressError`."""
        _check_host(self.host, self)
        if not isinstance(self.port, int) or isinstance(self.port, bool):
            raise AddressError(self, "bad-port", repr(self.port))
        _check_port(self.port, self)
        return self

    def __str__(self) -> str:
        return "%s:%d" % (self.host, self.port)


class AddressAllocator:
    """Allocates unique media addresses per host.

    Ports start at 10000 (even numbers, the RTP convention) and increase
    monotonically per host, so a run never reuses an address and stale
    descriptors are detectable in tests.
    """

    BASE_PORT = 10000

    def __init__(self) -> None:
        self._next_port: Dict[str, int] = {}
        self._next_host = 1

    def host(self) -> str:
        """Allocate a fresh simulated host (10.0.x.y style)."""
        index = self._next_host
        self._next_host += 1
        return "10.%d.%d.%d" % (index // 65536, (index // 256) % 256,
                                index % 256)

    def allocate(self, host: str) -> Address:
        """Allocate a fresh media address on ``host``."""
        port = self._next_port.get(host, self.BASE_PORT)
        self._next_port[host] = port + 2
        return Address(host, port)

    def allocate_many(self, host: str, count: int) -> Iterator[Address]:
        """Allocate ``count`` fresh addresses on ``host``."""
        for _ in range(count):
            yield self.allocate(host)
