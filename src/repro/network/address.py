"""Network addresses for the simulated media and signaling planes.

A media endpoint is identified to its peers by an :class:`Address`
(host, port) pair, carried inside protocol descriptors (Sec. VI-B of the
paper: "A descriptor contains an IP address, port number, and
priority-ordered list of codecs").  The :class:`AddressAllocator` hands
out unique addresses the way a host's socket layer would hand out ports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator

__all__ = ["Address", "AddressAllocator"]


@dataclass(frozen=True, order=True)
class Address:
    """An (IP host, UDP port) pair identifying one media receive point."""

    host: str
    port: int

    def __str__(self) -> str:
        return "%s:%d" % (self.host, self.port)


class AddressAllocator:
    """Allocates unique media addresses per host.

    Ports start at 10000 (even numbers, the RTP convention) and increase
    monotonically per host, so a run never reuses an address and stale
    descriptors are detectable in tests.
    """

    BASE_PORT = 10000

    def __init__(self) -> None:
        self._next_port: Dict[str, int] = {}
        self._next_host = 1

    def host(self) -> str:
        """Allocate a fresh simulated host (10.0.x.y style)."""
        index = self._next_host
        self._next_host += 1
        return "10.%d.%d.%d" % (index // 65536, (index // 256) % 256,
                                index % 256)

    def allocate(self, host: str) -> Address:
        """Allocate a fresh media address on ``host``."""
        port = self._next_port.get(host, self.BASE_PORT)
        self._next_port[host] = port + 2
        return Address(host, port)

    def allocate_many(self, host: str, count: int) -> Iterator[Address]:
        """Allocate ``count`` fresh addresses on ``host``."""
        for _ in range(count):
            yield self.allocate(host)
