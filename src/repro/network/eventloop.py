"""Deterministic discrete-event scheduler.

This is the substrate underneath every simulation in the repository: the
signaling protocol, the media plane, the application servers, and the SIP
baseline all run on one :class:`EventLoop`.

The loop is deterministic.  Events fire in ``(time, priority, sequence)``
order, where ``sequence`` is a monotonically increasing tie-breaker, so two
runs with the same seed and the same call pattern produce identical traces.
Randomness (used by the SIP glare backoff and latency jitter models) comes
from a ``random.Random`` owned by the loop and seeded at construction.

Two-lane batched dispatch
-------------------------
Internally the loop keeps two structures:

- ``_heap`` — the classic binary heap of future (or odd-priority)
  events, ordered by ``(time, priority, seq)``.
- ``_ready`` — a FIFO *ready lane* holding priority-0 events scheduled
  at the **current instant** (``call_soon``, zero-delay ``schedule``,
  clamped ``schedule_at``, zero-latency link deliveries, zero-cost node
  stimuli).  Because the clock never runs backwards and ``seq`` is
  globally increasing, the lane is always sorted by ``(time, 0, seq)``
  — appending preserves order by construction, so same-timestamp bursts
  drain with O(1) deque operations and **zero** heap comparisons.

The drain loop merges the two lanes by the same total order the heap
alone used to impose (the order is strict — ``seq`` is unique — so the
merge is exactly the old execution order, pinned by the runtime
fingerprint suite).  The clock is written only when an event's
timestamp actually differs from the previous one — one store per
same-timestamp *batch*, not per event — and the executed/live counters
are flushed once per drain.

Backends
--------
The dispatch-critical kernels are selectable via ``REPRO_BACKEND`` (see
:mod:`repro.network.backend`).  Under the compiled backend,
:class:`Event` is a C extension type (C-level ordering, cheap
allocation) and the untimed drain runs entirely in C; semantics are
identical and the pure-Python implementations below remain the
reference.
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections import deque
from typing import (TYPE_CHECKING, Any, Callable, Deque, Dict, List,
                    Optional, Tuple)

from .backend import CORE as _CORE

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.tracer import Tracer

__all__ = ["Event", "EventLoop", "QuiescenceError"]

#: Cap on how many same-instant deliveries to the same link end the
#: compiled drain coalesces into one C walk (mirrored by the C kernel's
#: ``DELIVER_BATCH_MAX``; the parity auditor pins the two together).
#: Batching changes no observable order: the batched events are exactly
#: the consecutive merged-order front, and a pure C delivery runs no
#: user code that could cancel or reorder the events behind it.  The
#: pure-Python drain dispatches one event at a time and needs no
#: mirror logic -- the constant exists so the contract is visible (and
#: doctorable) on the reference side.
_DELIVER_BATCH_MAX = 16


class QuiescenceError(RuntimeError):
    """Raised when a run is asked to reach quiescence but cannot.

    ``run_until_quiescent`` raises this when the event budget is exhausted
    while events are still pending, which almost always indicates a
    signaling livelock (for example an ``openSlot`` facing a ``closeSlot``,
    which by design never stabilizes).

    The exception carries a structured payload so chaos-test failures can
    be diagnosed without re-running: ``max_events`` (the spent budget),
    ``pending`` (live events left in the heap), ``next_event`` (repr
    of the earliest live event — usually the retransmission timer or
    stimulus that keeps the system awake), and, when the loop carries a
    tracer, ``flight_tail`` — the flight recorder's last events, i.e.
    what the system was doing when it ran out of budget.
    """

    def __init__(self, message: str, max_events: Optional[int] = None,
                 pending: Optional[int] = None,
                 next_event: Optional[str] = None,
                 flight_tail: Tuple[str, ...] = ()):
        if flight_tail:
            message += "\nflight recorder tail (last %d events):\n  %s" % (
                len(flight_tail), "\n  ".join(flight_tail))
        super().__init__(message)
        self.max_events = max_events
        self.pending = pending
        self.next_event = next_event
        self.flight_tail = flight_tail


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`EventLoop.schedule` and can be
    cancelled.  A cancelled event stays in its lane but is skipped when
    it reaches the front; this is the standard lazy-deletion scheme.
    The owning loop keeps a live-event counter so that cancellation —
    and the loop's quiescence checks — stay O(1) instead of rescanning
    the heap.

    Freelist contract (see :mod:`repro.network.transport` and
    :mod:`repro.network.node`): an event whose ``_loop`` is ``None``
    and whose ``cancelled`` flag is clear has *fired* and sits in no
    lane; an owner that provably holds the only reference may re-arm it
    by resetting ``time``/``seq``/``args``/``_loop`` and re-inserting —
    always drawing a **fresh** ``seq`` so the merged order is the same
    as if a new object had been allocated.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled",
                 "_loop")

    def __init__(self, time: float, priority: int, seq: int,
                 callback: Callable[..., Any], args: Tuple[Any, ...],
                 loop: Optional["EventLoop"] = None):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._loop = loop

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            loop = self._loop
            if loop is not None:
                self._loop = None
                loop._live -= 1
                # Timer-heavy runs (retransmission under loss) can leave
                # the heap mostly tombstones; compacting once a majority
                # is dead keeps push/pop log-factors honest instead of
                # draining tombstones one heappop at a time.  (Ready-lane
                # tombstones are excluded from the trigger: they drain in
                # O(1) before the clock can advance, so they never hurt
                # the heap's log factors.)
                heap = loop._heap
                if len(heap) > 64 and loop._live < (len(heap) >> 1):
                    loop._compact()

    def __lt__(self, other: "Event") -> bool:
        # Tuple-free compare: this runs O(log n) times per heap push/pop
        # and building two throwaway tuples per comparison dominated the
        # scheduler's profile.  Ordering is identical to the tuple form.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return "<Event t=%g p=%d #%d %s%s>" % (
            self.time, self.priority, self.seq,
            getattr(self.callback, "__qualname__", self.callback), state)


#: The selected backend's event type.  The C type has the same
#: constructor, the same attribute names, the same ``cancel()``
#: semantics (including the compaction trigger), and a C-level
#: ``__lt__`` compatible with the Python one.
if _CORE is not None:
    Event = _CORE.Event  # type: ignore[misc, assignment]

_drain = None if _CORE is None else _CORE.drain


class EventLoop:
    """A deterministic discrete-event simulation loop.

    Parameters
    ----------
    seed:
        Seed for the loop-owned random number generator.  Components that
        need randomness (latency jitter, SIP backoff) must draw from
        ``loop.rng`` so that a single seed reproduces a whole run.
    """

    def __init__(self, seed: Optional[int] = 0):
        self._heap: List[Event] = []
        #: The ready lane: priority-0 events at the current instant,
        #: FIFO.  Invariant: sorted by ``(time, seq)`` with every time
        #: >= the clock value it will be popped at.  Mutated strictly
        #: in place (``run`` holds a local reference to it).
        self._ready: Deque[Event] = deque()
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        #: Live (scheduled, not yet executed or cancelled) events across
        #: both lanes.  Maintained by schedule/cancel/execute so
        #: quiescence checks never rescan.
        self._live = 0
        self.rng = random.Random(seed)
        #: Number of events executed so far (observability / budgets).
        self.executed = 0
        #: Freelist of wire envelopes (:class:`~repro.protocol.signals.
        #: TunnelMessage`), shared by every channel on this loop.  See
        #: the reset contract in :meth:`repro.protocol.channel.
        #: ChannelEnd._process`.
        self._env_pool: List[Any] = []
        #: The loop's :class:`~repro.obs.tracer.Tracer`, or ``None``.
        #: Every emission site in the runtime guards on this being set,
        #: so an untraced run pays a single attribute read per site.
        self.trace: Optional["Tracer"] = None
        #: Per-prefix counters for :meth:`autoname`.  Loop-local (not
        #: class-global) so that two same-seed simulations in one
        #: process generate identical component names — a prerequisite
        #: for byte-identical trace exports.
        self._names: Dict[str, int] = {}

    def autoname(self, prefix: str, pattern: str = "%s%d") -> str:
        """Generate the next default name for ``prefix`` on this loop
        (e.g. ``ch1``, ``link-2``).  Counters live on the loop, so name
        sequences restart with every simulation instead of accumulating
        process-globally."""
        count = self._names.get(prefix, 0) + 1
        self._names[prefix] = count
        return pattern % (prefix, count)

    # ------------------------------------------------------------------
    # time and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any, priority: int = 0) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative.  ``priority`` breaks ties between
        events at the same instant (lower fires first); the default of 0 is
        right for almost everything.
        """
        if delay < 0:
            raise ValueError("cannot schedule an event in the past "
                             "(delay=%r)" % (delay,))
        when = self._now + delay
        event = Event(when, priority, next(self._seq), callback, args, self)
        if when == self._now and priority == 0:
            self._ready.append(event)
        else:
            heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def schedule_at(self, when: float, callback: Callable[..., Any],
                    *args: Any, priority: int = 0) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``when``.

        ``when`` may sit an infinitesimal float-rounding error before
        ``now`` (``(now + dt) - now`` is not always ``>= dt`` in binary
        floating point); such events are clamped to fire at the current
        instant instead of raising.  Genuinely past times still raise
        ``ValueError``.
        """
        now = self._now
        if when < now:
            # Tolerance scales with the clock so accumulated drift at
            # large sim times is still absorbed; 1e-9 relative ~= one
            # ulp at double precision for sane simulation horizons.
            if now - when > 1e-9 * (abs(now) if abs(now) > 1.0 else 1.0):
                raise ValueError("cannot schedule an event in the past "
                                 "(when=%r, now=%r)" % (when, now))
            when = now
        event = Event(when, priority, next(self._seq), callback, args, self)
        if when == now and priority == 0:
            self._ready.append(event)
        else:
            heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback`` at the current instant."""
        event = Event(self._now, 0, next(self._seq), callback, args, self)
        self._ready.append(event)
        self._live += 1
        return event

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of live (non-cancelled) events across both lanes.
        O(1): reads the counter maintained by schedule/cancel/execute."""
        return self._live

    def lane_stats(self) -> dict:
        """Observability snapshot of the scheduler's internal lanes:
        raw lane lengths (tombstones included), the live counter, the
        envelope-pool depth, and the lifetime executed count.  The soak
        harness samples this per epoch to prove the lanes stay bounded
        under sustained churn."""
        return {
            "heap_len": len(self._heap),
            "ready_len": len(self._ready),
            "live": self._live,
            "env_pool": len(self._env_pool),
            "executed": self.executed,
        }

    def _compact(self) -> None:
        """Drop cancelled events and restore the lane invariants.
        Mutates the heap list and ready deque strictly in place:
        ``run()`` holds local references to both, so rebinding either
        here would desynchronize an in-progress run."""
        self._heap[:] = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        ready = self._ready
        if ready:
            alive = [e for e in ready if not e.cancelled]
            if len(alive) != len(ready):
                ready.clear()
                ready.extend(alive)

    def _execute(self, event: Event) -> None:
        """Run one popped, live event (detaching it from the counter
        first, so a post-hoc ``cancel()`` cannot double-count)."""
        event._loop = None
        self._live -= 1
        self._now = event.time
        self.executed += 1
        event.callback(*event.args)

    def _front(self, pop_cancelled: bool = False) -> Optional[Event]:
        """The earliest live event across both lanes, or ``None``.
        With ``pop_cancelled`` the tombstones in front of it are
        discarded while scanning (used by diagnostics paths)."""
        heap, ready = self._heap, self._ready
        if pop_cancelled:
            while heap and heap[0].cancelled:
                heapq.heappop(heap)
            while ready and ready[0].cancelled:
                ready.popleft()
        f = heap[0] if heap else None
        r = ready[0] if ready else None
        if f is None or (f is not None and f.cancelled):
            f = None
        if r is None or (r is not None and r.cancelled):
            r = None
        if f is None:
            return r
        if r is None:
            return f
        return f if _earlier(f, r) else r

    def step(self) -> bool:
        """Execute the single next event.

        Returns ``True`` if an event ran, ``False`` if no live event
        remains in either lane.
        """
        heap, ready = self._heap, self._ready
        while heap or ready:
            if ready:
                if heap:
                    f, r = heap[0], ready[0]
                    if _earlier(f, r):
                        event = heapq.heappop(heap)
                    else:
                        event = ready.popleft()
                else:
                    event = ready.popleft()
            else:
                event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self._execute(event)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Run events until both lanes drain, ``until`` passes, or the
        budget of ``max_events`` is spent.  Returns the number of events
        executed by this call.
        """
        if until is None:
            # Untimed runs (settle / run_until_quiescent / drain) are
            # the hot case; the batched drain pops directly with no
            # deadline to peek against.  Under the compiled backend the
            # whole drain, including counter flushing, runs in C.
            limit = -1 if max_events is None else max_events
            if _drain is not None:
                return _drain(self, limit)
            return self._drain_py(limit)
        return self._run_timed(until, max_events)

    def _drain_py(self, limit: int) -> int:
        # Hot loop: lane bookkeeping is localized and the body of
        # _execute is inlined — at hundreds of thousands of events per
        # settle the attribute reads and the extra call frame are the
        # dominant cost, not the callbacks.  ``limit`` of -1 (no
        # budget) never equals a non-negative count, so the budget
        # check is one compare.  The executed/live counters are
        # flushed once at the end (exception-safe via finally) instead
        # of updated per event; nothing reads them mid-run — cancel()
        # only uses ``_live`` for its compaction heuristic, which
        # tolerates a high estimate.  The clock is stored only when a
        # popped event's timestamp differs from the current instant:
        # one store per same-timestamp batch.
        executed = 0
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        rpop = ready.popleft
        try:
            while True:
                if executed == limit:
                    break
                if ready:
                    if heap:
                        f = heap[0]
                        r = ready[0]
                        # Inline _earlier(f, r) with r.priority == 0
                        # (the ready-lane invariant).
                        if (f.time < r.time
                                or (f.time == r.time
                                    and (f.priority < 0
                                         or (f.priority == 0
                                             and f.seq < r.seq)))):
                            event = heappop(heap)
                        else:
                            event = rpop()
                    else:
                        event = rpop()
                elif heap:
                    event = heappop(heap)
                else:
                    break
                if event.cancelled:
                    continue
                executed += 1
                # detach before the callback so a post-hoc cancel()
                # cannot double-count
                event._loop = None
                t = event.time
                if t != self._now:
                    self._now = t
                event.callback(*event.args)
        finally:
            self._live -= executed
            self.executed += executed
        return executed

    def _run_timed(self, until: float,
                   max_events: Optional[int]) -> int:
        executed = 0
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        while heap or ready:
            # Peek the earliest front, draining tombstones lazily
            # (tombstones never advance the clock and never count
            # against the budget).
            f = heap[0] if heap else None
            if f is not None and f.cancelled:
                heappop(heap)
                continue
            r = ready[0] if ready else None
            if r is not None and r.cancelled:
                ready.popleft()
                continue
            if f is None:
                event, use_heap = r, False
            elif r is None:
                event, use_heap = f, True
            elif _earlier(f, r):
                event, use_heap = f, True
            else:
                event, use_heap = r, False
            if event.time > until:
                self._now = until
                return executed
            if max_events is not None and executed >= max_events:
                return executed
            if use_heap:
                heappop(heap)
            else:
                ready.popleft()
            executed += 1
            # inline _execute (see above)
            event._loop = None
            self._live -= 1
            self._now = event.time
            self.executed += 1
            event.callback(*event.args)
        if until > self._now:
            self._now = until
        return executed

    def run_until_quiescent(self, max_events: int = 1_000_000) -> int:
        """Run until no events remain, via the batched drain.

        Raises :class:`QuiescenceError` if more than ``max_events`` events
        execute, which indicates the system is not going to stabilize (a
        livelock such as an openslot/closeslot path, or a timer loop that
        was not stopped).
        """
        executed = self.run(max_events=max_events)
        if self._live:
            nxt_event = self._front(pop_cancelled=True)
            nxt = repr(nxt_event) if nxt_event is not None else None
            tail: Tuple[str, ...] = ()
            if self.trace is not None:
                tail = tuple(self.trace.flight_tail())
            raise QuiescenceError(
                "system did not quiesce within %d events; %d still pending"
                "; next: %s" % (max_events, self.pending(), nxt),
                max_events=max_events, pending=self.pending(),
                next_event=nxt, flight_tail=tail)
        return executed

    def advance(self, duration: float) -> int:
        """Run all events in the next ``duration`` seconds of simulated
        time, then set the clock to exactly ``now + duration``."""
        return self._run_timed(self._now + duration, None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<EventLoop t=%g pending=%d executed=%d>" % (
            self._now, self.pending(), self.executed)


def _earlier(f: Event, r: Event) -> bool:
    """Strict ``(time, priority, seq)`` order between the two lane
    fronts; equivalent to ``f < r`` without the dunder dispatch."""
    if f.time != r.time:
        return f.time < r.time
    if f.priority != r.priority:
        return f.priority < r.priority
    return f.seq < r.seq
