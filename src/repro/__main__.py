"""``python -m repro`` — regenerate the paper's evaluation from the
command line.

Subcommands::

    python -m repro latency     # Secs. VIII-C / IX-B numbers
    python -m repro verify      # the 12-model sweep (+ --rich, --two)
    python -m repro sweep       # the parallel sweep CLI (see --help)
    python -m repro scenario    # Fig. 2 vs Fig. 3 snapshots
    python -m repro lint        # static analysis of the bundled
                                # programs and models (see --help)
    python -m repro audit       # static analysis of the runtime:
                                # backend parity, determinism, arena
                                # contracts (see --help)
    python -m repro chaos       # the bundled apps under fault
                                # injection (see --help)
    python -m repro trace       # record one app run and export its
                                # trace (see --help)
    python -m repro load        # sharded call-load harness
                                # (see --help)
    python -m repro soak        # sustained-churn soak with memory
                                # gates (see --help)
    python -m repro serve       # run a live node: TCP signaling
                                # listener + media gateway (see --help)
    python -m repro call        # place a call through a running
                                # gateway (see --help)
    python -m repro live-demo   # two OS processes negotiate flowing
                                # media over localhost, self-checked
    python -m repro all         # latency + verify + scenario

Exit status is normalized across subcommands: 0 on success (for
``lint``: every target clean; for ``chaos``: every app converged), 1
when findings were reported, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import importlib
import statistics
import sys

#: The single subcommand registry: every delegating subcommand is one
#: entry ``name -> ("module.path[:function]", help)``.  Dispatch, the
#: ``COMMAND`` choices, and the ``--help`` epilog all derive from this
#: dict, so a new subcommand is exactly one line here.  Each target
#: owns its flags, help, and exit codes (0 success / 1 findings /
#: 2 usage) and receives the rest of the command line verbatim; the
#: function defaults to ``main``.
_DELEGATED = {
    "lint": ("repro.staticcheck.cli",
             "static analysis of the bundled box programs and models"),
    "audit": ("repro.audit.cli",
              "audit the runtime itself: C/Python backend parity, "
              "determinism hazards, arena contracts (RC8xx)"),
    "chaos": ("repro.chaos.cli",
              "run the bundled apps under fault injection and check "
              "media convergence"),
    "sweep": ("repro.verification.cli",
              "fan the verification models across cores; can profile "
              "itself as a Chrome trace"),
    "trace": ("repro.obs.cli",
              "record one app run and export it (Chrome trace_event "
              "JSON, timeline, MSC)"),
    "load": ("repro.load.cli",
             "drive seeded call batches through app topologies across "
             "a worker pool (calls/sec, latency percentiles)"),
    "soak": ("repro.load.soak_cli",
             "sustained seeded call churn with admission control, "
             "memory-stability gates, and shed accounting"),
    "serve": ("repro.livenet.cli:serve_main",
              "run a live node: asyncio TCP signaling listener plus an "
              "HTTP/WebSocket media gateway"),
    "call": ("repro.livenet.cli:call_main",
             "place a call through a running gateway and report the "
             "media verdict"),
    "live-demo": ("repro.livenet.cli:demo_main",
                  "two OS processes negotiate flowing media over "
                  "localhost sockets, self-checked"),
}


def _dispatch(name: str, argv) -> int:
    """Resolve a registry target and hand it the remaining argv."""
    target = _DELEGATED[name][0]
    module_path, _, function = target.partition(":")
    module = importlib.import_module(module_path)
    return getattr(module, function or "main")(argv)

#: The classic evaluation subcommands handled in this module.
_BUILTIN = {
    "latency": "the Secs. VIII-C / IX-B latency numbers",
    "verify": "the 12-model verification sweep (+ --rich, --two)",
    "scenario": "the Fig. 2 vs Fig. 3 prepaid-card snapshots",
    "all": "latency + verify + scenario in sequence (default)",
}


def run_latency() -> None:
    from .analysis import (measure_fig13, measure_path_sweep,
                           measure_sip_common, measure_sip_glare,
                           measure_unbundled_changes,
                           measure_sip_bundled_changes)
    print("== latency (c = 20 ms, n = 34 ms) ==")
    print(measure_fig13())
    for m in measure_path_sweep([1, 2, 3, 4, 6, 8]):
        print(m)
    print(measure_sip_common())
    glare = statistics.mean(
        measure_sip_glare(seed=s).measured for s in range(5)) * 1000.0
    print("%-28s measured %8.1f ms   formula   3560.0 ms (mean of 5)"
          % ("fig14 (SIP, glare)", glare))
    print(measure_unbundled_changes())
    bundled = statistics.mean(
        measure_sip_bundled_changes(seed=s).measured
        for s in range(5)) * 1000.0
    print("%-28s measured %8.1f ms   (glare-dominated, mean of 5)"
          % ("SIP: bundled changes", bundled))


def run_verify(rich: bool, two: bool, parallel: bool = False,
               jobs=None, max_states=None) -> None:
    from .verification import (blowup_table, format_results, sweep,
                               verify_all)
    print("== verification (Sec. VIII-A%s) =="
          % (", parallel sweep" if parallel else ""))
    kwargs = dict(phase1_budget=2, modify_budget=2, queue_capacity=8,
                  max_versions=4, max_states=5_000_000) if rich else {}
    if max_states is not None:
        kwargs["max_states"] = max_states
    # An explicit --max-states is a smoke sweep: route it through the
    # sweep driver so over-budget models come back truncated (marked in
    # the table) instead of raising.
    use_sweep = parallel or max_states is not None
    processes = jobs if parallel else 1
    results = verify_all(parallel=use_sweep, processes=processes,
                         **kwargs)
    print(format_results(results))
    print("\nflowlink blow-up factors:")
    for key, f in sorted(blowup_table(results).items()):
        print("    %-4s memory x%-7.1f time x%.1f"
              % (key, f["memory_factor"], f["time_factor"]))
    if two:
        print("\ntwo-flowlink extension (infeasible for the paper):")
        for r in sweep(flowlink_counts=(2,),
                       max_states=max_states or 3_000_000,
                       processes=jobs if parallel else 1):
            print("    %-12s states=%7d  safety=%s spec=%s%s"
                  % (r.key, r.states,
                     "pass" if r.safety_ok else "FAIL",
                     "pass" if r.property_ok else "FAIL",
                     "  (truncated)" if r.truncated else ""))


def run_scenario() -> None:
    from .network.network import Network
    from .apps.prepaid import ErroneousPrepaidScenario, PrepaidScenario
    print("== Fig. 2 vs Fig. 3 (see examples/prepaid_card.py for the "
          "full narration) ==")
    net = Network(seed=2)
    bad = ErroneousPrepaidScenario(net)
    bad.establish_ab_call()
    bad.snapshot1(); bad.snapshot2(); bad.snapshot3(); bad.snapshot4()
    print("Fig. 2 anomalies: A hears %s (hijacked+mixed); B->A one-way: %s"
          % (sorted(net.plane.heard_by(bad.a)),
             net.plane.flow_exists(bad.b, bad.a)
             and not net.plane.flow_exists(bad.a, bad.b)))
    net2 = Network(seed=3)
    good = PrepaidScenario(net2)
    good.establish_ab_call()
    good.card_call_starts()
    good.run_until_funds_exhausted()
    good.switch_back_to_b()
    print("Fig. 3 snapshot 3: C--V two-way: %s; A--B two-way: %s"
          % (net2.plane.two_way(good.c, good.v),
             net2.plane.two_way(good.a, good.b)))


def _epilog() -> str:
    lines = ["subcommands:"]
    for name, desc in _BUILTIN.items():
        lines.append("  %-10s %s" % (name, desc))
    for name, (_, desc) in sorted(_DELEGATED.items()):
        lines.append("  %-10s %s  (own flags: %s --help)"
                     % (name, desc, name))
    return "\n".join(lines)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["--version"]:
        from . import __version__
        print("repro %s" % __version__)
        return 0
    if argv[:1] and argv[0] in _DELEGATED:
        return _dispatch(argv[0], argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Compositional Control of IP Media' "
                    "(Zave & Cheung, CoNEXT 2006)",
        epilog=_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("command", nargs="?", default="all",
                        choices=sorted(set(_BUILTIN) | set(_DELEGATED)),
                        metavar="COMMAND",
                        help="one of the subcommands below (default: all)")
    parser.add_argument("--version", action="store_true",
                        help="print the package version and exit")
    parser.add_argument("--rich", action="store_true",
                        help="bigger verification budgets")
    parser.add_argument("--two", action="store_true",
                        help="include the two-flowlink extension")
    parser.add_argument("--parallel", action="store_true",
                        help="fan the verification sweep across cores")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker count for --parallel "
                             "(default: one per core)")
    parser.add_argument("--max-states", type=int, default=None,
                        metavar="N",
                        help="per-model state bound (smoke sweeps)")
    args = parser.parse_args(argv)
    if args.version:
        from . import __version__
        print("repro %s" % __version__)
        return 0
    if args.command in ("latency", "all"):
        run_latency()
        print()
    if args.command in ("verify", "all"):
        run_verify(args.rich, args.two, parallel=args.parallel,
                   jobs=args.jobs, max_states=args.max_states)
        print()
    if args.command in ("scenario", "all"):
        run_scenario()
    return 0


if __name__ == "__main__":
    sys.exit(main())
