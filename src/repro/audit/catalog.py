"""The audit catalog: runtime passes as lint targets.

Reuses the staticcheck target plumbing (:class:`LintTarget`,
:class:`TargetReport`, suppressions with mandatory reasons), so
``repro audit`` reports render and exit exactly like ``repro lint``.

The determinism pass is split into one target per subpackage so
waivers stay narrow: the load harness is *allowed* wall-clock reads
(measuring throughput is its purpose) without that waiver covering a
new clock read in ``repro/network``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from ..staticcheck.catalog import LintTarget
from ..staticcheck.diagnostics import Diagnostic, Suppression
from . import codes as _codes  # noqa: F401  (registers RC8xx)
from .arenas import check_arenas
from .determinism import check_tree, iter_source_files, subpackage_of
from .parity import check_parity

__all__ = ["audit_targets", "select_audit_targets",
           "DETERMINISM_WAIVERS"]

#: Per-subpackage waivers for the determinism pass.  Measurement code
#: reads the wall clock on purpose; the waivers record why that is
#: sound instead of silently skipping the files.
DETERMINISM_WAIVERS: Dict[str, Tuple[Suppression, ...]] = {
    "load": (
        Suppression("RC810", "the load harness exists to measure "
                    "wall-clock throughput; elapsed time is reported, "
                    "never fed back into simulation state"),
        Suppression("RC813", "the host-calibration probe forwards the "
                    "parent environment (pinning REPRO_BACKEND=python) "
                    "when spawning its child-interpreter reference "
                    "run; no simulation input is read from it"),
    ),
    "chaos": (
        Suppression("RC810", "chaos reports record wall-clock elapsed "
                    "per run for operator visibility; convergence "
                    "verdicts compare seeded fingerprints only"),
    ),
    "verification": (
        Suppression("RC810", "the explorer's exploration budget is a "
                    "wall-clock deadline by design; it can truncate a "
                    "sweep but never alters a state's successors"),
    ),
    "livenet": (
        Suppression("RC810", "the live transport bridges the simulated "
                    "clock onto asyncio's wall clock by design (the "
                    "pump anchor, reconnect backoff, gateway rate "
                    "limiting); deterministic semantics stay pinned by "
                    "the direction-wise journal parity fingerprints, "
                    "not by timing"),
        Suppression("RC813", "the serve CLI forwards the parent "
                    "environment (plus PYTHONUNBUFFERED) when spawning "
                    "the demo's second OS process; no simulation input "
                    "is read from it"),
    ),
}


def _determinism_run(sub: str) -> Callable[[], List[Diagnostic]]:
    def run() -> List[Diagnostic]:
        return check_tree(subpackage=sub)
    return run


def audit_targets() -> List[LintTarget]:
    """Every target ``python -m repro audit`` checks by default."""
    targets = [
        LintTarget("runtime/parity", check_parity),
        LintTarget("runtime/arenas", check_arenas),
    ]
    subs = sorted({subpackage_of(rel)
                   for rel, _ in iter_source_files()})
    for sub in subs:
        targets.append(LintTarget(
            "runtime/determinism/%s" % sub, _determinism_run(sub),
            suppressions=DETERMINISM_WAIVERS.get(sub, ())))
    return targets


def select_audit_targets(names: Sequence[str]) -> List[LintTarget]:
    """The named subset, in catalog order; raises :class:`KeyError`
    (naming the unknown target) for the CLI's usage-error path."""
    targets = audit_targets()
    known = {t.name for t in targets}
    for name in names:
        if name not in known:
            raise KeyError(name)
    wanted = set(names)
    return [t for t in targets if t.name in wanted]
