"""Pass 2: determinism lint over all of ``src/repro``.

The repo's verification and fingerprint claims rest on the simulation
being a pure function of its seed.  These rules flag the hazards that
silently break that purity: wall-clock reads (RC810), unseeded
module-level ``random`` calls (RC811), iteration over unordered sets
(RC812), ``os.environ`` reads outside the one sanctioned config seam
(RC813), and float ``==`` against sim-time expressions (RC814).

Measurement code (the load harness, the chaos runner's elapsed-time
field, the explorer's wall-clock budget) legitimately reads the clock;
those subpackages carry catalog suppressions *with reasons* rather
than being skipped, so a new wall-clock read in, say,
``repro/network`` can never hide behind them.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Tuple

from ..staticcheck.diagnostics import Diagnostic
from .surface import repo_root

__all__ = ["check_source", "check_tree", "iter_source_files",
           "subpackage_of"]

#: ``time.<attr>`` reads that consult the wall clock.
_WALL_CLOCK = frozenset((
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "localtime",
    "gmtime", "ctime"))

#: ``random.<attr>`` module-level draws (the unseeded global RNG).
#: ``random.Random`` / ``random.SystemRandom`` construction is fine —
#: instances are seeded explicitly by their owners.
_GLOBAL_RANDOM = frozenset((
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "getrandbits", "randbytes", "seed"))

#: Attribute/variable names that denote simulated time.
_SIM_TIME_NAMES = frozenset((
    "now", "_now", "sim_time", "deliver_at", "when", "_horizon"))

#: The one module allowed to read process configuration.
_ENV_SEAM = "backend.py"


def _is_module_attr(node: ast.AST, module: str) -> Optional[str]:
    """``module.<attr>`` → attr name, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == module):
        return node.attr
    return None


def _mentions_sim_time(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in _SIM_TIME_NAMES:
            return True
        if isinstance(sub, ast.Name) and sub.id in _SIM_TIME_NAMES:
            return True
    return False


def check_source(relpath: str, text: str,
                 program: str = "runtime/determinism"
                 ) -> List[Diagnostic]:
    """Run every determinism rule over one file's source text."""
    found: List[Diagnostic] = []
    base = os.path.basename(relpath)

    def diag(code: str, lineno: int, message: str) -> None:
        found.append(Diagnostic(code=code, message=message,
                                program=program,
                                state="%s:%d" % (relpath, lineno)))

    try:
        tree = ast.parse(text, filename=relpath)
    except SyntaxError as exc:
        diag("RC810", exc.lineno or 0,
             "file failed to parse: %s" % exc)
        return found

    for node in ast.walk(tree):
        # RC810 / RC811 / RC813 — hazardous module attribute reads.
        attr = _is_module_attr(node, "time")
        if attr in _WALL_CLOCK:
            diag("RC810", node.lineno,
                 "wall-clock read time.%s(); simulation results must "
                 "be a pure function of the seed" % attr)
        attr = _is_module_attr(node, "random")
        if attr in _GLOBAL_RANDOM:
            diag("RC811", node.lineno,
                 "random.%s draws from the unseeded global RNG; use "
                 "the loop's seeded Random instance" % attr)
        attr = _is_module_attr(node, "os")
        if attr in ("environ", "getenv") and base != _ENV_SEAM:
            diag("RC813", node.lineno,
                 "os.%s read outside repro.network.backend; all "
                 "process configuration flows through the backend "
                 "seam so a run's inputs stay enumerable" % attr)

        # RC810/RC811 via from-imports of the same names.
        if isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "time":
                for alias in node.names:
                    if alias.name in _WALL_CLOCK:
                        diag("RC810", node.lineno,
                             "from time import %s makes wall-clock "
                             "reads ungreppable" % alias.name)
            elif node.module == "random":
                for alias in node.names:
                    if alias.name in _GLOBAL_RANDOM:
                        diag("RC811", node.lineno,
                             "from random import %s binds the "
                             "unseeded global RNG" % alias.name)

        # RC812 — iterating a set literal/constructor directly.
        iters: List[ast.AST] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            is_set = isinstance(it, ast.Set) or (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Name)
                and it.func.id in ("set", "frozenset"))
            if is_set:
                diag("RC812", it.lineno,
                     "iteration over a set has no pinned order; wrap "
                     "in sorted() at trace-visible sites")

        # RC814 — float literal == sim-time expression.
        if isinstance(node, ast.Compare):
            sides = [node.left] + list(node.comparators)
            has_eq = any(isinstance(op, (ast.Eq, ast.NotEq))
                         for op in node.ops)
            float_lit = any(isinstance(s, ast.Constant)
                            and isinstance(s.value, float)
                            for s in sides)
            if has_eq and float_lit and _mentions_sim_time(node):
                diag("RC814", node.lineno,
                     "float literal compared with ==/!= against a "
                     "sim-time expression; sim-time equality is only "
                     "exact between values derived from the same "
                     "arithmetic")
    return found


def iter_source_files(root: Optional[str] = None
                      ) -> Iterable[Tuple[str, str]]:
    """Yield ``(relpath, abspath)`` for every .py under src/repro,
    sorted for stable reports."""
    base = os.path.join(root or repo_root(), "src", "repro")
    for dirpath, dirnames, filenames in sorted(os.walk(base)):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".py"):
                abspath = os.path.join(dirpath, name)
                yield os.path.relpath(abspath, base), abspath


def subpackage_of(relpath: str) -> str:
    """Catalog grouping key: first path component, or ``repro`` for
    top-level modules."""
    head, _, tail = relpath.partition(os.sep)
    return head if tail else "repro"


def check_tree(subpackage: Optional[str] = None,
               root: Optional[str] = None) -> List[Diagnostic]:
    """Run the determinism rules over ``src/repro`` (optionally one
    subpackage), with per-file locations in the diagnostics."""
    found: List[Diagnostic] = []
    for relpath, abspath in iter_source_files(root):
        sub = subpackage_of(relpath)
        if subpackage is not None and sub != subpackage:
            continue
        with open(abspath, "r", encoding="utf-8") as fh:
            text = fh.read()
        found.extend(check_source(
            relpath, text, program="runtime/determinism/%s" % sub))
    return sorted(found, key=lambda d: (d.state or "", d.code))
