"""Static analysis of the runtime itself (``python -m repro audit``).

PR 2's RCxxx linter checks the *programs* the system runs; this
package's RC8xx family checks the *runtime* they run on.  Since the
hot core became dual-implementation (pure-Python kernels plus the
hand-written C extension :mod:`repro.network._ccore`), the repo's core
correctness claim — byte-identical fingerprints across backends — rests
on two copies of the same semantics staying in sync by hand.  The
auditor makes that synchronization mechanical:

:mod:`.parity`
    Extracts a comparable surface from ``_ccore.c`` (pattern-based:
    kernel entry points, the Event comparator's field order, arena
    caps, the ABI version, interned attribute names, cross-language
    symbol lookups) and from the Python reference modules (via
    :mod:`ast`), then diffs the two so a kernel or constant added on
    one side without the other is a lint error, not a latent
    fingerprint divergence.

:mod:`.determinism`
    Flags nondeterminism hazards across all of ``src/repro`` that
    silently break byte-identical traces: wall-clock reads, unseeded
    module-level ``random``, iteration over unordered sets,
    ``os.environ`` reads outside :mod:`repro.network.backend`, and
    float ``==`` against sim-time expressions.

:mod:`.arenas`
    Statically verifies the PR 6 object arenas' reset contracts: every
    freelist/pool acquire re-arms all required fields, every release
    is cap-guarded and resets what the contract demands, and every
    event re-arm draws a fresh ``seq``.  The runtime additionally
    grows an opt-in poison-on-release mode (``REPRO_ARENA_POISON=1``)
    so a use-after-release fails loudly under tests.

:mod:`.leakgate`
    Replays a bundled app N times and asserts object/refcount
    stability — the dynamic complement CI runs against the
    ASan/UBSan-built extension (``tools/build_backend.py --debug
    --sanitize``).

Diagnostics reuse the staticcheck plumbing (:class:`Diagnostic`,
:class:`Suppression`, :class:`LintTarget`), so reports, suppressions
with mandatory reasons, JSON output, and the 0/1/2 exit-code contract
are identical to ``repro lint``.
"""

from __future__ import annotations

from . import codes as _codes  # registers RC8xx into the shared tables

from .catalog import audit_targets, select_audit_targets  # noqa: E402
from .codes import AUDIT_CODES  # noqa: E402

__all__ = ["AUDIT_CODES", "audit_targets", "select_audit_targets"]

del _codes
