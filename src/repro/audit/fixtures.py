"""Negative controls for the runtime auditor, one per RC8xx code.

The catalog proves the shipped runtime is clean; these fixtures prove
the rules would have said so if it were not.  The parity fixtures
doctor the *real* ``_ccore.c`` text (delete a kernel export, swap the
comparator's field order, bump an arena cap on one side) and push it
through the very same extractors the clean audit uses; the
determinism and arena fixtures are minimal broken sources modelled on
the real hot-path sites.

``python -m repro audit --fixtures`` runs them all and exits 1 by
design, mirroring ``repro lint --fixtures``.
"""

from __future__ import annotations

import textwrap
from typing import Callable, List

from ..staticcheck.diagnostics import Diagnostic
from ..staticcheck.fixtures import Fixture
from .arenas import check_c_contracts, check_module_source
from .determinism import check_source
from .parity import check_parity
from .surface import c_source_path

__all__ = ["Fixture", "all_audit_fixtures"]


def _real_c_text() -> str:
    with open(c_source_path(), "r", encoding="utf-8") as fh:
        return fh.read()


def _doctored_c(old: str, new: str) -> Callable[[], List[Diagnostic]]:
    """A parity run over the real C source with one planted edit.

    Raises if the anchor text vanished — a fixture that silently
    stopped editing anything would 'pass' by testing the clean file.
    """
    def run() -> List[Diagnostic]:
        text = _real_c_text()
        if old not in text:
            raise AssertionError(
                "fixture anchor %r not found in _ccore.c; update the "
                "negative control alongside the refactor" % old)
        return check_parity(c_text=text.replace(old, new))
    return run


def _rc801() -> Fixture:
    # A per-signal dispatch kernel removed from the C exports: the
    # Python side still wires _CORE.Receive, so parity must flag both
    # directions of the drift.
    return Fixture(
        name="audit-RC801", code="RC801",
        run=_doctored_c('"Receive"', '"ReceiveGone"'),
        state="Receive")


def _rc802() -> Fixture:
    # cev_lt's final tiebreaker compares the wrong field: heap order
    # would diverge between backends on same-instant events.
    return Fixture(
        name="audit-RC802", code="RC802",
        run=_doctored_c("return a->seq < b->seq;",
                        "return a->args < b->args;"),
        state="Event.__lt__")


def _rc803() -> Fixture:
    # The C freelist cap bumped without the Python side following.
    return Fixture(
        name="audit-RC803", code="RC803",
        run=_doctored_c("#define FREELIST_MAX 32",
                        "#define FREELIST_MAX 48"),
        state="FREELIST_MAX")


def _rc804() -> Fixture:
    # ensure_protocol() resolving a class the Python runtime renamed.
    return Fixture(
        name="audit-RC804", code="RC804",
        run=_doctored_c('"TunnelMessage"', '"TunnelEnvelope"'),
        state="repro.protocol.signals.TunnelEnvelope")


def _rc805() -> Fixture:
    # An interned attribute name that no Python module spells anymore.
    return Fixture(
        name="audit-RC805", code="RC805",
        run=_doctored_c('INTERN(_stim_event, "_stim_event");',
                        'INTERN(_stim_event, "_stim_evt");'),
        state="_stim_evt")


# -- third-perf-wave surfaces (slot FSM, goal dispatch, batching) ------

def _rc803_batch() -> Fixture:
    # The C delivery batch cap bumped without eventloop.py following:
    # coalescing width would change under exactly one backend.
    return Fixture(
        name="audit-RC803-batch", code="RC803",
        run=_doctored_c("#define DELIVER_BATCH_MAX 16",
                        "#define DELIVER_BATCH_MAX 24"),
        state="DELIVER_BATCH_MAX")


def _rc804_poison() -> Fixture:
    # The FSM fast-path gate resolving a flag backend.py renamed.
    return Fixture(
        name="audit-RC804-poison", code="RC804",
        run=_doctored_c('PyObject_GetAttrString(mod, "ARENA_POISON")',
                        'PyObject_GetAttrString(mod, "ARENA_POISONX")'),
        state="repro.network.backend.ARENA_POISONX")


def _rc804_state() -> Fixture:
    # A slot-state constant consumed by the C FSM kernels that the
    # Python protocol module no longer exports.
    return Fixture(
        name="audit-RC804-state", code="RC804",
        run=_doctored_c('PyObject_GetAttrString(mod, "FLOWING")',
                        'PyObject_GetAttrString(mod, "FLOWINGX")'),
        state="repro.protocol.slot.FLOWINGX")


def _rc805_gen() -> Fixture:
    # The generation counter the C FSM bumps, renamed on the C side
    # only: the goal-poll memo would never invalidate from C.
    return Fixture(
        name="audit-RC805-gen", code="RC805",
        run=_doctored_c('INTERN(goal_gen, "goal_gen");',
                        'INTERN(goal_gen, "goal_generation");'),
        state="goal_generation")


def _det_fixture(name: str, code: str, source: str,
                 state: str) -> Fixture:
    def run() -> List[Diagnostic]:
        return check_source("broken/%s.py" % code.lower(),
                            textwrap.dedent(source))
    return Fixture(name=name, code=code, run=run, state=state)


def _rc810() -> Fixture:
    # The acceptance scenario: a time.time() call injected into
    # scheduler-adjacent code.
    return _det_fixture(
        "audit-RC810", "RC810", """\
        import time

        def run_until(loop, deadline):
            start = time.time()
            while loop.pending():
                loop.step()
        """, state="broken/rc810.py:4")


def _rc811() -> Fixture:
    return _det_fixture(
        "audit-RC811", "RC811", """\
        import random

        def jitter(delay):
            return delay + random.random() * 0.01
        """, state="broken/rc811.py:4")


def _rc812() -> Fixture:
    return _det_fixture(
        "audit-RC812", "RC812", """\
        def heard_by(listeners):
            return [hear(x) for x in set(listeners)]
        """, state="broken/rc812.py:2")


def _rc813() -> Fixture:
    return _det_fixture(
        "audit-RC813", "RC813", """\
        import os

        def pick_mode():
            return os.environ.get("REPRO_MODE", "fast")
        """, state="broken/rc813.py:4")


def _rc814() -> Fixture:
    return _det_fixture(
        "audit-RC814", "RC814", """\
        def expired(loop):
            return loop.now == 1.5
        """, state="broken/rc814.py:2")


def _arena_fixture(name: str, code: str, source: str,
                   state: str) -> Fixture:
    def run() -> List[Diagnostic]:
        return check_module_source("broken/%s.py" % code.lower(),
                                   textwrap.dedent(source))
    return Fixture(name=name, code=code, run=run, state=state)


def _rc820() -> Fixture:
    # The acceptance scenario: a freelist acquire that forgets the
    # re-arm contract (no fresh seq, no callback, no _loop).
    return _arena_fixture(
        "audit-RC820", "RC820", """\
        def transmit(self, target, message, when):
            free = self._free
            if free:
                event = free.pop()
                event.time = when
                event.args = (message,)
            else:
                event = Event(when, 0, None, None, (message,), None)
            return event
        """, state="broken/rc820.py:4")


def _rc821() -> Fixture:
    # An envelope released into the pool still holding its signal.
    return _arena_fixture(
        "audit-RC821", "RC821", """\
        def process(self, message):
            deliver(message.signal)
            pool = self._loop._env_pool
            if len(pool) < _ENV_POOL_MAX:
                pool.append(message)
        """, state="broken/rc821.py:5")


def _rc822() -> Fixture:
    # A release with no cap guard: unbounded pool growth.
    return _arena_fixture(
        "audit-RC822", "RC822", """\
        def process(self, message):
            deliver(message.signal)
            message.signal = None
            pool = self._loop._env_pool
            pool.append(message)
        """, state="broken/rc822.py:5")


def _rc823() -> Fixture:
    # A re-arm that reuses the old seq: the recycled event would
    # replay its previous position in the execution order.
    return _arena_fixture(
        "audit-RC823", "RC823", """\
        def rearm(self, node, loop, when):
            event = node._stim_event
            event.time = when
            event._loop = loop
            return event
        """, state="broken/rc823.py:4")


def all_audit_fixtures() -> List[Fixture]:
    """Every negative control, in code order."""
    return [fn() for fn in (
        _rc801, _rc802, _rc803, _rc804, _rc805,
        _rc803_batch, _rc804_poison, _rc804_state, _rc805_gen,
        _rc810, _rc811, _rc812, _rc813, _rc814,
        _rc820, _rc821, _rc822, _rc823)]
