"""``python -m repro audit`` — run the runtime auditor.

Usage::

    python -m repro audit                      # all four passes
    python -m repro audit --list               # show target names
    python -m repro audit --target runtime/parity
    python -m repro audit --format json        # machine-readable
    python -m repro audit --list-rules         # the RCxxx+RC8xx catalog
    python -m repro audit --fixtures           # negative controls
                                               # (exits 1 by design)
    python -m repro audit --leak-gate --runs 7 # replay a bundled app
                                               # and gate on stability

Exit status mirrors ``repro lint``: 0 when every selected target is
clean (for ``--leak-gate``: object counts stable), 1 when any
unsuppressed diagnostic was found (or the gate saw growth), 2 on
usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, TextIO

from ..staticcheck.catalog import LintTarget
from ..staticcheck.cli import _render_json, _render_text
from ..staticcheck.diagnostics import format_rule_table
from .catalog import audit_targets, select_audit_targets
from .fixtures import all_audit_fixtures
from .leakgate import DEFAULT_APP, run_leak_gate

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro audit",
        description="Statically audit the runtime: C/Python backend "
                    "parity, determinism hazards, and arena reset "
                    "contracts (RC8xx)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--target", action="append", default=None,
                        metavar="NAME",
                        help="audit only this catalog target "
                             "(repeatable; see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list catalog target names and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the merged RCxxx/RC8xx rule "
                             "catalog and exit")
    parser.add_argument("--fixtures", action="store_true",
                        help="audit the deliberately-broken fixtures "
                             "instead of the catalog (exits 1)")
    parser.add_argument("--leak-gate", action="store_true",
                        help="replay a bundled app and gate on "
                             "object-count stability")
    parser.add_argument("--runs", type=int, default=5, metavar="N",
                        help="measured replays for --leak-gate "
                             "(default 5, after 2 warmups)")
    parser.add_argument("--app", default=DEFAULT_APP, metavar="NAME",
                        help="scenario for --leak-gate (default %s)"
                             % DEFAULT_APP)
    return parser


def _fixture_targets() -> List[LintTarget]:
    return [LintTarget(f.name, f.run) for f in all_audit_fixtures()]


def _run_leak_gate(args, out: TextIO) -> int:
    try:
        report = run_leak_gate(app=args.app, runs=args.runs)
    except KeyError as exc:
        sys.stderr.write("repro audit: unknown app %s\n" % exc)
        return 2
    if args.format == "json":
        json.dump(report.to_json(), out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        out.write(report.format() + "\n")
    return 0 if report.stable else 1


def main(argv: Optional[Sequence[str]] = None,
         stream: Optional[TextIO] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)  # exits 2 on usage errors
    out = stream if stream is not None else sys.stdout

    if args.list_rules:
        out.write(format_rule_table())
        return 0

    if args.list:
        for target in audit_targets():
            out.write("%s\n" % target.name)
        return 0

    if args.leak_gate:
        return _run_leak_gate(args, out)

    if args.fixtures:
        targets = _fixture_targets()
    elif args.target:
        try:
            targets = select_audit_targets(args.target)
        except KeyError as exc:
            sys.stderr.write("repro audit: unknown target %s "
                             "(see --list)\n" % exc)
            return 2
    else:
        targets = audit_targets()

    reports = [t.report() for t in targets]
    if args.format == "json":
        _render_json(reports, out)
    else:
        _render_text(reports, out)
    return 0 if all(r.clean for r in reports) else 1


if __name__ == "__main__":  # pragma: no cover - python -m entry
    sys.exit(main())
