"""Pass 4 (dynamic): the refcount/object-count leak gate.

Replays a bundled application scenario N times and asserts that the
process's live-object population is stable across the tail runs.  The
static arena checker proves release sites exist; this gate proves the
whole runtime — including the C extension's 100+ manual DECREF sites —
actually returns to steady state.  CI runs it against the ASan/UBSan
artifact (``tools/build_backend.py --debug --sanitize``), so a missing
DECREF shows up here as monotone growth even when it is not
heap-corrupting.

Warm-up runs are excluded from the verdict: first executions populate
caches (interned strings, compiled regexes, per-type method caches)
that are steady state, not leaks.  On debug builds of CPython,
``sys.gettotalrefcount`` is recorded as well.
"""

from __future__ import annotations

import gc
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["LeakReport", "run_leak_gate", "DEFAULT_APP"]

DEFAULT_APP = "click_to_dial"

#: Allowed object-count spread across the measured window.  With the
#: bounded memo caches cleared per measurement the bundled apps replay
#: to the exact same object count; a genuine arena/refcount leak grows
#: by hundreds of objects per replay.  The slack only absorbs GC
#: jitter such as a generation boundary landing differently.
DEFAULT_TOLERANCE = 16


@dataclass
class LeakReport:
    app: str
    runs: int
    warmup: int
    tolerance: int
    counts: List[int] = field(default_factory=list)
    refcounts: List[Optional[int]] = field(default_factory=list)

    @property
    def window(self) -> List[int]:
        return self.counts[self.warmup:]

    @property
    def spread(self) -> int:
        return max(self.window) - min(self.window) if self.window else 0

    @property
    def growth(self) -> int:
        """Last minus first measured count — the leak signature is
        monotone growth, which spread alone could hide."""
        return (self.window[-1] - self.window[0]) if self.window else 0

    @property
    def stable(self) -> bool:
        return self.spread <= self.tolerance

    def to_json(self) -> Dict[str, object]:
        return {
            "app": self.app,
            "runs": self.runs,
            "warmup": self.warmup,
            "tolerance": self.tolerance,
            "counts": list(self.counts),
            "refcounts": list(self.refcounts),
            "spread": self.spread,
            "growth": self.growth,
            "stable": self.stable,
        }

    def format(self) -> str:
        lines = ["leak gate: %s x%d (+%d warmup), tolerance %d"
                 % (self.app, self.runs, self.warmup, self.tolerance)]
        for i, count in enumerate(self.counts):
            tag = "warmup" if i < self.warmup else "run   "
            ref = ("  totalref=%d" % self.refcounts[i]
                   if self.refcounts[i] is not None else "")
            lines.append("  %s %2d: %d objects%s" % (tag, i, count, ref))
        lines.append("  spread=%d growth=%d -> %s"
                     % (self.spread, self.growth,
                        "STABLE" if self.stable else "LEAKING"))
        return "\n".join(lines)


def _reset_bounded_caches() -> None:
    """Clear the runtime's bounded memo caches before measuring.

    The codec-capability and descriptor-validation memos are id-keyed
    and capped (they clear themselves at their size limit), so they
    are steady-state infrastructure, not leaks — but until the cap
    trips they grow by a few entries per replay, which reads as a slow
    leak to an object-count gate.  Clearing them isolates the signal
    this gate exists for: growth with *no* cap at all.
    """
    from ..protocol.codecs import _SUPPORTED_MEMO
    from ..protocol.descriptor import _VALIDATED
    _SUPPORTED_MEMO.clear()
    _VALIDATED.clear()


def _measure() -> Tuple[int, Optional[int]]:
    _reset_bounded_caches()
    gc.collect()
    total = getattr(sys, "gettotalrefcount", None)
    return len(gc.get_objects()), (total() if total else None)


def run_leak_gate(app: str = DEFAULT_APP, runs: int = 5,
                  warmup: int = 2, seed: int = 7,
                  tolerance: int = DEFAULT_TOLERANCE) -> LeakReport:
    """Replay ``app`` and measure live objects after each run."""
    from ..chaos.scenarios import SCENARIOS
    from ..network.network import Network

    if app not in SCENARIOS:
        raise KeyError(app)
    scenario = SCENARIOS[app]
    report = LeakReport(app=app, runs=runs, warmup=warmup,
                        tolerance=tolerance)
    for _ in range(warmup + runs):
        net = Network(seed=seed)
        scenario(net)
        del net
        count, refs = _measure()
        report.counts.append(count)
        report.refcounts.append(refs)
    return report
