"""Pass 3: arena reset-contract checker.

PR 6 introduced three object arenas on the hot path (DESIGN.md §10):
the per-link Event freelist, the per-node recycled stimulus event, and
the per-loop TunnelMessage envelope pool.  Each has a reset contract —
which fields an acquire must re-arm, what a release must clear, and
the cap that bounds the pool.  A site that violates the contract is
not a crash today; it is a stale ``seq`` or a leaked signal reference
that corrupts execution order or pins memory three PRs from now.

The checker is deliberately flow-insensitive and function-scoped: an
acquire and its re-arm stores must live in the same function (they do,
on the hot path, by design — the arenas exist to avoid call frames),
which makes the static check simple and exhaustive rather than clever
and partial.

The same module also audits the C side's mirrored sites with the
pattern-based approach of :mod:`.surface`: the C freelist re-arm block
must assign the same fields, and the C envelope release must reset
``signal`` and honor the cap.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..staticcheck.diagnostics import Diagnostic
from .surface import c_source_path, repo_root

__all__ = ["ArenaSpec", "SPECS", "check_module_source",
           "check_c_contracts", "check_arenas"]

_PROGRAM = "runtime/arenas"


@dataclass(frozen=True)
class ArenaSpec:
    """One arena's reset contract."""

    name: str
    #: The attribute holding the pool (``_free`` / ``_env_pool``).
    pool_attr: str
    #: Fields an acquire site must store on the recycled object.
    reset_attrs: Tuple[str, ...]
    #: The cap constant a release site must guard with.
    cap_name: str
    #: Fields a release site must reset (cleared references).
    release_reset: Tuple[str, ...] = ()
    #: Releases must exclude cancelled tombstones (Event freelist:
    #: a cancelled event may still sit in a scheduler lane).
    guard_not_cancelled: bool = False


SPECS: Tuple[ArenaSpec, ...] = (
    ArenaSpec(name="event-freelist", pool_attr="_free",
              reset_attrs=("time", "seq", "args", "callback", "_loop"),
              cap_name="_FREELIST_MAX",
              guard_not_cancelled=True),
    ArenaSpec(name="envelope-pool", pool_attr="_env_pool",
              reset_attrs=("tunnel_id", "signal"),
              cap_name="_ENV_POOL_MAX",
              release_reset=("signal",)),
)

#: The modules that contain arena sites.  The checker runs over all of
#: them so a *new* acquire/release site added anywhere in the runtime
#: is audited automatically.
ARENA_MODULES: Tuple[str, ...] = (
    "network/eventloop.py",
    "network/transport.py",
    "network/node.py",
    "protocol/channel.py",
    "protocol/slot.py",
)


def _attr_chain_tail(node: ast.AST) -> Optional[str]:
    """Final attribute name of a dotted chain (``self._loop._env_pool``
    → ``_env_pool``), else None."""
    return node.attr if isinstance(node, ast.Attribute) else None


def _functions(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _pool_aliases(fn: ast.AST, pool_attr: str) -> Set[str]:
    """Local names bound to a pool (``free = self._free``)."""
    aliases: Set[str] = set()
    for node in ast.walk(fn):
        if (isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _attr_chain_tail(node.value) == pool_attr):
            aliases.add(node.targets[0].id)
    return aliases


def _names_pool(node: ast.AST, pool_attr: str,
                aliases: Set[str]) -> bool:
    if isinstance(node, ast.Name):
        return node.id in aliases
    return _attr_chain_tail(node) == pool_attr


def _stores_on(fn: ast.AST, var: str) -> Set[str]:
    """Attribute names assigned on local ``var`` inside ``fn``."""
    stores: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == var):
                    stores.add(target.attr)
    return stores


def _mentions_name(fn: ast.AST, wanted: str) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and node.id == wanted:
            return True
        if isinstance(node, ast.Attribute) and node.attr == wanted:
            return True
    return False


def _mentions_attr_access(fn: ast.AST, attr: str) -> bool:
    return any(isinstance(node, ast.Attribute) and node.attr == attr
               for node in ast.walk(fn))


def check_module_source(relpath: str, text: str) -> List[Diagnostic]:
    """Audit one Python module's arena sites."""
    found: List[Diagnostic] = []

    def diag(code: str, lineno: int, message: str) -> None:
        found.append(Diagnostic(code=code, message=message,
                                program=_PROGRAM,
                                state="%s:%d" % (relpath, lineno)))

    try:
        tree = ast.parse(text, filename=relpath)
    except SyntaxError as exc:
        diag("RC820", exc.lineno or 0,
             "file failed to parse: %s" % exc)
        return found

    for fn in _functions(tree):
        for spec in SPECS:
            aliases = _pool_aliases(fn, spec.pool_attr)

            for node in ast.walk(fn):
                # Acquire: ``obj = <pool>.pop()``.
                if (isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)
                        and isinstance(node.value, ast.Call)
                        and isinstance(node.value.func, ast.Attribute)
                        and node.value.func.attr == "pop"
                        and _names_pool(node.value.func.value,
                                        spec.pool_attr, aliases)):
                    var = node.targets[0].id
                    missing = [a for a in spec.reset_attrs
                               if a not in _stores_on(fn, var)]
                    if missing:
                        diag("RC820", node.lineno,
                             "%s acquire %r in %s() does not re-arm "
                             "%s; the recycled object would carry "
                             "stale state into its next use"
                             % (spec.name, var, fn.name,
                                ", ".join(sorted(missing))))

                # Release: ``<pool>.append(obj)``.
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "append"
                        and _names_pool(node.func.value,
                                        spec.pool_attr, aliases)
                        and node.args
                        and isinstance(node.args[0], ast.Name)):
                    var = node.args[0].id
                    if not _mentions_name(fn, spec.cap_name):
                        diag("RC822", node.lineno,
                             "%s release of %r in %s() has no %s cap "
                             "guard; an adversarial workload would "
                             "grow the pool without bound"
                             % (spec.name, var, fn.name,
                                spec.cap_name))
                    stores = _stores_on(fn, var)
                    for attr in spec.release_reset:
                        if attr not in stores:
                            diag("RC821", node.lineno,
                                 "%s release of %r in %s() does not "
                                 "reset .%s; the pooled object would "
                                 "pin a %s reference across episodes"
                                 % (spec.name, var, fn.name, attr,
                                    attr))
                    if (spec.guard_not_cancelled
                            and not _mentions_attr_access(fn,
                                                          "cancelled")):
                        diag("RC821", node.lineno,
                             "%s release of %r in %s() does not "
                             "exclude cancelled tombstones, which may "
                             "still sit in a scheduler lane"
                             % (spec.name, var, fn.name))

        # RC823 — any re-arm of a local event (``ev._loop = loop``)
        # must draw a fresh seq in the same function.
        for node in ast.walk(fn):
            if (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and node.targets[0].attr == "_loop"
                    and isinstance(node.targets[0].value, ast.Name)
                    and node.targets[0].value.id != "self"
                    and not (isinstance(node.value, ast.Constant)
                             and node.value.value is None)):
                var = node.targets[0].value.id
                has_fresh_seq = any(
                    isinstance(n, ast.Assign)
                    and len(n.targets) == 1
                    and isinstance(n.targets[0], ast.Attribute)
                    and n.targets[0].attr == "seq"
                    and isinstance(n.targets[0].value, ast.Name)
                    and n.targets[0].value.id == var
                    and any(isinstance(c, ast.Call)
                            and isinstance(c.func, ast.Name)
                            and c.func.id == "next"
                            for c in ast.walk(n.value))
                    for n in ast.walk(fn))
                if not has_fresh_seq:
                    diag("RC823", node.lineno,
                         "event %r is re-armed (._loop set) in %s() "
                         "without a fresh seq = next(...); reuse "
                         "would replay the old scheduling order"
                         % (var, fn.name))
    return found


# ----------------------------------------------------------------------
# the C side of the same contracts
# ----------------------------------------------------------------------
#: Pattern → (code, message).  Each pattern must appear in _ccore.c;
#: its absence means the mirrored C site lost part of the contract
#: (or drifted away from the audited idiom — equally worth a look).
_C_CONTRACTS: Tuple[Tuple[str, str, str], ...] = (
    (r'ev->seq\s*=\s*seq', "RC820",
     "C freelist re-arm no longer assigns ev->seq"),
    (r'ev->time\s*=\s*\w+', "RC820",
     "C freelist re-arm no longer assigns ev->time"),
    (r'PyList_GET_SIZE\(\w+->freelist\)\s*<\s*FREELIST_MAX', "RC822",
     "C freelist harvest lost its FREELIST_MAX cap guard"),
    (r'PyList_GET_SIZE\(\w+->env_pool\)\s*<\s*ENV_POOL_MAX', "RC822",
     "C envelope release lost its ENV_POOL_MAX cap guard"),
    (r'PyObject_SetAttr\(\w+,\s*S\.signal,\s*Py_None\)', "RC821",
     "C envelope release no longer resets ->signal to None"),
    (r'cancelled', "RC821",
     "C freelist logic no longer consults the cancelled flag"),
)


def check_c_contracts(text: str) -> List[Diagnostic]:
    found: List[Diagnostic] = []
    for pattern, code, message in _C_CONTRACTS:
        if not re.search(pattern, text):
            found.append(Diagnostic(
                code=code, program=_PROGRAM, state="_ccore.c",
                message=message + " (pattern %r not found)" % pattern))
    return found


def check_arenas(root: Optional[str] = None) -> List[Diagnostic]:
    """Run the arena pass over the real repo."""
    root = root or repo_root()
    base = os.path.join(root, "src", "repro")
    found: List[Diagnostic] = []
    for rel in ARENA_MODULES:
        path = os.path.join(base, rel.replace("/", os.sep))
        with open(path, "r", encoding="utf-8") as fh:
            found.extend(check_module_source(rel, fh.read()))
    with open(c_source_path(root), "r", encoding="utf-8") as fh:
        found.extend(check_c_contracts(fh.read()))
    return sorted(found, key=lambda d: (d.state or "", d.code))
