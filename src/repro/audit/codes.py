"""The RC8xx diagnostic family: codes for the runtime auditor.

Importing this module registers the family into the shared
staticcheck registry (:func:`repro.staticcheck.diagnostics
.register_codes`), so RC8xx diagnostics resolve titles and severities
through the same tables as the RCxxx box-program linter, and
``repro lint --list-rules`` / ``repro audit --list-rules`` print one
merged catalog.

Sub-families::

    RC80x  backend parity   (C surface vs. Python reference surface)
    RC81x  determinism      (hazards that break byte-identical traces)
    RC82x  arena contracts  (freelist/pool acquire-reset-release)
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..staticcheck.diagnostics import register_codes

__all__ = ["AUDIT_CODES", "AUDIT_DESCRIPTIONS"]

AUDIT_CODES: Dict[str, Tuple[str, str]] = {
    "RC801": ("kernel-surface-drift", "error"),
    "RC802": ("comparator-order-drift", "error"),
    "RC803": ("constant-drift", "error"),
    "RC804": ("missing-runtime-symbol", "error"),
    "RC805": ("interned-name-drift", "error"),
    "RC810": ("wall-clock-read", "error"),
    "RC811": ("unseeded-random", "error"),
    "RC812": ("unordered-iteration", "warning"),
    "RC813": ("environ-read", "error"),
    "RC814": ("float-eq-sim-time", "warning"),
    "RC820": ("acquire-without-reset", "error"),
    "RC821": ("release-without-reset", "error"),
    "RC822": ("uncapped-release", "error"),
    "RC823": ("rearm-without-fresh-seq", "error"),
}

AUDIT_DESCRIPTIONS: Dict[str, str] = {
    "RC801": "a runtime kernel is exported by _ccore.c or consumed by "
             "the Python modules, but not both",
    "RC802": "the Event comparator's (time, priority, seq) field order "
             "differs between the C and Python implementations",
    "RC803": "an arena cap or the ABI version differs between _ccore.c "
             "and its Python reference module",
    "RC804": "_ccore.c looks up a module attribute the Python runtime "
             "no longer defines",
    "RC805": "_ccore.c interns or fetches an attribute name that "
             "appears nowhere in the Python reference modules",
    "RC810": "a wall-clock read (time.time/perf_counter/...) at a "
             "site that can perturb deterministic simulation",
    "RC811": "a module-level random.* call draws from the unseeded "
             "global RNG instead of a seeded Random instance",
    "RC812": "iteration over a set/frozenset whose order is not "
             "pinned (wrap in sorted())",
    "RC813": "an os.environ/os.getenv read outside "
             "repro.network.backend, the one sanctioned config seam",
    "RC814": "a float literal compared with == / != against a "
             "sim-time expression",
    "RC820": "an arena acquire site does not re-arm every field the "
             "reset contract requires",
    "RC821": "an arena release site does not reset required fields or "
             "releases cancelled tombstones",
    "RC822": "an arena release site appends without the pool's cap "
             "guard (unbounded growth)",
    "RC823": "an event is re-armed (_loop set) without drawing a "
             "fresh seq, breaking execution order",
}

register_codes(AUDIT_CODES, AUDIT_DESCRIPTIONS)
