"""Pass 1: diff the C surface against the Python reference surface.

A kernel, constant, comparator field, or attribute name present on one
side of the backend seam but not the other is reported as an RC80x
error *here*, at lint time — instead of surfacing later as a
fingerprint divergence two subsystems away (or worse, not surfacing,
because the drifted path only runs under one backend).
"""

from __future__ import annotations

import importlib
from typing import List, Optional

from ..staticcheck.diagnostics import Diagnostic
from .surface import (CSurface, PySurface, load_c_surface,
                      load_py_surface)

__all__ = ["diff_surfaces", "check_parity"]

_PROGRAM = "runtime/parity"


def _diag(code: str, message: str, state: Optional[str] = None
          ) -> Diagnostic:
    return Diagnostic(code=code, message=message, program=_PROGRAM,
                      state=state)


def diff_surfaces(c: CSurface, py: PySurface) -> List[Diagnostic]:
    """All RC80x diagnostics between the two extracted surfaces."""
    found: List[Diagnostic] = []

    for problem in py.problems:
        found.append(_diag("RC804",
                           "reference module failed extraction: %s"
                           % problem))

    # RC801 — kernel entry points must match exactly in both
    # directions: an export nobody consumes is dead drift, a consumer
    # without an export crashes only under REPRO_BACKEND=compiled.
    for name in sorted(c.kernels - py.kernels_consumed):
        found.append(_diag(
            "RC801",
            "kernel %r is exported by _ccore.c but never consumed by "
            "the Python reference modules (dead C surface, or the "
            "Python seam lost its _CORE.%s wiring)" % (name, name),
            state=name))
    for name in sorted(py.kernels_consumed - c.kernels):
        found.append(_diag(
            "RC801",
            "kernel %r is consumed as _CORE.%s by the Python runtime "
            "but not exported by _ccore.c; the compiled backend would "
            "fail at wiring time" % (name, name),
            state=name))

    # RC802 — the (time, priority, seq) order is the scheduler's
    # total order; every Python comparator must match the C one.
    if not c.comparator:
        found.append(_diag("RC802",
                           "could not extract the cev_lt comparator "
                           "from _ccore.c (refactored away from the "
                           "audited idiom?)"))
    for fn_name, order in sorted(py.comparators.items()):
        if c.comparator and order != c.comparator:
            found.append(_diag(
                "RC802",
                "event comparator %s orders fields %r but the C "
                "cev_lt orders %r; heap order would diverge between "
                "backends" % (fn_name, order, c.comparator),
                state=fn_name))
    for expected in ("Event.__lt__", "_earlier"):
        if expected not in py.comparators:
            found.append(_diag(
                "RC802",
                "Python comparator %s not found in eventloop.py "
                "(renamed without updating the audit surface?)"
                % expected, state=expected))

    # RC803 — arena caps, the delivery batch cap, and the ABI version
    # must agree; a one-sided cap bump changes recycling or coalescing
    # behavior (and thus allocation patterns) under exactly one
    # backend.
    for cname in ("FREELIST_MAX", "ENV_POOL_MAX", "DELIVER_BATCH_MAX"):
        c_val = c.constants.get(cname)
        py_val = py.constants.get(cname)
        if c_val != py_val:
            found.append(_diag(
                "RC803",
                "arena cap %s is %r in _ccore.c but %r in its Python "
                "reference module" % (cname, c_val, py_val),
                state=cname))
    abi = c.constants.get("CCORE_ABI_VERSION")
    if abi is None or py.abi_expected != {abi}:
        found.append(_diag(
            "RC803",
            "ABI version drift: _ccore.c defines CCORE_ABI_VERSION=%r "
            "but backend.py gates on %r" % (
                abi, sorted(py.abi_expected) or None),
            state="ABI_VERSION"))

    # RC804 — every module attribute the C core resolves lazily at
    # runtime (ensure_protocol) must still exist on the Python side.
    for module_name, attr in c.module_lookups:
        try:
            module = importlib.import_module(module_name)
        except Exception as exc:  # pragma: no cover - import breakage
            found.append(_diag(
                "RC804",
                "_ccore.c imports %s, which fails to import: %s"
                % (module_name, exc), state=module_name))
            continue
        if not hasattr(module, attr):
            found.append(_diag(
                "RC804",
                "_ccore.c resolves %s.%s at runtime, but the module "
                "no longer defines it" % (module_name, attr),
                state="%s.%s" % (module_name, attr)))

    # RC805 — every attribute name the C core interns or fetches must
    # appear somewhere in the Python reference modules; a name that
    # does not is a renamed-on-one-side attribute waiting to return
    # AttributeError (or silently miss a cache) under compiled.
    for name in sorted(set(c.interned) | set(c.attr_lookups)):
        if name not in py.attribute_names:
            found.append(_diag(
                "RC805",
                "_ccore.c interns/fetches attribute name %r, which "
                "appears nowhere in the Python reference modules"
                % name, state=name))
    return found


def check_parity(c_text: Optional[str] = None,
                 py_sources=None) -> List[Diagnostic]:
    """Run the parity pass; with no arguments, over the real repo."""
    from .surface import extract_c_surface, extract_py_surface
    c = (load_c_surface() if c_text is None
         else extract_c_surface(c_text))
    py = (load_py_surface() if py_sources is None
          else extract_py_surface(py_sources))
    return sorted(diff_surfaces(c, py),
                  key=lambda d: (d.code, d.state or "", d.message))
