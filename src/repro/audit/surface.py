"""Surface extraction for the backend-parity audit.

Two extractors produce comparable "surfaces" of the dual-implemented
runtime core:

:func:`extract_c_surface`
    Lightweight, pattern-based extraction from ``_ccore.c`` — no C
    parser, just the handful of stylized idioms the extension uses
    throughout: ``PyModule_AddObject(mod, "Name", ...)`` exports, the
    ``ccore_methods`` table, ``#define`` constants, the ``cev_lt``
    comparator body, the ``INTERN(field, "text")`` list, and
    ``PyImport_ImportModule`` / ``PyObject_GetAttrString`` lookups.
    The extension is hand-written in exactly these idioms, so pattern
    extraction is reliable; if a future refactor abandons one, the
    parity pass fails loudly (an empty surface diffs as massive drift)
    rather than silently passing.

:func:`extract_py_surface`
    :mod:`ast`-based extraction from the Python reference modules
    (``eventloop``, ``transport``, ``node``, ``backend``, ``channel``,
    ``slot``, ``signals``): which ``_CORE.*`` kernels are consumed,
    the comparator field order of ``Event.__lt__`` and ``_earlier``,
    the arena cap constants, the expected ABI version, and the
    universe of attribute names the modules define or touch.

Both extractors accept source text, so the fixture negative controls
can feed doctored sources through the very same code paths the real
audit uses.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

__all__ = ["CSurface", "PySurface", "extract_c_surface",
           "extract_py_surface", "repo_root", "c_source_path",
           "reference_module_paths", "REFERENCE_MODULES"]


def repo_root() -> str:
    """The repository root (three levels above this file's package)."""
    here = os.path.dirname(os.path.abspath(__file__))      # .../repro/audit
    return os.path.dirname(os.path.dirname(os.path.dirname(here)))


def c_source_path(root: Optional[str] = None) -> str:
    root = root or repo_root()
    return os.path.join(root, "src", "repro", "network", "_ccore.c")


#: The Python modules that constitute the reference implementation of
#: the dual-implemented core, relative to ``src/repro``.
REFERENCE_MODULES: Tuple[str, ...] = (
    "network/eventloop.py",
    "network/transport.py",
    "network/node.py",
    "network/backend.py",
    "protocol/channel.py",
    "protocol/slot.py",
    "protocol/signals.py",
    # Goal machinery consumed by the C dispatch kernels (third perf
    # wave): Box.on_tunnel_signal / Box._poll, Maps._by_slot, and the
    # memoized program poll.
    "core/box.py",
    "core/maps.py",
    "core/program.py",
)


def reference_module_paths(root: Optional[str] = None) -> List[str]:
    root = root or repo_root()
    base = os.path.join(root, "src", "repro")
    return [os.path.join(base, rel) for rel in REFERENCE_MODULES]


# ----------------------------------------------------------------------
# C surface
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CSurface:
    """What ``_ccore.c`` exposes and expects."""

    #: Kernel names the module exports (type objects + module methods).
    kernels: FrozenSet[str]
    #: ``#define NAME <int>`` constants (FREELIST_MAX, ENV_POOL_MAX,
    #: CCORE_ABI_VERSION).
    constants: Dict[str, int]
    #: Field order of the ``cev_lt`` event comparator.
    comparator: Tuple[str, ...]
    #: Attribute names interned via the ``INTERN(field, "text")`` list.
    interned: Tuple[str, ...]
    #: ``(module, attribute)`` pairs resolved through
    #: ``PyImport_ImportModule`` + ``PyObject_GetAttrString(mod, ...)``.
    module_lookups: Tuple[Tuple[str, str], ...]
    #: Attribute names fetched from non-module objects at runtime
    #: (e.g. ``"receive"`` off the Slot type, ``"cancelled"`` off a
    #: foreign event).
    attr_lookups: Tuple[str, ...]


_EXPORT_RE = re.compile(r'PyModule_AddObject\(mod,\s*"(\w+)"')
_METHOD_TABLE_RE = re.compile(
    r'static PyMethodDef ccore_methods\[\]\s*=\s*\{(.*?)\};', re.S)
_METHOD_NAME_RE = re.compile(r'\{\s*"(\w+)"')
_DEFINE_RE = re.compile(r'^#define\s+([A-Z][A-Z0-9_]+)\s+(\d+)\s*$',
                        re.M)
_CMP_BODY_RE = re.compile(
    r'cev_lt\(CEvent \*a, CEvent \*b\)\s*\{(.*?)\n\}', re.S)
_CMP_FIELD_RE = re.compile(r'a->(\w+)')
_INTERN_RE = re.compile(r'INTERN\(\s*\w+\s*,\s*"([^"]+)"\s*\)')
_IMPORT_OR_GETATTR_RE = re.compile(
    r'PyImport_ImportModule\("([^"]+)"\)'
    r'|PyObject_GetAttrString\((\w+),\s*"([^"]+)"\)')


def extract_c_surface(text: str) -> CSurface:
    """Extract the comparable surface from C source ``text``."""
    kernels = set(_EXPORT_RE.findall(text))
    table = _METHOD_TABLE_RE.search(text)
    if table is not None:
        kernels.update(_METHOD_NAME_RE.findall(table.group(1)))

    constants = {name: int(value)
                 for name, value in _DEFINE_RE.findall(text)}

    comparator: Tuple[str, ...] = ()
    body = _CMP_BODY_RE.search(text)
    if body is not None:
        seen: List[str] = []
        for fld in _CMP_FIELD_RE.findall(body.group(1)):
            if fld not in seen:
                seen.append(fld)
        comparator = tuple(seen)

    interned = tuple(_INTERN_RE.findall(text))

    module_lookups: List[Tuple[str, str]] = []
    attr_lookups: List[str] = []
    current_module: Optional[str] = None
    for match in _IMPORT_OR_GETATTR_RE.finditer(text):
        module, receiver, attr = match.groups()
        if module is not None:
            current_module = module
        elif receiver == "mod":
            if current_module is not None:
                module_lookups.append((current_module, attr))
        else:
            attr_lookups.append(attr)
    return CSurface(kernels=frozenset(kernels), constants=constants,
                    comparator=comparator, interned=interned,
                    module_lookups=tuple(module_lookups),
                    attr_lookups=tuple(attr_lookups))


# ----------------------------------------------------------------------
# Python surface
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PySurface:
    """What the Python reference modules consume and define."""

    #: ``_CORE.<name>`` kernels the reference modules consume.
    kernels_consumed: FrozenSet[str]
    #: Arena caps by canonical name (matching the C ``#define`` names).
    constants: Dict[str, int]
    #: Comparator field orders keyed by function (``Event.__lt__``,
    #: ``_earlier``).
    comparators: Dict[str, Tuple[str, ...]]
    #: The ABI versions ``backend.py`` accepts (int literals compared
    #: against the extension's ``ABI_VERSION``).
    abi_expected: FrozenSet[int]
    #: Every attribute name, identifier-like string constant, and
    #: def/class name appearing in the reference modules — the universe
    #: a C interned name must land in.
    attribute_names: FrozenSet[str]
    #: Diagnostics produced during extraction itself (e.g. a reference
    #: module that fails to parse).
    problems: Tuple[str, ...] = field(default_factory=tuple)


#: Python constant name (module basename, variable) → C ``#define``.
_CONSTANT_MAP = {
    ("transport.py", "_FREELIST_MAX"): "FREELIST_MAX",
    ("channel.py", "_ENV_POOL_MAX"): "ENV_POOL_MAX",
    ("eventloop.py", "_DELIVER_BATCH_MAX"): "DELIVER_BATCH_MAX",
}

_IDENTIFIER_RE = re.compile(r'^[A-Za-z_][A-Za-z0-9_]*$')


def _comparator_fields(fn: ast.FunctionDef) -> Tuple[str, ...]:
    """Attribute names compared inside a tuple-free comparator body,
    in first-appearance order (``self.time`` / ``f.time`` both count —
    any attribute read inside the function body)."""
    order: List[str] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and node.attr not in order:
            order.append(node.attr)
    return tuple(order)


def extract_py_surface(sources: Dict[str, str]) -> PySurface:
    """Extract the Python reference surface from ``sources``, a map of
    file basename (or path) → source text."""
    kernels: set = set()
    constants: Dict[str, int] = {}
    comparators: Dict[str, Tuple[str, ...]] = {}
    abi_expected: set = set()
    names: set = set()
    problems: List[str] = []

    for path, text in sorted(sources.items()):
        base = os.path.basename(path)
        try:
            tree = ast.parse(text, filename=base)
        except SyntaxError as exc:
            problems.append("%s: %s" % (base, exc))
            continue
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                names.add(node.attr)
                if (isinstance(node.value, ast.Name)
                        and node.value.id == "_CORE"):
                    kernels.add(node.attr)
            elif isinstance(node, ast.Constant):
                if (isinstance(node.value, str)
                        and _IDENTIFIER_RE.match(node.value)):
                    names.add(node.value)
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                names.add(node.name)

        # Arena caps: module-level ``_NAME = <int>`` assignments.
        for node in tree.body:
            if (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)):
                key = (base, node.targets[0].id)
                if key in _CONSTANT_MAP:
                    constants[_CONSTANT_MAP[key]] = node.value.value

        # Comparators: Event.__lt__ and the module-level _earlier.
        if base == "eventloop.py":
            for node in ast.walk(tree):
                if isinstance(node, ast.ClassDef) and node.name == "Event":
                    for item in node.body:
                        if (isinstance(item, ast.FunctionDef)
                                and item.name == "__lt__"):
                            comparators["Event.__lt__"] = \
                                _comparator_fields(item)
                elif (isinstance(node, ast.FunctionDef)
                        and node.name == "_earlier"):
                    comparators["_earlier"] = _comparator_fields(node)

        # Expected ABI: int literals compared against a
        # getattr(..., "ABI_VERSION", ...) read in backend.py.
        if base == "backend.py":
            for node in ast.walk(tree):
                if not isinstance(node, ast.Compare):
                    continue
                mentions_abi = any(
                    isinstance(sub, ast.Constant)
                    and sub.value == "ABI_VERSION"
                    for side in [node.left] + list(node.comparators)
                    for sub in ast.walk(side))
                if not mentions_abi:
                    continue
                for side in [node.left] + list(node.comparators):
                    if (isinstance(side, ast.Constant)
                            and isinstance(side.value, int)
                            and not isinstance(side.value, bool)):
                        abi_expected.add(side.value)

    return PySurface(kernels_consumed=frozenset(kernels),
                     constants=constants, comparators=comparators,
                     abi_expected=frozenset(abi_expected),
                     attribute_names=frozenset(names),
                     problems=tuple(problems))


def load_c_surface(root: Optional[str] = None) -> CSurface:
    with open(c_source_path(root), "r", encoding="utf-8") as fh:
        return extract_c_surface(fh.read())


def load_py_surface(root: Optional[str] = None) -> PySurface:
    sources = {}
    for path in reference_module_paths(root):
        with open(path, "r", encoding="utf-8") as fh:
            sources[path] = fh.read()
    return extract_py_surface(sources)


__all__ += ["load_c_surface", "load_py_surface"]
