"""Developer tooling: tracing and chart rendering."""

from .msc import SignalTracer, TracedMessage

__all__ = ["SignalTracer", "TracedMessage"]
