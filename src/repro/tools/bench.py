"""Shared benchmark-report plumbing.

Every CLI that records a perf trajectory (``repro sweep --json``,
``repro chaos --bench-json``, ``repro load --bench-json``, and the
benchmark suite's ``--bench-json`` hook) needs the same three moves:
write a report under a path whose parent may not exist yet, load the
recorded seed baseline (tolerating its absence), and reduce a set of
speedups to one geomean.  They live here once.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, TextIO

__all__ = ["write_text", "emit_json", "load_baseline", "geomean",
           "speedup_vs_seed", "host_calibration"]


def write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path``, creating parent directories so
    report/trace flags accept paths under directories that do not exist
    yet (CI scratch dirs, for instance)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        fh.write(text)


def emit_json(path: str, payload: Any, out: Optional[TextIO] = None) -> None:
    """Serialize ``payload`` to ``path``, treating ``"-"`` as ``out``
    (stdout by default).  Reports stay diffable: sorted keys, indented,
    trailing newline."""
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if path == "-":
        import sys
        (out if out is not None else sys.stdout).write(text)
    else:
        write_text(path, text)


def load_baseline(path: str, key: Optional[str] = None) -> Dict[str, Any]:
    """Load a recorded seed baseline, or ``{}`` when it is missing or
    unreadable — a fresh checkout without baselines still benches, it
    just cannot report speedups.  ``key`` selects one top-level section
    of the baseline file."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return {}
    if not isinstance(payload, dict):
        return {}
    if key is None:
        return payload
    section = payload.get(key, {})
    return section if isinstance(section, dict) else {}


def exact_percentiles(values: Sequence[float],
                      ps: Sequence[float]) -> "Dict[str, Optional[float]]":
    """Exact (nearest-rank) percentiles over raw observations.

    Returns ``{"p50": ..., "p99": ..., "p999": ...}``-style keys (the
    label drops the decimal point: 99.9 -> ``p999``).  ``None`` per key
    on an empty input.  Exact because the load harness ships every raw
    per-call latency to the merge — tail percentiles from histogram
    buckets would be bounded by bucket resolution exactly where tails
    matter most.
    """
    labels = {p: "p%s" % str(p).replace(".", "").rstrip("0")
              if p != int(p) else "p%d" % int(p) for p in ps}
    if not values:
        return {labels[p]: None for p in ps}
    ordered = sorted(values)
    n = len(ordered)
    out = {}
    for p in ps:
        rank = max(1, -(-int(p * 10) * n // 1000))  # ceil(p*n/100), int-safe
        out[labels[p]] = ordered[min(rank, n) - 1]
    return out


def geomean(values: Sequence[float]) -> Optional[float]:
    """Geometric mean, or ``None`` on an empty sequence."""
    if not values:
        return None
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def speedup_vs_seed(seed_elapsed: Optional[float],
                    elapsed: Optional[float],
                    calibration: Optional[float] = None
                    ) -> Optional[float]:
    """``seed_elapsed / elapsed`` when both are positive, else ``None``
    (missing baselines and zero-length timings never divide).

    ``calibration`` is a host-speed ratio from :func:`host_calibration`:
    this host's measured rate on a *reference* workload divided by the
    rate the baseline host recorded for it.  Dividing the raw speedup
    by it re-expresses the measurement in baseline-host terms, so a
    speedup gate keeps meaning "the code got faster", not "the
    container got a faster CPU slice today".  ``None`` (or a
    non-positive value) applies no normalization.
    """
    if not seed_elapsed or not elapsed:
        return None
    if seed_elapsed <= 0 or elapsed <= 0:
        return None
    raw = seed_elapsed / elapsed
    if calibration and calibration > 0:
        return raw / calibration
    return raw


def host_calibration(measured_rate: Optional[float],
                     reference_rate: Optional[float]) -> Optional[float]:
    """This host's speed relative to the baseline host: the rate a
    fixed reference workload achieves here divided by the rate the
    baseline recorded for the identical workload.  1.0 means same
    speed; 0.9 means this host runs the reference ~10% slower (so raw
    speedups measured here understate the code by ~10%).  ``None``
    when either side is missing or non-positive."""
    if not measured_rate or not reference_rate:
        return None
    if measured_rate <= 0 or reference_rate <= 0:
        return None
    return measured_rate / reference_rate
