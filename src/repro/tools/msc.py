"""Message-sequence-chart tracing.

The paper explains its protocol with message-sequence charts (Figs. 10
and 13).  :class:`SignalTracer` instruments the links of a network and
renders the captured traffic as a text MSC, so any scenario in this
repository can regenerate its own chart — including Fig. 13 itself
(see ``examples/sequence_chart.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..network.network import Network
from ..obs.events import signal_label
from ..protocol.channel import SignalingChannel

__all__ = ["TracedMessage", "SignalTracer"]


@dataclass
class TracedMessage:
    """One captured signal: who sent what to whom, and when."""

    sent_at: float
    source: str
    target: str
    label: str

    def __str__(self) -> str:
        return "%8.3f  %s -> %s : %s" % (self.sent_at, self.source,
                                         self.target, self.label)


class SignalTracer:
    """Captures every signal crossing the instrumented channels.

    Each channel's link is tapped through the transmit-hook chain
    (outermost, like the observability tracer's own tap), so the chart
    shows what the application offered to the wire even when a fault
    plan later drops or duplicates it.  Labels come from
    :func:`repro.obs.events.signal_label`, the same canonical renderer
    the trace exporters use — an MSC and a trace of one run agree line
    for line.
    """

    def __init__(self, net: Network,
                 channels: Optional[Sequence[SignalingChannel]] = None):
        self.net = net
        self.messages: List[TracedMessage] = []
        self._attached: List = []
        for channel in (channels if channels is not None
                        else list(net.channels)):
            self.attach(channel)

    def attach(self, channel: SignalingChannel) -> None:
        """Instrument one channel (idempotent per channel)."""
        if channel in self._attached:
            return
        self._attached.append(channel)

        def spying_hook(origin, message, forward, _channel=channel):
            side = 0 if origin is _channel.link.ends[0] else 1
            source = _channel.ends[side].owner.name
            target = _channel.ends[1 - side].owner.name
            self.messages.append(TracedMessage(
                self.net.loop.now, source, target, signal_label(message)))
            forward(origin, message)

        channel.link.add_transmit_hook(spying_hook)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def clear(self) -> None:
        self.messages.clear()

    def parties(self) -> List[str]:
        """All names that appear, in order of first appearance."""
        seen: List[str] = []
        for m in self.messages:
            for name in (m.source, m.target):
                if name not in seen:
                    seen.append(name)
        return seen

    def render(self, order: Optional[Sequence[str]] = None,
               width: int = 16) -> str:
        """Render a text MSC: one column per party, one row per signal,
        arrows between the right columns."""
        parties = list(order) if order else self.parties()
        col: Dict[str, int] = {name: i for i, name in enumerate(parties)}
        lines = []
        header = "".join(name.center(width) for name in parties)
        lines.append("t(ms)".rjust(9) + " " + header)
        for m in self.messages:
            if m.source not in col or m.target not in col:
                continue
            a, b = col[m.source], col[m.target]
            lo, hi = min(a, b), max(a, b)
            row = [" " * width] * len(parties)
            span = (hi - lo) * width
            body = m.label[:span - 3].center(span - 2, "-")
            arrow = (body + ">") if a < b else ("<" + body)
            line = "".join(row[:lo]) + " " * (width // 2) + arrow
            lines.append("%8.1f " % (m.sent_at * 1000.0) + line)
        return "\n".join(lines)

    def summary(self) -> Dict[str, int]:
        """Signal counts by label kind (before any parenthesis)."""
        counts: Dict[str, int] = {}
        for m in self.messages:
            kind = m.label.split("(")[0]
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.messages)
