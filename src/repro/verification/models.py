"""The twelve signaling-path models of Sec. VIII-A.

"We modeled and checked 12 signaling paths: six paths with no flowlinks
and every possible combination of closeslots, openslots, and holdslots
at their ends, and six paths similar to the first six paths but with
one flowlink each."

Each model couples the Sec. V specification to the path type:

====== =========================================
 ends   temporal property
====== =========================================
 CC     ◇□ bothClosed
 CH     ◇□ bothClosed
 CO     ◇□ ¬bothFlowing
 HH     (◇□ bothClosed) ∨ (□◇ bothFlowing)
 HO     □◇ bothFlowing
 OO     □◇ bothFlowing
====== =========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple  # noqa: F401

from .kernel import QueueDef, SystemModel, SystemState
from .processes import (EndpointProcess, EndpointState, FlowlinkProcess,
                        LossyTunnelProcess, ResilientEndpointProcess,
                        CLOSED, FLOWING)

__all__ = ["PathModel", "PATH_TYPES", "build_model", "all_models",
           "all_model_specs", "both_closed", "both_flowing",
           "valid_endstate", "LOSSY_PROPERTIES", "build_lossy_model",
           "lossy_model_specs", "all_lossy_models"]

#: The six path types, as (left goal, right goal) with the property key.
PATH_TYPES: Dict[str, Tuple[str, str, str]] = {
    "CC": ("close", "close", "stability-closed"),
    "CH": ("close", "hold", "stability-closed"),
    "CO": ("close", "open", "stability-no-flow"),
    "HH": ("hold", "hold", "closed-or-flowing"),
    "HO": ("hold", "open", "recurrence-flowing"),
    "OO": ("open", "open", "recurrence-flowing"),
}

#: Properties checked for the lossy-tunnel variants.  With fault and
#: retransmission budgets both bounded (and retransmission exceeding
#: faults), the flowing paths *stabilize* — ``◇□ bothFlowing`` — which
#: is strictly stronger than the fault-free models' ``□◇``: after the
#: last fault and the last user modify, the path converges and stays
#: converged.
LOSSY_PROPERTIES: Dict[str, str] = {
    "CC": "stability-closed",
    "CH": "stability-closed",
    "CO": "stability-no-flow",
    "HH": "closed-or-flowing",
    "HO": "stability-flowing",
    "OO": "stability-flowing",
}


@dataclass
class PathModel:
    """A system model plus its specification metadata."""

    key: str                # e.g. "HO+link"
    system: SystemModel
    property_kind: str      # stability-closed / stability-no-flow /
    #                         recurrence-flowing / closed-or-flowing
    left_index: int         # process index of the left endpoint
    right_index: int
    has_flowlink: bool


# ----------------------------------------------------------------------
# the path-state predicates (model-checking form, Sec. VIII-A)
# ----------------------------------------------------------------------
def both_closed(left: EndpointState, right: EndpointState) -> bool:
    return left.slot == CLOSED and right.slot == CLOSED


def both_flowing(left: EndpointState, right: EndpointState) -> bool:
    """Lflowing ∧ Rflowing ∧ (LdescRcvd = RdescSent) ∧
    (RdescRcvd = LdescSent) ∧ (LselRcvd = LdescSent) ∧
    (RselRcvd = RdescSent) — the Sec. VIII-A history-variable form."""
    return (left.slot == FLOWING and right.slot == FLOWING
            and left.rcvd is not None and left.rcvd == right.sent
            and right.rcvd is not None and right.rcvd == left.sent
            and left.sel_rcvd is not None
            and left.sel_rcvd == left.sent
            and right.sel_rcvd is not None
            and right.sel_rcvd == right.sent)


def valid_endstate(state: SystemState, model: PathModel) -> bool:
    """"in any final state, each slot is closed or flowing"."""
    ok = ("closed", "flowing")
    left: EndpointState = state.procs[model.left_index]
    right: EndpointState = state.procs[model.right_index]
    if left.slot not in ok or right.slot not in ok:
        return False
    for fl in state.procs[model.left_index + 1:model.right_index]:
        if not hasattr(fl, "s1"):
            continue  # a lossy relay: no slots of its own
        if fl.s1 not in ok or fl.s2 not in ok:
            return False
    return True


# ----------------------------------------------------------------------
# model construction
# ----------------------------------------------------------------------
def build_model(path_type: str, with_flowlink=False,
                queue_capacity: int = 3,
                phase1_budget: int = 1,
                modify_budget: int = 1,
                max_versions: int = 3,
                flowlinks: Optional[int] = None) -> PathModel:
    """Build a path model.

    ``with_flowlink``/``flowlinks`` select the interior: 0 flowlinks
    (endpoints share one tunnel), 1 flowlink (the paper's second set of
    six models), or more — the paper judged Spin checks of two-flowlink
    paths "forbidding" (est. 900 Gb / 300 hours); our abstracted models
    make them feasible, so ``flowlinks=2`` is supported as the
    reproduction's extension experiment.
    """
    if flowlinks is None:
        flowlinks = 1 if with_flowlink else 0
    left_goal, right_goal, prop = PATH_TYPES[path_type]
    if flowlinks == 0:
        key = path_type
    elif flowlinks == 1:
        key = path_type + "+link"
    else:
        key = "%s+%dlinks" % (path_type, flowlinks)

    # Chain: L -- F_1 -- F_2 -- ... -- F_k -- R with one tunnel (queue
    # pair) between adjacent parties.  Queue layout, tunnel t in
    # [0, k]: queue 2t carries left-to-right, queue 2t+1 right-to-left.
    ep_kwargs = dict(phase1_budget=phase1_budget,
                     modify_budget=modify_budget,
                     max_versions=max_versions)
    processes: List = []
    queues: List[QueueDef] = []
    k = flowlinks
    left = EndpointProcess("L", left_goal, out_queue=0, initiator=True,
                           **ep_kwargs)
    processes.append(left)
    for i in range(k):
        # flowlink i sits between tunnel i and tunnel i+1; its side-1
        # input is queue 2i, outputs are 2i+1 (to the left) and
        # 2(i+1) (to the right).  Its box created tunnel i+1, so it is
        # the initiator there but not on tunnel i.
        processes.append(FlowlinkProcess("F%d" % (i + 1), in1=2 * i,
                                         out1=2 * i + 1,
                                         out2=2 * (i + 1)))
    right = EndpointProcess("R", right_goal, out_queue=2 * k + 1,
                            initiator=False, **ep_kwargs)
    processes.append(right)
    for t in range(k + 1):
        # left-to-right lane of tunnel t: received by party t+1
        queues.append(QueueDef("t%d->" % t, receiver=t + 1,
                               capacity=queue_capacity))
        # right-to-left lane of tunnel t: received by party t
        queues.append(QueueDef("t%d<-" % t, receiver=t,
                               capacity=queue_capacity))
    system = SystemModel(key, processes, queues)
    return PathModel(key, system, prop, left_index=0,
                     right_index=len(processes) - 1,
                     has_flowlink=k > 0)


def build_lossy_model(path_type: str, faults: int = 2,
                      retx: Optional[int] = None,
                      queue_capacity: int = 3,
                      phase1_budget: int = 1,
                      modify_budget: int = 1,
                      max_versions: int = 3) -> PathModel:
    """Build a lossy-tunnel variant of a no-flowlink path model.

    The endpoints' single tunnel is replaced by a
    :class:`~repro.verification.processes.LossyTunnelProcess` relay
    with a budget of ``faults`` drop/duplicate events, and the
    endpoints become
    :class:`~repro.verification.processes.ResilientEndpointProcess`
    with a budget of ``retx`` retransmissions each (default
    ``faults``: every loss notification triggers at most one charged
    re-send, and goal-level re-pushes of rejected opens are free, so a
    budget matching the fault budget dominates the loss — while
    ``retx=0`` provably breaks every path, see the degradation tests).

    These models are a deliberate extension beyond the paper's twelve —
    they carry ``~lossy`` keys and stay out of
    :func:`all_model_specs`, which the Sec. VIII-A reproduction pins to
    the original grid.
    """
    if retx is None:
        retx = faults
    left_goal, right_goal, _ = PATH_TYPES[path_type]
    prop = LOSSY_PROPERTIES[path_type]
    key = path_type + "~lossy"
    ep_kwargs = dict(phase1_budget=phase1_budget,
                     modify_budget=modify_budget,
                     max_versions=max_versions,
                     retx_budget=retx)
    # Queue layout: 0 = L→relay, 1 = relay→L, 2 = relay→R, 3 = R→relay.
    left = ResilientEndpointProcess("L", left_goal, out_queue=0,
                                    initiator=True, **ep_kwargs)
    relay = LossyTunnelProcess("T", in_left=0, in_right=3,
                               out_left=1, out_right=2, faults=faults)
    right = ResilientEndpointProcess("R", right_goal, out_queue=3,
                                     initiator=False, **ep_kwargs)
    queues = [
        QueueDef("L->T", receiver=1, capacity=queue_capacity),
        QueueDef("T->L", receiver=0, capacity=queue_capacity),
        QueueDef("T->R", receiver=2, capacity=queue_capacity),
        QueueDef("R->T", receiver=1, capacity=queue_capacity),
    ]
    system = SystemModel(key, [left, relay, right], queues)
    return PathModel(key, system, prop, left_index=0, right_index=2,
                     has_flowlink=False)


def lossy_model_specs() -> List[str]:
    """The lossy sweep grid: every path type, one lossy tunnel."""
    return list(PATH_TYPES)


def all_lossy_models(**kwargs) -> List[PathModel]:
    """The six lossy-tunnel models (robustness extension)."""
    return [build_lossy_model(path_type, **kwargs)
            for path_type in lossy_model_specs()]


def all_model_specs(flowlink_counts=(0, 1)) -> List[Tuple[str, int]]:
    """The sweep grid as picklable ``(path_type, flowlinks)`` specs, in
    report order: every path type at each flowlink count in turn.  The
    parallel sweep driver ships these (not built models) to workers."""
    return [(path_type, k)
            for k in flowlink_counts for path_type in PATH_TYPES]


def all_models(**kwargs) -> List[PathModel]:
    """The full 12-model sweep of Sec. VIII-A."""
    return [build_model(path_type, flowlinks=k, **kwargs)
            for path_type, k in all_model_specs()]
