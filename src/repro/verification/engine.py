"""High-throughput successor engine: interning + memoization.

The naive kernel (:meth:`repro.verification.kernel.SystemModel.successors`)
pays for every transition with nested-tuple hashing and a deep copy of
every queue.  This module removes that overhead with three ideas, none
of which change the semantics:

* **State interning.**  Each process-local state is interned to a small
  integer in a per-process-slot table, and each queue content (a tuple
  of messages) to a small integer in a per-queue-slot table.  A global
  state becomes a flat tuple of ints — ``(l_0 .. l_{np-1}, q_0 ..
  q_{nq-1})`` — whose hash/eq cost is a handful of machine words
  instead of a walk over nested tuples.  The visited set stores these
  int tuples only.

* **Transition memoization.**  ``receive(local, qi, msg)`` and
  ``internal_actions(local)`` are *pure* functions of their arguments
  (the :class:`~repro.verification.kernel.ProcessModel` contract), so
  their outcomes are cached keyed on interned ids.  Local-state domains
  are tiny while the global product is huge, so hit rates are
  enormous: each distinct ``(local, queue, message)`` triple is
  evaluated once per exploration no matter how many million global
  states share it.

* **Copy-light application.**  Applying an outcome copies the flat int
  tuple once and rewrites only the slots that changed (the acting
  process, the consumed queue, the sent-to queues).  Queue pops and
  pushes are themselves memoized per queue slot (``pop: cid -> (msg,
  cid')``; ``push: (cid, msg) -> cid' | blocked``), so steady-state
  exploration does no tuple surgery at all.

The engine produces exactly the successor order of the reference
kernel (receives in queue-index order, then internal actions in
process-index order, outcomes in the order the process returns them),
so state ids, state counts, and transition counts are identical to the
seed implementation's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .kernel import LocalState, Message, SystemModel, SystemState

__all__ = ["InternedEngine"]

#: ``push`` memo value meaning "send blocked: queue at capacity".
_BLOCKED = -1


class InternedEngine:
    """Interned-state successor generator for one :class:`SystemModel`.

    All intern tables and memo caches live on the instance, so one
    engine per exploration keeps memory bounded by the model's local
    state diversity (tiny) rather than its global product (huge).
    """

    def __init__(self, model: SystemModel):
        self.model = model
        processes = list(model.processes)
        self._processes = processes
        self._np = len(processes)
        self._nq = len(model.queues)
        self._prange = tuple(range(self._np))
        self._qrange = tuple(range(self._nq))
        self._receiver = [q.receiver for q in model.queues]
        self._capacity = [q.capacity for q in model.queues]

        # message interning (shared across all queues)
        self._msg_ids: Dict[Message, int] = {}
        self._msgs: List[Message] = []

        # per-process-slot local-state tables and memo caches
        self._loc_ids: List[Dict[LocalState, int]] = [
            {} for _ in processes]
        self._locs: List[List[LocalState]] = [[] for _ in processes]
        self._can_recv: List[List[bool]] = [[] for _ in processes]
        #: lid -> encoded internal outcomes (None = not yet computed)
        self._imemo: List[List[Optional[tuple]]] = [[] for _ in processes]
        #: (lid, qi, mid) -> encoded receive outcomes
        self._rmemo: List[Dict[tuple, tuple]] = [{} for _ in processes]

        # per-queue-slot content tables (id 0 is always the empty queue)
        self._q_ids: List[Dict[tuple, int]] = [
            {(): 0} for _ in model.queues]
        self._q_contents: List[List[tuple]] = [[()] for _ in model.queues]
        #: cid -> decoded tuple of raw messages (for SystemState views)
        self._q_decoded: List[List[tuple]] = [[()] for _ in model.queues]
        #: cid -> (head mid, tail cid)
        self._pop_memo: List[Dict[int, Tuple[int, int]]] = [
            {} for _ in model.queues]
        #: (cid, mid) -> new cid, or _BLOCKED when the push overflows
        self._push_memo: List[Dict[Tuple[int, int], int]] = [
            {} for _ in model.queues]

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def _intern_local(self, pi: int, local: LocalState) -> int:
        ids = self._loc_ids[pi]
        lid = ids.get(local)
        if lid is None:
            lid = len(ids)
            ids[local] = lid
            self._locs[pi].append(local)
            self._can_recv[pi].append(
                self._processes[pi].can_receive(local))
            self._imemo[pi].append(None)
        return lid

    def _intern_msg(self, msg: Message) -> int:
        ids = self._msg_ids
        mid = ids.get(msg)
        if mid is None:
            mid = len(ids)
            ids[msg] = mid
            self._msgs.append(msg)
        return mid

    def _intern_qcontent(self, qi: int, content: tuple) -> int:
        ids = self._q_ids[qi]
        cid = ids.get(content)
        if cid is None:
            cid = len(ids)
            ids[content] = cid
            self._q_contents[qi].append(content)
            msgs = self._msgs
            self._q_decoded[qi].append(
                tuple(msgs[mid] for mid in content))
        return cid

    def _encode_outcomes(self, pi: int, outcomes) -> tuple:
        """Encode raw ``(new_local, [(qi, msg), ...])`` outcomes into
        interned ``(new_lid, ((qi, mid), ...))`` form."""
        intern_local = self._intern_local
        intern_msg = self._intern_msg
        return tuple(
            (intern_local(pi, new_local),
             tuple((qi, intern_msg(msg)) for qi, msg in sends))
            for new_local, sends in outcomes)

    # ------------------------------------------------------------------
    # the packed-state interface
    # ------------------------------------------------------------------
    def initial_key(self) -> tuple:
        """The interned initial global state."""
        locals_part = tuple(
            self._intern_local(pi, p.initial())
            for pi, p in enumerate(self._processes))
        return locals_part + (0,) * self._nq

    def decode(self, key: tuple) -> SystemState:
        """Materialize a packed key back into a :class:`SystemState`."""
        np_ = self._np
        locs = self._locs
        q_decoded = self._q_decoded
        return SystemState(
            tuple(locs[i][key[i]] for i in self._prange),
            tuple(q_decoded[i][key[np_ + i]] for i in self._qrange))

    def decode_local(self, key: tuple, pi: int) -> LocalState:
        """The raw local state of process ``pi`` in packed ``key``."""
        return self._locs[pi][key[pi]]

    def expand(self, key: tuple) -> List[tuple]:
        """All successor keys of ``key``, in reference-kernel order
        (may contain duplicates; callers dedup per source state)."""
        np_ = self._np
        out: List[tuple] = []
        receiver = self._receiver
        can_recv = self._can_recv
        pop_memo = self._pop_memo
        q_contents = self._q_contents
        rmemo = self._rmemo
        imemo = self._imemo
        locs = self._locs
        msgs = self._msgs
        processes = self._processes
        apply_ = self._apply

        # receives, in queue-index order
        for qi in self._qrange:
            cid = key[np_ + qi]
            if not cid:
                continue
            pi = receiver[qi]
            lid = key[pi]
            if not can_recv[pi][lid]:
                continue
            pm = pop_memo[qi]
            popped = pm.get(cid)
            if popped is None:
                content = q_contents[qi][cid]
                popped = (content[0],
                          self._intern_qcontent(qi, content[1:]))
                pm[cid] = popped
            mid, tail_cid = popped
            rm = rmemo[pi]
            rkey = (lid, qi, mid)
            outcomes = rm.get(rkey)
            if outcomes is None:
                outcomes = self._encode_outcomes(
                    pi, processes[pi].receive(locs[pi][lid], qi,
                                              msgs[mid]))
                rm[rkey] = outcomes
            for new_lid, sends in outcomes:
                nkey = apply_(key, pi, new_lid, qi, tail_cid, sends)
                if nkey is not None:
                    out.append(nkey)

        # internal actions, in process-index order
        for pi in self._prange:
            lid = key[pi]
            acts = imemo[pi][lid]
            if acts is None:
                acts = self._encode_outcomes(
                    pi, processes[pi].internal_actions(locs[pi][lid]))
                imemo[pi][lid] = acts
            for new_lid, sends in acts:
                nkey = apply_(key, pi, new_lid, -1, 0, sends)
                if nkey is not None:
                    out.append(nkey)
        return out

    def _apply(self, key: tuple, pi: int, new_lid: int, cqi: int,
               tail_cid: int, sends: tuple) -> Optional[tuple]:
        """Copy-light outcome application: rewrite only the changed
        slots of the flat key.  Returns ``None`` when a send blocks
        (bounded queue at capacity — Promela semantics)."""
        np_ = self._np
        lst = list(key)
        lst[pi] = new_lid
        if cqi >= 0:
            lst[np_ + cqi] = tail_cid
        if sends:
            push_memo = self._push_memo
            q_contents = self._q_contents
            capacity = self._capacity
            for qi, mid in sends:
                slot = np_ + qi
                cid = lst[slot]
                pm = push_memo[qi]
                ncid = pm.get((cid, mid))
                if ncid is None:
                    content = q_contents[qi][cid]
                    if len(content) >= capacity[qi]:
                        ncid = _BLOCKED
                    else:
                        ncid = self._intern_qcontent(
                            qi, content + (mid,))
                    pm[(cid, mid)] = ncid
                if ncid < 0:
                    return None
                lst[slot] = ncid
        return tuple(lst)

    # ------------------------------------------------------------------
    # observability (used by tests and BENCH reporting)
    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, int]:
        """Sizes of the intern tables and memo caches."""
        return {
            "messages": len(self._msgs),
            "local_states": sum(len(t) for t in self._locs),
            "queue_contents": sum(len(t) for t in self._q_contents),
            "receive_entries": sum(len(m) for m in self._rmemo),
            "internal_entries": sum(
                1 for per in self._imemo for e in per if e is not None),
            "pop_entries": sum(len(m) for m in self._pop_memo),
            "push_entries": sum(len(m) for m in self._push_memo),
        }
