"""``python -m repro sweep`` — the parallel Sec. VIII-A model sweep
from the command line.

Usage::

    python -m repro sweep                        # the 12-model sweep
    python -m repro sweep --two                  # + two-flowlink models
    python -m repro sweep --jobs 4               # worker count
    python -m repro sweep --max-states 20000     # smoke bound
                                                 # (over-budget models
                                                 # come back truncated)
    python -m repro sweep --json results.json    # machine-readable
    python -m repro sweep --trace-json sweep.json
                                                 # Chrome trace of the
                                                 # sweep's execution

The ``--trace-json`` export lays the models out serially on one track
per path type, each an ``"X"`` slice as wide as its wall-clock
``elapsed`` — a profile of where the sweep spends its time.  Unlike the
app traces of ``python -m repro trace``, it is clocked on wall time and
therefore *not* byte-reproducible.

Exit status: 0 when every model passed (no safety/spec failure, no
truncation), 1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, TextIO

from ..tools.bench import write_text as _write_text
from .models import PATH_TYPES
from .report import VerificationResult, blowup_table, format_results
from .sweep import default_jobs, run_jobs

__all__ = ["build_parser", "sweep_trace", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Fan the Sec. VIII-A verification models across a "
                    "worker pool and report the results table")
    parser.add_argument("--two", action="store_true",
                        help="include the two-flowlink extension models")
    parser.add_argument("--path-type", action="append", default=None,
                        metavar="NAME",
                        help="restrict to this path type (repeatable; "
                             "default: all of %s)" % ", ".join(PATH_TYPES))
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker count (default: one per core)")
    parser.add_argument("--max-states", type=int, default=2_000_000,
                        metavar="N",
                        help="per-model state bound (default 2000000)")
    parser.add_argument("--max-seconds", type=float, default=None,
                        metavar="S",
                        help="per-model wall-clock bound")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write results as JSON to PATH "
                             "('-' for stdout)")
    parser.add_argument("--trace-json", default=None, metavar="PATH",
                        help="write a Chrome trace_event profile of the "
                             "sweep to PATH")
    return parser


def sweep_trace(results: List[VerificationResult]) -> Dict[str, Any]:
    """Chrome ``trace_event`` payload profiling one sweep: models laid
    out serially in report order, one track per path type, slice width =
    wall-clock ``elapsed``."""
    trace_events: List[Dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
         "args": {"name": "verification sweep"}}]
    tids: Dict[str, int] = {}
    body: List[Dict[str, Any]] = []
    cursor = 0.0
    for r in results:
        track = r.key.split("+")[0]
        tid = tids.get(track)
        if tid is None:
            tid = tids[track] = len(tids) + 1
            trace_events.append({
                "ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
                "args": {"name": track}})
        body.append({
            "ph": "X", "cat": "model", "name": r.key, "pid": 1,
            "tid": tid, "ts": round(cursor * 1e6, 3),
            "dur": round(r.elapsed * 1e6, 3),
            "args": {
                "property": r.property_kind,
                "states": r.states,
                "transitions": r.transitions,
                "safety_ok": r.safety_ok,
                "property_ok": r.property_ok,
                "truncated": r.truncated,
            }})
        cursor += r.elapsed
    trace_events.extend(body)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms",
            "otherData": {"models": len(results),
                          "total_elapsed": round(cursor, 6)}}


def _results_json(results: List[VerificationResult]) -> List[Dict[str, Any]]:
    return [{
        "key": r.key,
        "property_kind": r.property_kind,
        "states": r.states,
        "transitions": r.transitions,
        "elapsed": r.elapsed,
        "memory_proxy": r.memory_proxy,
        "safety_ok": r.safety_ok,
        "property_ok": r.property_ok,
        "truncated": r.truncated,
        "violation_state": r.violation_state,
    } for r in results]


def main(argv: Optional[List[str]] = None,
         out: Optional[TextIO] = None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    path_types = args.path_type
    if path_types is not None:
        unknown = [p for p in path_types if p not in PATH_TYPES]
        if unknown:
            parser.error("unknown path type(s) %s (known: %s)"
                         % (", ".join(unknown), ", ".join(PATH_TYPES)))
    counts = (0, 1, 2) if args.two else (0, 1)
    jobs = default_jobs(flowlink_counts=counts, path_types=path_types,
                        max_states=args.max_states,
                        max_seconds=args.max_seconds)
    results = run_jobs(jobs, processes=args.jobs)
    if args.json == "-":
        print(json.dumps(_results_json(results), indent=2,
                         sort_keys=True), file=out)
    else:
        print(format_results(results), file=out)
        table = blowup_table(results)
        if table:
            print("\nflowlink blow-up factors:", file=out)
            for key, f in sorted(table.items()):
                print("    %-4s memory x%-7.1f time x%.1f"
                      % (key, f["memory_factor"], f["time_factor"]),
                      file=out)
        if args.json:
            _write_text(args.json, json.dumps(_results_json(results),
                                              indent=2,
                                              sort_keys=True) + "\n")
    if args.trace_json:
        payload = json.dumps(sweep_trace(results), indent=2,
                             sort_keys=True) + "\n"
        if args.trace_json == "-":
            out.write(payload)
        else:
            _write_text(args.trace_json, payload)
    return 0 if all(r.ok for r in results) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
