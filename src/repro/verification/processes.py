"""Model processes: path-endpoint goal objects and the flowlink.

These mirror the implementation classes
(:mod:`repro.core.goals`, :mod:`repro.core.flowlink`) at the level of
abstraction the paper's Promela models use:

* descriptors are reduced to version identifiers ``(origin, k)``; a
  selector is reduced to the version it answers — exactly the
  history-variable form of ``bothFlowing`` used for model checking in
  Sec. VIII-A;
* each endpoint goal process has "two phases.  In a goal object's
  initial phase, the behavior of the slot ... is allowed to be
  completely nondeterministic ...  At some nondeterministically chosen
  point, the goal object switches permanently to a second phase in
  which it behaves according to the specified goal";
* the initial phase has a *bounded action budget* (and receives block
  once it is spent, forcing the switch).  This makes "the goal objects
  eventually start their real work" a structural property of the model
  instead of a fairness assumption, so the ◇□/□◇ checks are pure
  cycle analyses (see DESIGN.md);
* users at endpoints may ``modify`` a bounded number of times while
  flowing (fresh descriptor versions), which is what makes the
  recurrence properties non-trivial.

The lossy-tunnel variants model signaling over an unreliable network:
:class:`LossyTunnelProcess` is a relay with a bounded *fault budget*
that may nondeterministically drop or duplicate each signal it carries,
and :class:`ResilientEndpointProcess` extends the endpoint with the
robust-mode slot behaviour of :mod:`repro.protocol.slot` — a bounded
*retransmission budget* spent re-sending ``open``/``close`` while
pending and re-``describe`` while unanswered, plus idempotent
absorption of the duplicates retransmission creates.  With the
retransmission budget exceeding the fault budget, the stability
properties (``◇□ bothClosed`` / ``◇□ bothFlowing``) survive loss.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from .kernel import LocalState, Message, ModelError, Outcome, ProcessModel

__all__ = ["Ver", "EndpointState", "EndpointProcess",
           "FlowlinkState", "FlowlinkProcess",
           "ResilientEndpointState", "ResilientEndpointProcess",
           "LossyTunnelState", "LossyTunnelProcess",
           "CLOSED", "OPENING", "OPENED", "FLOWING", "CLOSING"]

Ver = Tuple[str, int]

CLOSED, OPENING, OPENED, FLOWING, CLOSING = (
    "closed", "opening", "opened", "flowing", "closing")
LIVE = (OPENING, OPENED, FLOWING)


class EndpointState(NamedTuple):
    phase: int                 # 1 = nondeterministic, 2 = goal
    budget: int                # phase-1 actions remaining
    slot: str
    sent: Optional[Ver]        # last descriptor version sent
    rcvd: Optional[Ver]        # last descriptor version received
    sel_rcvd: Optional[Ver]    # version answered by last selector rcvd
    next_ver: int              # next fresh local version number
    modifies: int              # phase-2 modify events remaining


class EndpointProcess(ProcessModel):
    """A path endpoint: protocol slot + goal object + (for open/hold)
    a user with a bounded budget of ``modify`` events."""

    def __init__(self, origin: str, goal: str, out_queue: int,
                 initiator: bool, phase1_budget: int = 1,
                 modify_budget: int = 1, max_versions: int = 3):
        if goal not in ("open", "close", "hold"):
            raise ValueError("unknown goal %r" % goal)
        self.origin = origin
        self.goal = goal
        self.out = out_queue
        self.initiator = initiator
        self.phase1_budget = phase1_budget
        self.modify_budget = modify_budget
        self.max_versions = max_versions
        self.name = "%s(%s)" % (origin, goal)
        self._recv_dispatch = {
            CLOSED: self._recv_closed, OPENING: self._recv_opening,
            OPENED: self._recv_opened, FLOWING: self._recv_flowing,
            CLOSING: self._recv_closing,
        }

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _ver(self, st: EndpointState) -> Tuple[Ver, EndpointState]:
        """The endpoint's current descriptor version (allocate v0 on
        first use; stable thereafter until a modify).  Once the version
        budget is spent, later episodes reuse the last version — this
        keeps re-open loops (openslot vs closeslot) finite-state."""
        if st.sent is not None:
            return st.sent, st
        if st.next_ver >= self.max_versions:
            return (self.origin, self.max_versions - 1), st
        ver = (self.origin, st.next_ver)
        return ver, st._replace(next_ver=st.next_ver + 1)

    def _fresh(self, st: EndpointState) -> Optional[Tuple[Ver,
                                                          EndpointState]]:
        if st.next_ver >= self.max_versions:
            return None
        ver = (self.origin, st.next_ver)
        return ver, st._replace(next_ver=st.next_ver + 1)

    @staticmethod
    def _closed(st: EndpointState) -> EndpointState:
        return st._replace(slot=CLOSED, sent=None, rcvd=None, sel_rcvd=None)

    def _send_open(self, st: EndpointState) -> Outcome:
        ver, st = self._ver(st)
        st = st._replace(slot=OPENING, sent=ver)
        return st, [(self.out, ("open", ver))]

    def _accept(self, st: EndpointState) -> Outcome:
        """oack + select in sequence (Fig. 9)."""
        assert st.rcvd is not None
        ver, st = self._ver(st)
        st = st._replace(slot=FLOWING, sent=ver)
        return st, [(self.out, ("oack", ver)),
                    (self.out, ("select", st.rcvd))]

    def _redescribe(self, st: EndpointState) -> Outcome:
        """describe ourselves + answer the current descriptor; what a
        goal taking over a flowing slot does."""
        ver, st = self._ver(st)
        st = st._replace(sent=ver)
        sends = [(self.out, ("describe", ver))]
        if st.rcvd is not None:
            sends.append((self.out, ("select", st.rcvd)))
        return st, sends

    # ------------------------------------------------------------------
    # kernel interface
    # ------------------------------------------------------------------
    def initial(self) -> EndpointState:
        return EndpointState(phase=1, budget=self.phase1_budget,
                             slot=CLOSED, sent=None, rcvd=None,
                             sel_rcvd=None, next_ver=0,
                             modifies=self.modify_budget)

    def can_receive(self, st: EndpointState) -> bool:
        # With the phase-1 budget spent, the only move is the switch.
        return st.phase == 2 or st.budget > 0

    # -- receives ----------------------------------------------------------
    def receive(self, st: EndpointState, qi: int,
                msg: Message) -> List[Outcome]:
        kind = msg[0]
        outcomes = self._recv_dispatch[st.slot](st, kind, msg)
        if st.phase == 1:
            outcomes = [(o[0]._replace(budget=st.budget - 1), o[1])
                        for o in outcomes]
        return outcomes

    def _recv_closed(self, st, kind, msg) -> List[Outcome]:
        if kind == "open":
            st = st._replace(slot=OPENED, rcvd=msg[1], sel_rcvd=None)
            return self._react_opened(st)
        raise ModelError("%s: %s while closed" % (self.name, kind))

    def _recv_opening(self, st, kind, msg) -> List[Outcome]:
        if kind == "open":
            if self.initiator:
                return [(st, [])]  # we win the race; ignore
            st = st._replace(slot=OPENED, rcvd=msg[1])
            return self._react_opened(st)
        if kind == "oack":
            st = st._replace(slot=FLOWING, rcvd=msg[1])
            if st.phase == 1:
                # nondeterministic: answer with a selector, or not yet
                return [(st, [(self.out, ("select", msg[1]))]), (st, [])]
            return [(st, [(self.out, ("select", msg[1]))])]
        if kind == "close":
            st = self._closed(st)
            sends = [(self.out, ("closeack",))]
            if st.phase == 2 and self.goal == "open":
                # rejection: "it sends open again"
                st2, more = self._send_open(st)
                return [(st2, sends + more)]
            return [(st, sends)]
        raise ModelError("%s: %s while opening" % (self.name, kind))

    def _recv_opened(self, st, kind, msg) -> List[Outcome]:
        if kind == "close":
            st = self._closed(st)
            sends = [(self.out, ("closeack",))]
            if st.phase == 2 and self.goal == "open":
                # The offer was withdrawn before we answered; an
                # openslot pushes again.
                st2, more = self._send_open(st)
                return [(st2, sends + more)]
            return [(st, sends)]
        raise ModelError("%s: %s while opened" % (self.name, kind))

    def _recv_flowing(self, st, kind, msg) -> List[Outcome]:
        if kind == "describe":
            st = st._replace(rcvd=msg[1])
            if st.phase == 1:
                return [(st, [(self.out, ("select", msg[1]))]), (st, [])]
            return [(st, [(self.out, ("select", msg[1]))])]
        if kind == "select":
            return [(st._replace(sel_rcvd=msg[1]), [])]
        if kind == "close":
            st = self._closed(st)
            sends = [(self.out, ("closeack",))]
            if st.phase == 2 and self.goal == "open":
                st2, more = self._send_open(st)
                return [(st2, sends + more)]
            return [(st, sends)]
        raise ModelError("%s: %s while flowing" % (self.name, kind))

    def _recv_closing(self, st, kind, msg) -> List[Outcome]:
        if kind == "close":
            return [(st, [(self.out, ("closeack",))])]
        if kind == "closeack":
            st = self._closed(st)
            if st.phase == 2 and self.goal == "open":
                return [self._send_open(st)]
            return [(st, [])]
        if kind in ("open", "oack", "describe", "select"):
            # Drained: the peer sent these before seeing our close (an
            # open here crossed with our close, which rejects it).
            return [(st, [])]
        raise ModelError("%s: %s while closing" % (self.name, kind))

    def _react_opened(self, st) -> List[Outcome]:
        """Goal reactions to a just-received open."""
        if st.phase == 1:
            # accept, reject, or sit on it — the user's whim.
            reject = st._replace(slot=CLOSING)
            return [self._accept(st),
                    (reject, [(self.out, ("close",))]),
                    (st, [])]
        if self.goal == "close":
            return [(st._replace(slot=CLOSING), [(self.out, ("close",))])]
        return [self._accept(st)]  # open and hold both accept

    # -- internal actions ------------------------------------------------------
    def internal_actions(self, st: EndpointState) -> List[Outcome]:
        actions: List[Outcome] = []
        if st.phase == 1:
            # the permanent switch to goal behaviour, with the goal
            # object's attach-time initiative
            actions.append(self._switch(st))
            if st.budget > 0:
                actions.extend(self._phase1_actions(st))
        else:
            # a user modify while flowing (open/hold ends only)
            if st.slot == FLOWING and st.modifies > 0 \
                    and self.goal != "close":
                fresh = self._fresh(st)
                if fresh is not None:
                    ver, st2 = fresh
                    st2 = st2._replace(sent=ver,
                                       modifies=st.modifies - 1)
                    actions.append(
                        (st2, [(self.out, ("describe", ver))]))
        return actions

    def _switch(self, st: EndpointState) -> Outcome:
        st = st._replace(phase=2, budget=0)
        if self.goal == "close":
            if st.slot in LIVE:
                return (st._replace(slot=CLOSING),
                        [(self.out, ("close",))])
            return (st, [])
        if self.goal == "open":
            if st.slot == CLOSED:
                return self._send_open(st)
            if st.slot == OPENED:
                return self._accept(st)
            if st.slot == FLOWING:
                return self._redescribe(st)
            return (st, [])  # opening/closing: wait
        # hold
        if st.slot == OPENED:
            return self._accept(st)
        if st.slot == FLOWING:
            return self._redescribe(st)
        return (st, [])

    def _phase1_actions(self, st: EndpointState) -> List[Outcome]:
        """Arbitrary protocol-legal initiatives, each costing budget."""
        spend = lambda o: (o[0]._replace(budget=st.budget - 1), o[1])
        actions: List[Outcome] = []
        if st.slot == CLOSED:
            actions.append(spend(self._send_open(st)))
        if st.slot == OPENED:
            actions.append(spend(self._accept(st)))
            actions.append(spend((st._replace(slot=CLOSING),
                                  [(self.out, ("close",))])))
        if st.slot == FLOWING:
            fresh = self._fresh(st)
            if fresh is not None:
                ver, st2 = fresh
                actions.append(spend((st2._replace(sent=ver),
                                      [(self.out, ("describe", ver))])))
        if st.slot in LIVE:
            actions.append(spend((st._replace(slot=CLOSING),
                                  [(self.out, ("close",))])))
        return actions


class FlowlinkState(NamedTuple):
    s1: str
    s2: str
    c1: Optional[Ver]      # cached descriptor received on side 1
    c2: Optional[Ver]
    utd1: bool             # side 1 has been sent side 2's current desc
    utd2: bool
    re1: bool              # reopen side 1 once its close completes
    re2: bool
    plc: int               # placeholder descriptor versions minted


class FlowlinkProcess(ProcessModel):
    """The flowlink model: two protocol slots plus the Sec. VII logic
    (cached descriptors, ``utd`` flags, state matching, selector
    freshness filtering).

    ``out1``/``out2`` are the queue indices toward sides 1/2; receives
    arrive with a queue index that the system maps to a side via
    ``in1``.  ``initiator2`` reflects that the flowlink's box created
    the second tunnel's channel (it wins open/open races there) but not
    the first's.
    """

    def __init__(self, origin: str, in1: int, out1: int, out2: int,
                 max_placeholders: int = 2):
        self.origin = origin
        self.in1 = in1
        self.out1 = out1
        self.out2 = out2
        self.max_placeholders = max_placeholders
        self.name = "%s(link)" % origin

    def initial(self) -> FlowlinkState:
        return FlowlinkState(CLOSED, CLOSED, None, None,
                             False, False, False, False, 0)

    # -- tuple plumbing -------------------------------------------------------
    def _get(self, st: FlowlinkState, side: int, field: str):
        return getattr(st, "%s%d" % (field, side))

    def _set(self, st: FlowlinkState, side: int, **fields) -> FlowlinkState:
        return st._replace(**{"%s%d" % (k, side): v
                              for k, v in fields.items()})

    def _out(self, side: int) -> int:
        return self.out1 if side == 1 else self.out2

    def _is_initiator(self, side: int) -> bool:
        return side == 2  # the flowlink's box created tunnel 2

    # -- the work function (Sec. VII reconciliation) -----------------------------
    def _work(self, st: FlowlinkState,
              sends: List[Tuple[int, Message]]) -> FlowlinkState:
        for side in (1, 2):
            other = 3 - side
            state = self._get(st, side, "s")
            peer_state = self._get(st, other, "s")
            peer_cached = self._get(st, other, "c")
            if self._get(st, side, "re") and state == CLOSED:
                st = self._set(st, side, re=False)
                if peer_state in LIVE:
                    st = self._open_through(st, side, sends)
                    state = self._get(st, side, "s")
            if state == OPENED and peer_cached is not None:
                sends.append((self._out(side), ("oack", peer_cached)))
                st = self._set(st, side, s=FLOWING, utd=True)
                state = FLOWING
            if state == FLOWING and not self._get(st, side, "utd") \
                    and peer_cached is not None:
                sends.append((self._out(side), ("describe", peer_cached)))
                st = self._set(st, side, utd=True)
        return st

    def _open_through(self, st: FlowlinkState, side: int,
                      sends: List[Tuple[int, Message]]) -> FlowlinkState:
        other = 3 - side
        peer_cached = self._get(st, other, "c")
        if peer_cached is not None:
            ver = peer_cached
            st = self._set(st, side, utd=True)
        else:
            if st.plc >= self.max_placeholders:
                # placeholder budget exhausted: reuse the last one
                ver = (self.origin, self.max_placeholders - 1)
            else:
                ver = (self.origin, st.plc)
                st = st._replace(plc=st.plc + 1)
            st = self._set(st, side, utd=False)
        sends.append((self._out(side), ("open", ver)))
        return self._set(st, side, s=OPENING)

    # -- receives ---------------------------------------------------------------
    def receive(self, st: FlowlinkState, qi: int,
                msg: Message) -> List[Outcome]:
        side = 1 if qi == self.in1 else 2
        other = 3 - side
        kind = msg[0]
        state = self._get(st, side, "s")
        sends: List[Tuple[int, Message]] = []

        if state == CLOSED:
            if kind != "open":
                raise ModelError("%s: %s on closed side %d"
                                 % (self.name, kind, side))
            st = self._set(st, side, s=OPENED, c=msg[1])
            st = self._handle_open(st, side, sends)
        elif state == OPENING:
            if kind == "open":
                if self._is_initiator(side):
                    return [(st, [])]  # race won; ignore
                st = self._set(st, side, s=OPENED, c=msg[1])
                st = self._handle_open(st, side, sends)
            elif kind == "oack":
                st = self._set(st, side, s=FLOWING, c=msg[1])
                st = self._set(st, other, utd=False)
            elif kind == "close":
                sends.append((self._out(side), ("closeack",)))
                st = self._close_side(st, side, sends)
            else:
                raise ModelError("%s: %s while opening side %d"
                                 % (self.name, kind, side))
        elif state == OPENED:
            if kind == "close":
                sends.append((self._out(side), ("closeack",)))
                st = self._close_side(st, side, sends)
            else:
                raise ModelError("%s: %s while opened side %d"
                                 % (self.name, kind, side))
        elif state == FLOWING:
            if kind == "describe":
                st = self._set(st, side, c=msg[1])
                st = self._set(st, other, utd=False)
            elif kind == "select":
                return [self._forward_select(st, side, msg)]
            elif kind == "close":
                sends.append((self._out(side), ("closeack",)))
                st = self._close_side(st, side, sends)
            else:
                raise ModelError("%s: %s while flowing side %d"
                                 % (self.name, kind, side))
        elif state == CLOSING:
            if kind == "close":
                sends.append((self._out(side), ("closeack",)))
            elif kind == "closeack":
                st = self._set(st, side, s=CLOSED, c=None)
            elif kind in ("open", "oack", "describe", "select"):
                return [(st, [])]  # drained (open = crossing-open case)
            else:
                raise ModelError("%s: %s while closing side %d"
                                 % (self.name, kind, side))
        st = self._work(st, sends)
        return [(st, sends)]

    def _handle_open(self, st: FlowlinkState, side: int,
                     sends: List[Tuple[int, Message]]) -> FlowlinkState:
        """FlowLink.goal_receive(Open): forward the liveness."""
        other = 3 - side
        st = self._set(st, other, utd=False)
        other_state = self._get(st, other, "s")
        if other_state == CLOSED:
            st = self._open_through(st, other, sends)
        elif other_state == CLOSING:
            st = self._set(st, other, re=True)
        return st

    def _close_side(self, st: FlowlinkState, side: int,
                    sends: List[Tuple[int, Message]]) -> FlowlinkState:
        """A close arrived on ``side`` (already closeacked): propagate."""
        other = 3 - side
        st = self._set(st, side, s=CLOSED, c=None, utd=False)
        st = self._set(st, other, utd=False)
        if self._get(st, other, "s") in LIVE:
            sends.append((self._out(other), ("close",)))
            st = self._set(st, other, s=CLOSING)
        return st

    def _forward_select(self, st: FlowlinkState, side: int,
                        msg: Message) -> Outcome:
        other = 3 - side
        fresh = (self._get(st, other, "s") == FLOWING
                 and self._get(st, other, "c") == msg[1])
        if fresh:
            return (st, [(self._out(other), msg)])
        return (st, [])  # obsolete selector: discarded


# ======================================================================
# lossy-tunnel variants (robust mode, DESIGN.md §7)
# ======================================================================
class ResilientEndpointState(NamedTuple):
    """:class:`EndpointState` plus the retransmission budget.  Field
    order matches the base so the inherited ``_replace``-based helpers
    work unchanged."""

    phase: int
    budget: int
    slot: str
    sent: Optional[Ver]
    rcvd: Optional[Ver]
    sel_rcvd: Optional[Ver]
    next_ver: int
    modifies: int
    retx: int                  # retransmissions remaining


class ResilientEndpointProcess(EndpointProcess):
    """A path endpoint whose slot runs in robust mode.

    Mirrors :class:`repro.protocol.slot.Slot` with a
    :class:`~repro.protocol.slot.RetransmitPolicy`, with one standard
    model-checking abstraction: instead of a free-running timer
    (which would let the adversarial scheduler burn the whole budget
    on spurious retransmissions *before* the loss happens, and which
    multiplies the state space by every retransmit interleaving), the
    lossy relay tells the sender which signal it ate via a ``("lost",
    signal)`` notification — the image of "the retransmission timer
    fires for exactly the signals that need it".  This is how Promela
    models of ARQ protocols use the ``timeout`` keyword: retransmit
    only when the channel has actually lost the message.  Backoff is
    a timing concern and has no image in an untimed model.

    On a loss notification the endpoint re-sends the *current* form of
    the signal if it is still relevant (pending ``open``/``close``,
    or the ``oack``/``describe``/``select``/``closeack`` its present
    state still owes the peer), charging one unit of the ``retx``
    budget; a notification for a signal the endpoint has moved past is
    dropped free.  Each relay fault costs the victim at most one
    re-send, so with ``retx > faults`` the budget never exhausts and
    the runtime's give-up path stays unreachable — which is the
    convergence theorem the lossy models check.

    Duplicates created by the relay are absorbed idempotently: a
    ``close`` in *closed* is re-acked, a duplicate ``open`` of the
    accepted descriptor is re-``oack``\\ ed, and stale acks are dropped
    — exactly the runtime's robust-mode dedup, so a
    :class:`ModelError` is never raised under loss.
    """

    def __init__(self, origin: str, goal: str, out_queue: int,
                 initiator: bool, retx_budget: int = 3, **kwargs):
        super().__init__(origin, goal, out_queue, initiator, **kwargs)
        self.retx_budget = retx_budget
        self.name = "%s(%s,retx=%d)" % (origin, goal, retx_budget)

    def initial(self) -> ResilientEndpointState:
        base = super().initial()
        return ResilientEndpointState(*base, retx=self.retx_budget)

    # -- loss notifications: the retransmission timer ----------------------
    def receive(self, st, qi: int, msg: Message) -> List[Outcome]:
        if msg[0] == "lost":
            return self._recv_lost(st, msg[1])
        if msg[0] == "rejected":
            return self._recv_rejected(st, msg[1])
        return super().receive(st, qi, msg)

    def _recv_lost(self, st, lost: Message) -> List[Outcome]:
        """The network ate ``lost``; re-send its current form if our
        state still owes the peer that signal, charging the ``retx``
        budget.  Re-sends carry the *present* payload (descriptor
        versions may have moved on since the lost copy), matching the
        runtime, whose retransmit timer snapshots nothing."""
        kind = lost[0]
        resend: Optional[Message] = None
        if kind == "open" and st.slot == OPENING and st.sent == lost[1]:
            # version match pins the episode: a notification for an
            # earlier incarnation's open (we closed and re-opened since)
            # is not ours to retransmit
            resend = ("open", st.sent)
        elif kind == "close" and st.slot == CLOSING:
            resend = ("close",)
        elif kind == "closeack":
            # always re-ack: we only ever sent a closeack in answer to
            # a close, and the closer retransmits until acked, whatever
            # we have moved on to (re-opened, crossing-close, ...); a
            # stray closeack is absorbed by the robust receives
            resend = ("closeack",)
        elif kind == "oack" and st.slot == FLOWING and st.sent is not None:
            resend = ("oack", st.sent)
        elif kind == "describe" and st.slot == FLOWING \
                and st.sent is not None:
            resend = ("describe", st.sent)
        elif kind == "select" and st.slot == FLOWING \
                and st.rcvd is not None:
            resend = ("select", st.rcvd)
        if resend is None or st.retx <= 0:
            return [(st, [])]  # moved past it (or budget gone: give up)
        return [(st._replace(retx=st.retx - 1), [(self.out, resend)])]

    def _recv_rejected(self, st, lost: Message) -> List[Outcome]:
        """The peer consumed our ``open`` without effect (it crossed a
        close, or landed in a stale flowing view).  Re-push it if it is
        still our pending episode.  Unlike a network loss this costs no
        budget: it is the goal-level "it sends open again" of the
        paper's openslot, free in the fault-free models too — and in
        the CO rejection loop it recurs forever."""
        if lost[0] == "open" and st.slot == OPENING and st.sent == lost[1]:
            return [(st, [(self.out, ("open", st.sent))])]
        return [(st, [])]

    # -- robust receives: absorb duplicates, never raise -------------------
    def _recv_closed(self, st, kind, msg) -> List[Outcome]:
        if kind == "close":
            # late retransmitted close: the closer is still waiting for
            # an ack the network ate — re-ack, stay closed (idempotence)
            return [(st, [(self.out, ("closeack",))])]
        if kind in ("closeack", "oack", "describe", "select"):
            return [(st, [])]  # stragglers from a finished episode
        return super()._recv_closed(st, kind, msg)

    def _recv_opening(self, st, kind, msg) -> List[Outcome]:
        if kind in ("closeack", "describe", "select"):
            # closeack: duplicate ack of an already-closed close.
            # describe/select: the peer is flowing but the oack that
            # would have told us so was lost — drop; our open
            # retransmission makes the peer re-oack.
            return [(st, [])]
        return super()._recv_opening(st, kind, msg)

    def _recv_opened(self, st, kind, msg) -> List[Outcome]:
        if kind in ("open", "closeack", "oack", "describe", "select"):
            # duplicate of the open we already hold, or a straggler
            return [(st, [])]
        return super()._recv_opened(st, kind, msg)

    def _recv_flowing(self, st, kind, msg) -> List[Outcome]:
        if kind == "open":
            if msg[1] == st.rcvd:
                # duplicate of the accepted open (the peer retransmitted
                # because our oack was lost): re-ack with our current
                # descriptor
                return [(st, [(self.out, ("oack", st.sent))])]
            # an open from an episode we did not see start: the peer
            # closed and re-opened while our view went stale (a dropped
            # closeack can fork episodes this way).  Open is unilateral
            # and idempotent, so accept it — adopt the new descriptor,
            # re-ack, and answer it.  If the open itself was the stale
            # one, the peer's select-staleness repair re-describes and
            # the views still converge.
            st = st._replace(rcvd=msg[1])
            return [(st, [(self.out, ("oack", st.sent)),
                          (self.out, ("select", msg[1]))])]
        if kind == "select" and msg[1] != st.sent:
            # stale answer: it selects a descriptor we have moved past
            # (a duplicated close can fork episodes this way).  The
            # runtime's staleness timer re-describes until answered;
            # this is its receive-triggered image.
            return [(st, [(self.out, ("describe", st.sent))])]
        if kind in ("oack", "closeack"):
            return [(st, [])]
        return super()._recv_flowing(st, kind, msg)

    def _recv_closing(self, st, kind, msg) -> List[Outcome]:
        if kind == "open":
            # Rejected by our in-flight close.  The fault-free model
            # can drain this silently: FIFO guarantees our closeack
            # precedes it, so the opener has already re-pushed.  Under
            # loss the closeack may be gone, leaving the opener pending
            # forever — so the drain reflects the open back, the image
            # of the opener's timer refiring until the rejection lands.
            return [(st, [(self.out, ("rejected", msg))])]
        return super()._recv_closing(st, kind, msg)


class LossyTunnelState(NamedTuple):
    faults: int                # drop/duplicate events remaining


class LossyTunnelProcess(ProcessModel):
    """A tunnel that loses things: a relay between the two endpoints
    with a bounded budget of fault events.  Each signal passing through
    is forwarded intact, or — while budget remains — dropped or
    duplicated (each costing one unit).  Reordering needs no separate
    budget: the interleaving of the two directions is already
    nondeterministic, and within a direction the paper's protocol
    assumes FIFO tunnels.

    Bounding the budget is what makes ``◇□`` checks meaningful: an
    unboundedly lossy network can trivially defeat any liveness
    property, so the theorem is "after finitely many faults, the path
    still converges" — the model-checking image of a fault *rate*
    below the retransmission budget.
    """

    def __init__(self, origin: str, in_left: int, in_right: int,
                 out_left: int, out_right: int, faults: int = 2):
        self.origin = origin
        self.in_left = in_left
        self.in_right = in_right
        self.out_left = out_left
        self.out_right = out_right
        self.faults = faults
        self.name = "%s(lossy,f=%d)" % (origin, faults)

    def initial(self) -> LossyTunnelState:
        return LossyTunnelState(faults=self.faults)

    def receive(self, st: LossyTunnelState, qi: int,
                msg: Message) -> List[Outcome]:
        from_left = qi == self.in_left
        dest = self.out_right if from_left else self.out_left
        back = self.out_left if from_left else self.out_right
        if msg[0] in ("lost", "rejected"):
            # loss/rejection notifications model timers, not wire
            # traffic: they are exempt from faults (cf. the runtime's
            # out-of-band meta-signal exemption in repro.network.faults)
            return [(st, [(dest, msg)])]
        outcomes: List[Outcome] = [(st, [(dest, msg)])]
        if st.faults > 0:
            spent = st._replace(faults=st.faults - 1)
            # drop: the sender's retransmission timer will notice (the
            # ("lost", ...) notification is its model-checking image —
            # see ResilientEndpointProcess)
            outcomes.append((spent, [(back, ("lost", msg))]))
            outcomes.append((spent, [(dest, msg), (dest, msg)]))  # dup
        return outcomes
