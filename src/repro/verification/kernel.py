"""Explicit-state model-checking kernel.

This plays the role Spin/Promela play in the paper's Sec. VIII: a
system is a set of communicating processes plus bounded FIFO queues;
the global state is the tuple of process-local states and queue
contents; successors arise from message receives and internal actions.

The kernel is deliberately Promela-like:

* a **send** that would overflow a bounded queue disables the whole
  transition (Promela's blocking send);
* a **receive** pops the head of one queue and hands it to the queue's
  receiving process, which returns one or more nondeterministic
  outcomes;
* **internal actions** model nondeterministic choices such as the goal
  objects' phase switch and user ``modify`` events.

Everything is immutable and hashable, so graphs of millions of states
fit in plain dictionaries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Message", "LocalState", "Outcome", "ProcessModel",
           "QueueDef", "SystemModel", "SystemState", "ModelError"]

#: Wire messages are small tuples, e.g. ``("open", ("L", 0))``.
Message = Tuple
#: Process-local states are NamedTuples (hashable).
LocalState = Tuple
#: One nondeterministic outcome: the new local state plus a list of
#: (queue index, message) sends.
Outcome = Tuple[LocalState, List[Tuple[int, Message]]]


class ModelError(AssertionError):
    """The model reached a state its own rules forbid — a bug in either
    the model or the thing it models."""


class ProcessModel:
    """One process template.

    **Purity contract.**  ``can_receive``, ``receive`` and
    ``internal_actions`` must be *pure*: their outcomes may depend only
    on their arguments (the local state, the queue index, the message),
    never on mutable process attributes or external state, and they
    must not mutate their arguments.  The interned engine
    (:mod:`repro.verification.engine`) relies on this to memoize
    outcomes keyed on interned ids — each distinct argument combination
    is evaluated exactly once per exploration.  Nondeterminism is
    expressed by returning *multiple* outcomes, which memoizes fine;
    drawing randomness inside these methods would not.
    """

    name = "proc"

    def initial(self) -> LocalState:
        raise NotImplementedError

    def can_receive(self, local: LocalState) -> bool:
        """May this process consume messages right now?"""
        return True

    def receive(self, local: LocalState, queue_index: int,
                message: Message) -> List[Outcome]:
        """Outcomes of consuming ``message`` from ``queue_index``."""
        raise NotImplementedError

    def internal_actions(self, local: LocalState) -> List[Outcome]:
        """Enabled internal (non-receive) transitions."""
        return []


class QueueDef:
    """A bounded FIFO queue: who receives from it, and its capacity."""

    def __init__(self, name: str, receiver: int, capacity: int = 3):
        self.name = name
        self.receiver = receiver
        self.capacity = capacity


class SystemState:
    """Immutable global state: process locals + queue contents.

    The hash is computed lazily and cached: states materialized only to
    evaluate a predicate (the interned engine decodes them on demand)
    never pay for a nested-tuple hash, while states used as dict keys
    pay exactly once.
    """

    __slots__ = ("procs", "queues", "_hash")

    def __init__(self, procs: Tuple[LocalState, ...],
                 queues: Tuple[Tuple[Message, ...], ...]):
        self.procs = procs
        self.queues = queues
        self._hash: Optional[int] = None

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._hash = hash((self.procs, self.queues))
        return h

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        # Short-circuit on cached hashes before walking nested tuples.
        h1 = self._hash
        h2 = other._hash
        if h1 is not None and h2 is not None and h1 != h2:
            return False
        return self.procs == other.procs and self.queues == other.queues

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "SystemState(%r, %r)" % (self.procs, self.queues)


class SystemModel:
    """A closed system of processes and queues."""

    def __init__(self, name: str, processes: Sequence[ProcessModel],
                 queues: Sequence[QueueDef]):
        self.name = name
        self.processes = list(processes)
        self.queues = list(queues)

    def initial_state(self) -> SystemState:
        return SystemState(
            tuple(p.initial() for p in self.processes),
            tuple(() for _ in self.queues))

    # ------------------------------------------------------------------
    # successor generation (reference implementation)
    #
    # This is the semantics oracle: simple, obviously correct, and
    # slow.  The exploration hot path lives in
    # repro.verification.engine.InternedEngine, which must produce
    # exactly these successors in exactly this order; the equivalence
    # tests cross-check the two.
    # ------------------------------------------------------------------
    def successors(self, state: SystemState) -> List[SystemState]:
        result: List[SystemState] = []
        # receives
        for qi, queue in enumerate(state.queues):
            if not queue:
                continue
            pi = self.queues[qi].receiver
            process = self.processes[pi]
            local = state.procs[pi]
            if not process.can_receive(local):
                continue
            message = queue[0]
            for outcome in process.receive(local, qi, message):
                next_state = self._apply(state, pi, outcome,
                                         consumed=(qi,))
                if next_state is not None:
                    result.append(next_state)
        # internal actions
        for pi, process in enumerate(self.processes):
            for outcome in process.internal_actions(state.procs[pi]):
                next_state = self._apply(state, pi, outcome, consumed=())
                if next_state is not None:
                    result.append(next_state)
        return result

    def _apply(self, state: SystemState, pi: int, outcome: Outcome,
               consumed: Tuple[int, ...]) -> Optional[SystemState]:
        new_local, sends = outcome
        queues = [list(q) for q in state.queues]
        for qi in consumed:
            queues[qi].pop(0)
        for qi, message in sends:
            if len(queues[qi]) >= self.queues[qi].capacity:
                return None  # blocking send: transition disabled
            queues[qi].append(message)
        procs = list(state.procs)
        procs[pi] = new_local
        return SystemState(tuple(procs), tuple(tuple(q) for q in queues))
