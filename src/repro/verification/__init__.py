"""From-scratch explicit-state model checker reproducing Sec. VIII."""

from .engine import InternedEngine
from .explorer import ExplosionError, StateGraph, explore
from .kernel import (LocalState, Message, ModelError, Outcome,
                     ProcessModel, QueueDef, SystemModel, SystemState)
from .models import (LOSSY_PROPERTIES, PATH_TYPES, PathModel,
                     all_lossy_models, all_model_specs, all_models,
                     both_closed, both_flowing, build_lossy_model,
                     build_model, lossy_model_specs, valid_endstate)
from .processes import (EndpointProcess, EndpointState, FlowlinkProcess,
                        FlowlinkState, LossyTunnelProcess,
                        LossyTunnelState, ResilientEndpointProcess,
                        ResilientEndpointState)
from .properties import (SafetyViolation, check_disjunction,
                         check_recurrence, check_safety, check_stability,
                         find_cycle_with)
from .report import (VerificationResult, blowup_table, format_results,
                     verify_all, verify_model)
from .sweep import SweepJob, default_jobs, run_jobs, sweep

__all__ = [
    "InternedEngine",
    "ExplosionError", "StateGraph", "explore",
    "LocalState", "Message", "ModelError", "Outcome", "ProcessModel",
    "QueueDef", "SystemModel", "SystemState",
    "LOSSY_PROPERTIES", "PATH_TYPES", "PathModel", "all_lossy_models",
    "all_model_specs", "all_models", "both_closed", "both_flowing",
    "build_lossy_model", "build_model", "lossy_model_specs",
    "valid_endstate",
    "SweepJob", "default_jobs", "run_jobs", "sweep",
    "EndpointProcess", "EndpointState", "FlowlinkProcess",
    "FlowlinkState", "LossyTunnelProcess", "LossyTunnelState",
    "ResilientEndpointProcess", "ResilientEndpointState",
    "SafetyViolation", "check_disjunction", "check_recurrence",
    "check_safety", "check_stability", "find_cycle_with",
    "VerificationResult", "blowup_table", "format_results",
    "verify_all", "verify_model",
]
