"""Parallel model sweep: fan the Sec. VIII-A checks across cores.

The 12-model sweep (and the 6 two-flowlink extension models) are
embarrassingly parallel — each model's exploration is independent — so
this driver distributes them over a :mod:`multiprocessing` pool.  Each
job rebuilds its model inside the worker from a small picklable spec
(path type, flowlink count, model kwargs) and runs
:func:`~repro.verification.report.verify_model` with a per-model state
bound and optional wall-clock timeout; a model that blows either budget
comes back as a *truncated* :class:`VerificationResult` rather than
stalling the whole sweep.

Results always come back in job order, so
:func:`~repro.verification.report.format_results` and
:func:`~repro.verification.report.blowup_table` consume them exactly as
they consume the serial sweep's output.  On platforms where worker
pools cannot be created (sandboxes without semaphores, for instance)
the driver degrades to an in-process serial run with identical results.
"""

from __future__ import annotations

import os
from typing import List, NamedTuple, Optional, Sequence, Tuple

from .models import PATH_TYPES, build_model
from .report import VerificationResult, verify_model

__all__ = ["SweepJob", "sweep", "run_jobs", "default_jobs"]


class SweepJob(NamedTuple):
    """One picklable unit of sweep work."""

    path_type: str
    flowlinks: int
    max_states: int = 2_000_000
    max_seconds: Optional[float] = None
    #: sorted (key, value) pairs for :func:`build_model` kwargs
    model_kwargs: Tuple[Tuple[str, object], ...] = ()


def _run_job(job: SweepJob) -> VerificationResult:
    model = build_model(job.path_type, flowlinks=job.flowlinks,
                        **dict(job.model_kwargs))
    return verify_model(model, max_states=job.max_states,
                        on_truncate="mark", max_seconds=job.max_seconds)


def default_jobs(flowlink_counts: Sequence[int] = (0, 1),
                 path_types: Optional[Sequence[str]] = None,
                 max_states: int = 2_000_000,
                 max_seconds: Optional[float] = None,
                 **model_kwargs) -> List[SweepJob]:
    """The standard sweep grid, in the order ``verify_all`` reports:
    all path types without flowlinks first, then with."""
    if path_types is None:
        path_types = list(PATH_TYPES)
    frozen = tuple(sorted(model_kwargs.items()))
    return [SweepJob(pt, k, max_states, max_seconds, frozen)
            for k in flowlink_counts for pt in path_types]


def run_jobs(jobs: Sequence[SweepJob],
             processes: Optional[int] = None) -> List[VerificationResult]:
    """Run ``jobs`` across ``processes`` workers (default: one per
    core, capped at the job count).  ``processes<=1`` runs serially."""
    jobs = list(jobs)
    if processes is None:
        processes = min(len(jobs), os.cpu_count() or 1)
    if processes <= 1 or len(jobs) <= 1:
        return [_run_job(job) for job in jobs]
    try:
        import multiprocessing
        ctx = multiprocessing.get_context()
        with ctx.Pool(processes) as pool:
            return pool.map(_run_job, jobs, chunksize=1)
    except (ImportError, OSError, PermissionError, ValueError):
        # No usable worker pool on this platform: degrade gracefully.
        return [_run_job(job) for job in jobs]


def sweep(flowlink_counts: Sequence[int] = (0, 1),
          path_types: Optional[Sequence[str]] = None,
          max_states: int = 2_000_000,
          max_seconds: Optional[float] = None,
          processes: Optional[int] = None,
          **model_kwargs) -> List[VerificationResult]:
    """The parallel Sec. VIII-A sweep.

    ``sweep()`` with no arguments is the parallel equivalent of
    :func:`~repro.verification.report.verify_all`;
    ``sweep(flowlink_counts=(2,))`` is the two-flowlink extension.
    """
    return run_jobs(default_jobs(flowlink_counts, path_types,
                                 max_states, max_seconds,
                                 **model_kwargs),
                    processes=processes)
