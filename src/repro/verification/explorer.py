"""Breadth-first state-space exploration.

Builds the full reachable graph of a :class:`SystemModel` (states,
transitions, terminal states) up to a configurable bound, collecting the
statistics the Sec. VIII-A experiments report (states, transitions,
wall time, and a memory proxy).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .kernel import SystemModel, SystemState

__all__ = ["StateGraph", "explore", "ExplosionError"]


class ExplosionError(RuntimeError):
    """The state space exceeded the exploration bound."""


@dataclass
class StateGraph:
    """The reachable state graph of one model."""

    model: SystemModel
    states: List[SystemState] = field(default_factory=list)
    #: adjacency: successors[i] = ids of successor states of state i.
    successors: List[List[int]] = field(default_factory=list)
    elapsed: float = 0.0
    truncated: bool = False

    @property
    def state_count(self) -> int:
        return len(self.states)

    @property
    def transition_count(self) -> int:
        return sum(len(s) for s in self.successors)

    @property
    def memory_proxy(self) -> int:
        """A platform-independent memory measure: stored states plus
        stored edges (what a Spin run's memory scales with)."""
        return self.state_count + self.transition_count

    def terminal_ids(self) -> List[int]:
        """States with no successors (Promela's "final states")."""
        return [i for i, succ in enumerate(self.successors) if not succ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<StateGraph %s states=%d transitions=%d%s>" % (
            self.model.name, self.state_count, self.transition_count,
            " TRUNCATED" if self.truncated else "")


def explore(model: SystemModel, max_states: int = 2_000_000,
            on_truncate: str = "raise") -> StateGraph:
    """BFS-reach the whole state space of ``model``.

    ``on_truncate`` is ``"raise"`` (default) or ``"mark"`` — marking
    yields a partial graph with ``truncated=True``, which property
    checks refuse to certify but benchmarks can still time.
    """
    start = time.perf_counter()
    graph = StateGraph(model)
    index: Dict[SystemState, int] = {}

    def intern(state: SystemState) -> int:
        sid = index.get(state)
        if sid is None:
            sid = len(graph.states)
            index[state] = sid
            graph.states.append(state)
            graph.successors.append([])
            queue.append(sid)
        return sid

    queue: deque = deque()
    intern(model.initial_state())
    explored = 0
    while queue:
        if len(graph.states) > max_states:
            if on_truncate == "raise":
                raise ExplosionError(
                    "%s exceeded %d states" % (model.name, max_states))
            graph.truncated = True
            break
        sid = queue.popleft()
        explored += 1
        state = graph.states[sid]
        seen_here: Set[int] = set()
        for successor in model.successors(state):
            tid = intern(successor)
            if tid not in seen_here:
                seen_here.add(tid)
                graph.successors[sid].append(tid)
    graph.elapsed = time.perf_counter() - start
    return graph
