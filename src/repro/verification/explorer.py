"""Breadth-first state-space exploration.

Builds the full reachable graph of a :class:`SystemModel` (states,
transitions, terminal states) up to a configurable bound, collecting the
statistics the Sec. VIII-A experiments report (states, transitions,
wall time, and a memory proxy).

The exploration runs on the interned engine
(:class:`repro.verification.engine.InternedEngine`): the visited set
and the BFS frontier hold flat int tuples, adjacency is stored as one
flat ``array('I')`` plus an offsets index, and full
:class:`SystemState` objects are materialized lazily — only when a
property check or a test actually looks at ``graph.states[i]``.
"""

from __future__ import annotations

import time
from array import array
from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence

from .engine import InternedEngine
from .kernel import SystemModel, SystemState

__all__ = ["StateGraph", "explore", "ExplosionError"]


class ExplosionError(RuntimeError):
    """The state space exceeded the exploration bound."""


class _StateSeq(Sequence):
    """Lazy, read-only view of a graph's states: packed int tuples are
    decoded into :class:`SystemState` objects on access."""

    __slots__ = ("_packed", "_decode")

    def __init__(self, packed: List[tuple], engine: InternedEngine):
        self._packed = packed
        self._decode = engine.decode

    def __len__(self) -> int:
        return len(self._packed)

    def __getitem__(self, i):
        if isinstance(i, slice):
            decode = self._decode
            return [decode(k) for k in self._packed[i]]
        return self._decode(self._packed[i])

    def __iter__(self) -> Iterator[SystemState]:
        decode = self._decode
        for key in self._packed:
            yield decode(key)


class _AdjacencySeq(Sequence):
    """Ragged adjacency view over the flat edge array: ``seq[i]`` is
    the (zero-copy) slice of successor ids of state ``i``."""

    __slots__ = ("_offsets", "_mv")

    def __init__(self, adjacency: array, offsets: array):
        self._offsets = offsets
        self._mv = memoryview(adjacency)

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, i):
        offsets = self._offsets
        n = len(offsets) - 1
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(n))]
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(i)
        return self._mv[offsets[i]:offsets[i + 1]]

    def __iter__(self):
        mv = self._mv
        offsets = self._offsets
        for i in range(len(offsets) - 1):
            yield mv[offsets[i]:offsets[i + 1]]


class StateGraph:
    """The reachable state graph of one model, in interned storage.

    ``states`` and ``successors`` present the same sequence interfaces
    as the historical list-of-states / list-of-lists fields, but the
    backing store is compact: packed int tuples for states and a flat
    ``array('I')`` with an offsets index for adjacency.
    """

    __slots__ = ("model", "engine", "packed", "_adj", "_offsets",
                 "elapsed", "truncated", "_state_seq", "_succ_seq")

    def __init__(self, model: SystemModel,
                 engine: Optional[InternedEngine] = None):
        self.model = model
        self.engine = engine if engine is not None \
            else InternedEngine(model)
        #: packed states, id order (the canonical state store)
        self.packed: List[tuple] = []
        #: flat adjacency + offsets: successors of state i are
        #: ``_adj[_offsets[i]:_offsets[i+1]]``
        self._adj = array("I")
        self._offsets = array("I", [0])
        self.elapsed = 0.0
        self.truncated = False
        self._state_seq: Optional[_StateSeq] = None
        self._succ_seq: Optional[_AdjacencySeq] = None

    # -- views -------------------------------------------------------------
    @property
    def states(self) -> _StateSeq:
        seq = self._state_seq
        if seq is None:
            seq = self._state_seq = _StateSeq(self.packed, self.engine)
        return seq

    @property
    def successors(self) -> _AdjacencySeq:
        # NOTE: materializing this view pins the adjacency array (a
        # memoryview export), so it is only created after exploration
        # has finished appending edges.
        seq = self._succ_seq
        if seq is None:
            seq = self._succ_seq = _AdjacencySeq(self._adj,
                                                 self._offsets)
        return seq

    # -- statistics --------------------------------------------------------
    @property
    def state_count(self) -> int:
        return len(self.packed)

    @property
    def transition_count(self) -> int:
        return len(self._adj)

    @property
    def memory_proxy(self) -> int:
        """A platform-independent memory measure: stored states plus
        stored edges (what a Spin run's memory scales with)."""
        return self.state_count + self.transition_count

    def terminal_ids(self) -> List[int]:
        """States with no successors (Promela's "final states")."""
        offsets = self._offsets
        return [i for i in range(len(offsets) - 1)
                if offsets[i] == offsets[i + 1]]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<StateGraph %s states=%d transitions=%d%s>" % (
            self.model.name, self.state_count, self.transition_count,
            " TRUNCATED" if self.truncated else "")


def explore(model: SystemModel, max_states: int = 2_000_000,
            on_truncate: str = "raise",
            max_seconds: Optional[float] = None) -> StateGraph:
    """BFS-reach the whole state space of ``model``.

    ``on_truncate`` is ``"raise"`` (default) or ``"mark"`` — marking
    yields a partial graph with ``truncated=True``, which property
    checks refuse to certify but benchmarks can still time.

    The ``max_states`` bound is enforced at intern time: a graph
    explored with ``on_truncate="mark"`` never stores more than
    ``max_states`` states (the historical dequeue-time check could
    overshoot by a whole BFS level).  ``max_seconds``, if given, is a
    wall-clock budget checked periodically; exceeding it truncates the
    same way — this is what gives the parallel sweep driver per-model
    timeouts.
    """
    start = time.perf_counter()
    engine = InternedEngine(model)
    graph = StateGraph(model, engine)
    packed = graph.packed
    adjacency = graph._adj
    offsets = graph._offsets
    index: Dict[tuple, int] = {}
    expand = engine.expand
    add_edge = adjacency.append
    queue: deque = deque()

    key0 = engine.initial_key()
    index[key0] = 0
    packed.append(key0)
    queue.append(0)

    deadline = None if max_seconds is None else start + max_seconds
    truncated = False
    processed = 0
    while queue:
        sid = queue.popleft()
        seen_here = set()
        overflow = False
        for skey in expand(packed[sid]):
            tid = index.get(skey)
            if tid is None:
                if len(packed) >= max_states:
                    overflow = True
                    continue  # bound reached: drop the new state
                tid = len(packed)
                index[skey] = tid
                packed.append(skey)
                queue.append(tid)
            if tid not in seen_here:
                seen_here.add(tid)
                add_edge(tid)
        offsets.append(len(adjacency))
        if overflow:
            if on_truncate == "raise":
                raise ExplosionError(
                    "%s exceeded %d states" % (model.name, max_states))
            truncated = True
            break
        processed += 1
        if deadline is not None and not (processed & 1023) \
                and time.perf_counter() > deadline:
            if on_truncate == "raise":
                raise ExplosionError(
                    "%s exceeded %.3fs time budget"
                    % (model.name, max_seconds))
            truncated = True
            break
    # states discovered but never expanded (truncation) have no edges
    edge_count = len(adjacency)
    while len(offsets) <= len(packed):
        offsets.append(edge_count)
    graph.truncated = truncated
    graph.elapsed = time.perf_counter() - start
    return graph
