"""Property checking over explored state graphs.

Two families, matching Sec. VIII-A:

* **safety** — "a safety check was run to make sure that the path model
  had no deadlocks or other abnormal terminations.  The check ensured
  that in any final state, each slot is closed or flowing, and all
  signaling channels are empty."

* **temporal** — the Sec. V path specifications.  On a finite state
  graph whose infinite behaviours are exactly its lassos (terminal
  states stutter), the two LTL shapes reduce to cycle conditions:

  - ``◇□P`` is violated iff some reachable cycle (terminal stutter
    included) contains a ``¬P`` state;
  - ``□◇P`` is violated iff some reachable cycle lies entirely within
    ``¬P``;
  - the holdslot/holdslot disjunction ``◇□C ∨ □◇F`` is violated iff
    some cycle lies within ``¬F`` and contains a ``¬C`` state.

  All three are instances of one query: *is there a cycle within
  ``within``-states containing a ``witness``-state?* — answered with
  Tarjan's SCC algorithm.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from .explorer import StateGraph
from .kernel import SystemState

__all__ = [
    "find_cycle_with", "check_stability", "check_recurrence",
    "check_disjunction", "check_safety", "SafetyViolation",
]

Pred = Callable[[SystemState], bool]


class SafetyViolation:
    """One bad terminal state, with a human-readable reason."""

    def __init__(self, state_id: int, state: SystemState, reason: str):
        self.state_id = state_id
        self.state = state
        self.reason = reason

    def __repr__(self) -> str:
        return "<SafetyViolation #%d %s>" % (self.state_id, self.reason)


# ----------------------------------------------------------------------
# the unified cycle query
# ----------------------------------------------------------------------
def find_cycle_with(graph: StateGraph, within: Pred,
                    witness: Pred) -> Optional[int]:
    """Find a state satisfying ``witness`` that lies on a cycle whose
    states all satisfy ``within``.  Terminal states count as
    self-loops.  Returns the state id, or ``None``.

    Iterative Tarjan SCC over the ``within``-restricted subgraph.
    """
    n = graph.state_count
    # Hoist the sequence views: on interned graphs ``graph.states``
    # decodes lazily and ``graph.successors`` slices a flat edge array,
    # so grab each once instead of per access.
    states = graph.states
    successors = graph.successors
    inside = [within(s) for s in states]
    index = [0] * n
    low = [0] * n
    on_stack = [False] * n
    visited = [False] * n
    stack: List[int] = []
    counter = [1]

    def strongconnect(root: int) -> Optional[int]:
        work = [(root, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index[v] = low[v] = counter[0]
                counter[0] += 1
                visited[v] = True
                stack.append(v)
                on_stack[v] = True
            recurse = False
            succs = successors[v]
            while pi < len(succs):
                w = succs[pi]
                pi += 1
                if not inside[w]:
                    continue
                if not visited[w]:
                    work[-1] = (v, pi)
                    work.append((w, 0))
                    recurse = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], index[w])
            if recurse:
                continue
            work.pop()
            if low[v] == index[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == v:
                        break
                # A component contains a cycle iff it has >1 state, or
                # its single state has a self-loop, or it is terminal
                # (the implicit stutter).
                single = component[0] if len(component) == 1 else None
                cyclic = len(component) > 1 or (
                    single is not None and (
                        single in successors[single]
                        or not len(successors[single])))
                if cyclic:
                    for w in component:
                        if witness(states[w]):
                            return w
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
        return None

    for v in range(n):
        if inside[v] and not visited[v]:
            found = strongconnect(v)
            if found is not None:
                return found
    return None


# ----------------------------------------------------------------------
# the three temporal shapes
# ----------------------------------------------------------------------
def check_stability(graph: StateGraph, prop: Pred) -> Optional[int]:
    """``◇□ prop``: returns a violating state id or None."""
    return find_cycle_with(graph, within=lambda s: True,
                           witness=lambda s: not prop(s))


def check_recurrence(graph: StateGraph, prop: Pred) -> Optional[int]:
    """``□◇ prop``: returns a violating state id or None."""
    return find_cycle_with(graph, within=lambda s: not prop(s),
                           witness=lambda s: True)


def check_disjunction(graph: StateGraph, closed: Pred,
                      flowing: Pred) -> Optional[int]:
    """``(◇□ closed) ∨ (□◇ flowing)``: returns a violating state id
    (a cycle avoiding flowing that visits ¬closed) or None."""
    return find_cycle_with(graph, within=lambda s: not flowing(s),
                           witness=lambda s: not closed(s))


# ----------------------------------------------------------------------
# safety
# ----------------------------------------------------------------------
def check_safety(graph: StateGraph,
                 valid_endstate: Pred) -> List[SafetyViolation]:
    """Check every terminal state: queues empty and ``valid_endstate``
    (each slot closed or flowing)."""
    violations = []
    states = graph.states
    for sid in graph.terminal_ids():
        state = states[sid]
        if any(state.queues):
            violations.append(SafetyViolation(
                sid, state, "deadlock: undelivered signals %r"
                % (state.queues,)))
        elif not valid_endstate(state):
            violations.append(SafetyViolation(
                sid, state, "abnormal termination: %r" % (state.procs,)))
    return violations
