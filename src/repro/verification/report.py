"""Running and reporting the Sec. VIII-A verification experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .explorer import StateGraph, explore
from .kernel import SystemState
from .models import (PathModel, all_models, both_closed, both_flowing,
                     build_model, valid_endstate)
from .properties import (check_disjunction, check_recurrence,
                         check_safety, check_stability)

__all__ = ["VerificationResult", "verify_model", "verify_all",
           "blowup_table", "format_results"]


@dataclass
class VerificationResult:
    """Outcome of checking one path model."""

    key: str
    property_kind: str
    states: int
    transitions: int
    elapsed: float
    memory_proxy: int
    safety_ok: bool
    property_ok: bool
    truncated: bool = False
    violation_state: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.safety_ok and self.property_ok and not self.truncated


def verify_model(model: PathModel, max_states: int = 2_000_000,
                 on_truncate: str = "raise",
                 max_seconds: Optional[float] = None
                 ) -> VerificationResult:
    """Explore one model and run its safety + temporal checks.

    ``max_seconds`` bounds the exploration wall clock (see
    :func:`~repro.verification.explorer.explore`); with
    ``on_truncate="mark"`` a model that blows the budget reports
    ``truncated=True`` instead of raising.
    """
    graph = explore(model.system, max_states=max_states,
                    on_truncate=on_truncate, max_seconds=max_seconds)

    def left(state: SystemState):
        return state.procs[model.left_index]

    def right(state: SystemState):
        return state.procs[model.right_index]

    closed = lambda s: both_closed(left(s), right(s))
    flowing = lambda s: both_flowing(left(s), right(s))

    safety = check_safety(graph,
                          lambda s: valid_endstate(s, model))
    kind = model.property_kind
    if kind == "stability-closed":
        violation = check_stability(graph, closed)
    elif kind == "stability-no-flow":
        violation = check_stability(graph, lambda s: not flowing(s))
    elif kind == "stability-flowing":
        # lossy variants: after the last fault the path converges and
        # stays converged — ◇□ bothFlowing, stronger than the □◇ the
        # fault-free models check
        violation = check_stability(graph, flowing)
    elif kind == "recurrence-flowing":
        violation = check_recurrence(graph, flowing)
    elif kind == "closed-or-flowing":
        violation = check_disjunction(graph, closed, flowing)
    else:  # pragma: no cover - exhaustive over PATH_TYPES
        raise ValueError("unknown property %r" % kind)

    return VerificationResult(
        key=model.key, property_kind=kind,
        states=graph.state_count, transitions=graph.transition_count,
        elapsed=graph.elapsed, memory_proxy=graph.memory_proxy,
        safety_ok=not safety, property_ok=violation is None,
        truncated=graph.truncated, violation_state=violation)


def verify_all(max_states: int = 2_000_000, parallel: bool = False,
               processes: Optional[int] = None,
               max_seconds: Optional[float] = None,
               **model_kwargs) -> List[VerificationResult]:
    """The full 12-model sweep (Sec. VIII-A).

    ``parallel=True`` fans the models across a worker pool (see
    :mod:`repro.verification.sweep`); results keep the serial order.
    Parallel runs use ``on_truncate="mark"``, so a model that blows
    ``max_states``/``max_seconds`` comes back truncated instead of
    raising.
    """
    if parallel:
        from .sweep import sweep
        return sweep(max_states=max_states, max_seconds=max_seconds,
                     processes=processes, **model_kwargs)
    return [verify_model(m, max_states=max_states,
                         max_seconds=max_seconds)
            for m in all_models(**model_kwargs)]


def blowup_table(results: List[VerificationResult]
                 ) -> Dict[str, Dict[str, float]]:
    """The flowlink blow-up factors: for each path type, how much did
    one flowlink multiply the state count, memory proxy, and time?
    (The paper reports ×300 memory and ×1000 time on average.)"""
    by_key = {r.key: r for r in results}
    table: Dict[str, Dict[str, float]] = {}
    for key, result in by_key.items():
        if key.endswith("+link"):
            continue
        linked = by_key.get(key + "+link")
        if linked is None:
            continue
        table[key] = {
            "states_factor": linked.states / max(1, result.states),
            "memory_factor": (linked.memory_proxy
                              / max(1, result.memory_proxy)),
            "time_factor": linked.elapsed / max(1e-9, result.elapsed),
        }
    return table


def format_results(results: List[VerificationResult]) -> str:
    """A table in the spirit of Sec. VIII-A's reporting."""
    lines = ["%-10s %-22s %10s %12s %9s %7s %7s" % (
        "model", "property", "states", "transitions", "time(s)",
        "safety", "spec")]
    for r in results:
        lines.append("%-10s %-22s %10d %12d %9.3f %7s %7s%s" % (
            r.key, r.property_kind, r.states, r.transitions, r.elapsed,
            "pass" if r.safety_ok else "FAIL",
            "pass" if r.property_ok else "FAIL",
            "  (truncated)" if r.truncated else ""))
    return "\n".join(lines)
