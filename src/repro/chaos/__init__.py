"""Chaos harness: the bundled applications under injected faults.

The model checker proves the protocol converges under bounded loss
(:mod:`repro.verification`, the ``~lossy`` models); this package
demonstrates the same property for the *runtime* — each application is
driven end-to-end twice with one seed, faithful and faulted, and the
end-state media fingerprints must match.  ``python -m repro chaos``
runs the suite from the command line.
"""

from .runner import ChaosResult, run_app, run_suite
from .scenarios import SCENARIOS, ConvergenceTimeout, advance_until

__all__ = ["ChaosResult", "run_app", "run_suite", "SCENARIOS",
           "ConvergenceTimeout", "advance_until"]
