"""Chaos scenarios: each bundled application driven end-to-end on one
:class:`~repro.network.network.Network` and summarized as a media
*fingerprint* — a flat dict of end-state observations (who hears what,
which pairs flow two-way, which program state was reached).

The runner executes each scenario twice with the same seed — once on a
faithful network, once under a :class:`~repro.network.faults.FaultPlan`
— and the robustness claim is fingerprint equality: bounded loss,
duplication, reordering, and jitter must not change where the media
ends up, only how long convergence takes.

Scenarios therefore avoid ``settle()``-style racing and instead combine
predicate waits (:func:`advance_until`) with generous fixed drains, so
the same script is meaningful at zero latency and under 20% loss with
retransmission backoff.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..network.network import Network
from ..protocol.codecs import AUDIO

__all__ = ["SCENARIOS", "ConvergenceTimeout", "advance_until",
           "fingerprint_of"]

#: How long a predicate wait may advance simulated time before the run
#: is declared non-convergent.  Generous: six retransmissions with the
#: default policy span 0.25 * (2^6 - 1) ≈ 16 s.
WAIT_TIMEOUT = 20.0

#: Drain window after each driving action: long enough for the default
#: retransmission policy to repair a handful of losses.
DRAIN = 3.0


class ConvergenceTimeout(Exception):
    """A scenario predicate did not become true within the budget."""


def advance_until(net: Network, pred: Callable[[], bool],
                  timeout: float = WAIT_TIMEOUT,
                  step: float = 0.25) -> None:
    deadline = net.now + timeout
    while not pred():
        if net.now >= deadline:
            raise ConvergenceTimeout(
                "predicate still false after %.1fs of simulated time"
                % timeout)
        net.run(step)


def heard(net: Network, endpoint) -> List[str]:
    return sorted(net.plane.heard_by(endpoint))


def fingerprint_of(net: Network, **observations) -> Dict[str, object]:
    """Normalize observations into a JSON-friendly flat dict."""
    out: Dict[str, object] = {}
    for key, value in sorted(observations.items()):
        out[key] = sorted(value) if isinstance(value, (set, frozenset)) \
            else value
    return out


# ----------------------------------------------------------------------
# the six applications
# ----------------------------------------------------------------------
def click_to_dial(net: Network) -> Dict[str, object]:
    """Fig. 6: both users answer; the calls join two-way."""
    from ..apps.click_to_dial import build_click_to_dial
    user1 = net.device("user1")
    user2 = net.device("user2")
    ctd = build_click_to_dial(net, caller_address="user1")
    program = ctd.click("user2")
    advance_until(net, user1.ringing)
    user1.answer()
    advance_until(net, user2.ringing)
    user2.answer()
    advance_until(net, lambda: program.state_name == "connected")
    net.run(DRAIN)
    return fingerprint_of(
        net,
        state=program.state_name,
        two_way=net.plane.two_way(user1, user2),
        user1_hears=heard(net, user1),
        user2_hears=heard(net, user2))


def prepaid(net: Network) -> Dict[str, object]:
    """Fig. 3 through Snapshot 3: funds run out mid-call, A returns to
    B, and C is talking to the card server's voice interface."""
    from ..apps.prepaid import PrepaidScenario
    sc = PrepaidScenario(net, talk_seconds=30.0)
    sc.v.will_pay = False  # freeze the story at the collect state
    sc.establish_ab_call()
    net.run(DRAIN)
    sc.card_call_starts()
    net.run(DRAIN)
    sc.run_until_funds_exhausted()
    net.run(DRAIN)
    sc.switch_back_to_b()
    advance_until(net, lambda: net.plane.two_way(sc.a, sc.b)
                  and net.plane.two_way(sc.c, sc.v))
    net.run(DRAIN)
    return fingerprint_of(
        net,
        ab_two_way=net.plane.two_way(sc.a, sc.b),
        cv_two_way=net.plane.two_way(sc.c, sc.v),
        a_hears=heard(net, sc.a),
        b_hears=heard(net, sc.b),
        c_hears=heard(net, sc.c))


def pbx(net: Network) -> Dict[str, object]:
    """A PBX line switching between two held calls."""
    from ..apps.pbx import PBX
    box = net.box("pbx", cls=PBX)
    a = net.device("A")
    line = net.channel(a, box)
    box.attach_line(line)
    b = net.device("B", auto_accept=True)
    c = net.device("C", auto_accept=True)
    ch_b = net.channel(b, box)
    ch_c = net.channel(c, box)
    box.add_call(ch_b, key="B")
    box.add_call(ch_c, key="C")
    a.open(line.end_for(a).slot(), AUDIO)
    b.open(ch_b.end_for(b).slot(), AUDIO)
    c.open(ch_c.end_for(c).slot(), AUDIO)
    net.run(DRAIN)
    box.switch_to("B")
    advance_until(net, lambda: net.plane.two_way(a, b)
                  and net.plane.silent(c))
    mid_ab = True
    box.switch_to("C")
    advance_until(net, lambda: net.plane.two_way(a, c)
                  and net.plane.silent(b))
    net.run(DRAIN)
    return fingerprint_of(
        net,
        mid_ab_two_way=mid_ab,
        ac_two_way=net.plane.two_way(a, c),
        b_silent=net.plane.silent(b),
        a_hears=heard(net, a),
        c_hears=heard(net, c))


def conference(net: Network) -> Dict[str, object]:
    """Fig. 7: a three-way conference surviving a mute/unmute cycle."""
    from ..apps.conference import build_conference
    server = build_conference(net)
    devices = {}
    for name in ("A", "B", "C"):
        dev = net.device(name, auto_accept=True)
        devices[name] = dev
        server.invite(name, key=name)

    def all_mixed():
        return all("audio:%s" % other in net.plane.heard_by(dev)
                   for name, dev in devices.items()
                   for other in devices if other != name)

    advance_until(net, all_mixed)
    server.fully_mute("B")
    advance_until(net, lambda: net.plane.silent(devices["B"]))
    mid_b_silent = True
    server.unmute("B")
    advance_until(net, all_mixed)
    net.run(DRAIN)
    fp = {"mid_b_silent": mid_b_silent}
    for name, dev in devices.items():
        fp["%s_hears" % name.lower()] = heard(net, dev)
    return fingerprint_of(net, **fp)


def collab_tv(net: Network) -> Dict[str, object]:
    """Fig. 8: one movie on five tunnels across three devices."""
    from ..apps.collab_tv import CollaborativeTV
    session = CollaborativeTV(net, title="heidi")
    session.start_watching()
    advance_until(net, lambda: len(net.plane.heard_by(session.tv)) >= 2
                  and len(net.plane.heard_by(session.laptop)) >= 2
                  and len(net.plane.heard_by(session.phones)) >= 1)
    net.run(DRAIN)
    return fingerprint_of(
        net,
        tv_hears=heard(net, session.tv),
        laptop_hears=heard(net, session.laptop),
        phones_hears=heard(net, session.phones))


def features(net: Network) -> Dict[str, object]:
    """A Do-Not-Disturb feature box rejecting, then admitting, a call
    through a transparent pipeline."""
    from ..apps.features import DoNotDisturb
    a = net.device("A")
    b = net.device("B", auto_accept=True)
    dnd = net.box("dnd", cls=DoNotDisturb)
    upstream = net.channel(a, dnd)
    downstream = net.channel(dnd, b)
    dnd.splice(upstream, downstream)
    dnd.engage()
    a_slot = upstream.end_for(a).slot()
    a.open(a_slot, AUDIO)
    advance_until(net, lambda: a_slot.is_closed)
    net.run(DRAIN)
    rejected = a_slot.is_closed and net.plane.silent(b)
    dnd.disengage()
    a.open(a_slot, AUDIO)
    advance_until(net, lambda: net.plane.two_way(a, b))
    net.run(DRAIN)
    return fingerprint_of(
        net,
        rejected_while_engaged=rejected,
        two_way=net.plane.two_way(a, b),
        a_hears=heard(net, a),
        b_hears=heard(net, b))


#: The chaos suite: every bundled application, by CLI name.
SCENARIOS: Dict[str, Callable[[Network], Dict[str, object]]] = {
    "click_to_dial": click_to_dial,
    "prepaid": prepaid,
    "pbx": pbx,
    "conference": conference,
    "collab_tv": collab_tv,
    "features": features,
}
