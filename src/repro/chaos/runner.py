"""The chaos runner: same seed, same script, faithful vs. faulty
network — the fingerprints must match.

This is the runtime half of the robustness story (the model checker's
lossy-tunnel sweep is the exhaustive half): it demonstrates that the
retransmission machinery of :mod:`repro.protocol.slot` really does hide
a :class:`~repro.network.faults.FaultPlan` from the media plane for
whole applications, not just one tunnel.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..network.eventloop import QuiescenceError
from ..network.faults import FaultPlan
from ..network.network import Network
from ..obs.tracer import Tracer
from ..protocol.errors import MediaControlError
from ..protocol.slot import RetransmitPolicy
from .scenarios import SCENARIOS, ConvergenceTimeout

__all__ = ["ChaosResult", "run_app", "run_suite"]


@dataclass
class ChaosResult:
    """Outcome of one app under one fault plan."""

    app: str
    plan: Dict[str, object]
    seed: int
    converged: bool
    error: Optional[str] = None
    mismatches: List[str] = field(default_factory=list)
    baseline: Dict[str, object] = field(default_factory=dict)
    outcome: Dict[str, object] = field(default_factory=dict)
    fault_stats: Dict[str, int] = field(default_factory=dict)
    sim_time: float = 0.0
    elapsed: float = 0.0
    #: The faulted run's flight-recorder tail when it errored: the last
    #: signaling events before the timeout/livelock, straight from the
    #: always-on recorder.
    flight_tail: Tuple[str, ...] = ()
    #: The faulted run's tracer (not serialized; a full-event tracer
    #: only when the caller asked for an export).
    tracer: Optional[Tracer] = None

    def to_json(self) -> Dict[str, object]:
        return {
            "app": self.app,
            "plan": self.plan,
            "seed": self.seed,
            "converged": self.converged,
            "error": self.error,
            "mismatches": self.mismatches,
            "baseline": self.baseline,
            "outcome": self.outcome,
            "fault_stats": self.fault_stats,
            "sim_time": self.sim_time,
            "elapsed": self.elapsed,
            "flight_tail": list(self.flight_tail),
        }


def run_app(app: str, plan: FaultPlan, seed: int = 7,
            retransmit: Optional[RetransmitPolicy] = None,
            tracer: Optional[Tracer] = None) -> ChaosResult:
    """Run one application's scenario under ``plan`` and compare its
    media fingerprint with a fault-free run of the same seed.

    ``retransmit=None`` disables robust mode — the negative control:
    under real loss the apps are then expected to diverge or hang.

    The faulted run always carries a tracer: the given one, or a
    flight-recorder-only :class:`~repro.obs.tracer.Tracer`
    (``keep_events=False``) so a diverging run's error report shows the
    signaling history that led there.  Tracing never draws from the
    simulation's RNG, so it cannot perturb the convergence verdict.
    """
    scenario = SCENARIOS[app]
    result = ChaosResult(app=app, plan=plan.describe(), seed=seed,
                         converged=False)
    baseline_net = Network(seed=seed, retransmit=retransmit)
    result.baseline = scenario(baseline_net)

    if tracer is None:
        tracer = Tracer(keep_events=False)
    result.tracer = tracer
    start = time.perf_counter()
    net = Network(seed=seed, retransmit=retransmit, faults=plan,
                  trace=tracer)
    try:
        result.outcome = scenario(net)
    except (ConvergenceTimeout, QuiescenceError, MediaControlError) as e:
        result.error = "%s: %s" % (type(e).__name__, e)
        result.flight_tail = tuple(tracer.flight_tail())
    result.elapsed = time.perf_counter() - start
    result.sim_time = net.now
    result.fault_stats = net.fault_stats.to_json()
    if result.error is None:
        keys = sorted(set(result.baseline) | set(result.outcome))
        result.mismatches = [
            "%s: baseline=%r faulted=%r"
            % (k, result.baseline.get(k), result.outcome.get(k))
            for k in keys
            if result.baseline.get(k) != result.outcome.get(k)]
        result.converged = not result.mismatches
    return result


def run_suite(apps: Optional[List[str]] = None,
              plan: Optional[FaultPlan] = None, seed: int = 7,
              retransmit: Optional[RetransmitPolicy] = None,
              keep_events: bool = False) -> List[ChaosResult]:
    """Run a list of apps (default: all six) under one plan.

    ``keep_events=True`` gives each app a full-event tracer so the
    results can be exported as Chrome traces (``--trace-json``).
    """
    from ..network.faults import PLANS
    if plan is None:
        plan = PLANS["drop10+dup10"]
    names = list(SCENARIOS) if apps is None else apps
    return [run_app(name, plan, seed=seed, retransmit=retransmit,
                    tracer=Tracer() if keep_events else None)
            for name in names]
