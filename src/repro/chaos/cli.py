"""``python -m repro chaos`` — run the bundled applications under a
fault plan and check media convergence.

Usage::

    python -m repro chaos                        # all six apps,
                                                 # drop10+dup10
    python -m repro chaos --plan flaky           # a named plan
    python -m repro chaos --drop 0.2 --jitter 0.05
    python -m repro chaos --app pbx --app prepaid --seed 3
    python -m repro chaos --json -               # JSON report on stdout
    python -m repro chaos --trace-json trace.json
                                                 # Chrome trace per app
    python -m repro chaos --bench-json BENCH_chaos.json
    python -m repro chaos --list-plans
    python -m repro chaos --no-retransmit        # negative control
                                                 # (exits 1 by design)

Exit status: 0 when every selected app converged, 1 when any diverged
or errored, 2 on usage errors (unknown plan or app).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional, TextIO

from ..network.faults import PLANS, FaultPlan, plan_by_name
from ..protocol.slot import RetransmitPolicy
from ..tools.bench import write_text as _write_text
from .runner import ChaosResult, run_suite
from .scenarios import SCENARIOS

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Drive the bundled applications over a lossy "
                    "network and verify that the media plane converges "
                    "to the fault-free fingerprint")
    parser.add_argument("--plan", default="drop10+dup10", metavar="NAME",
                        help="named fault plan (see --list-plans)")
    parser.add_argument("--drop", type=float, default=None,
                        metavar="P", help="override drop probability")
    parser.add_argument("--duplicate", type=float, default=None,
                        metavar="P", help="override duplicate probability")
    parser.add_argument("--reorder", type=float, default=None,
                        metavar="P", help="override reorder probability")
    parser.add_argument("--jitter", type=float, default=None,
                        metavar="SECONDS", help="override delay jitter")
    parser.add_argument("--seed", type=int, default=7,
                        help="simulation seed (default 7)")
    parser.add_argument("--app", action="append", default=None,
                        metavar="NAME",
                        help="run only this app (repeatable; default: "
                             "all of %s)" % ", ".join(SCENARIOS))
    parser.add_argument("--no-retransmit", action="store_true",
                        help="disable robust mode (negative control: "
                             "apps are expected to break)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the full JSON report to PATH "
                             "('-' for stdout)")
    parser.add_argument("--trace-json", default=None, metavar="PATH",
                        help="export each faulted run as Chrome "
                             "trace_event JSON; with several apps the "
                             "app name is inserted before the "
                             "extension (out.json -> out.pbx.json)")
    parser.add_argument("--bench-json", default=None, metavar="PATH",
                        help="write a benchmark summary to PATH")
    parser.add_argument("--list-plans", action="store_true",
                        help="list the named fault plans and exit")
    return parser


def _resolve_plan(args) -> FaultPlan:
    plan = plan_by_name(args.plan)
    overrides = {name: getattr(args, name)
                 for name in ("drop", "duplicate", "reorder", "jitter")
                 if getattr(args, name) is not None}
    if overrides:
        plan = dataclasses.replace(
            plan, name="%s+custom" % plan.name, **overrides)
    return plan


def _format_text(results: List[ChaosResult], out: TextIO) -> None:
    print("%-14s %-18s %9s %8s %6s %6s  %s"
          % ("app", "plan", "verdict", "sim(s)", "drops", "dups",
             "detail"), file=out)
    for r in results:
        detail = r.error or "; ".join(r.mismatches) or ""
        print("%-14s %-18s %9s %8.2f %6d %6d  %s"
              % (r.app, r.plan["name"],
                 "converged" if r.converged else "DIVERGED",
                 r.sim_time, r.fault_stats.get("dropped", 0),
                 r.fault_stats.get("duplicated", 0), detail), file=out)
        if r.error and r.flight_tail:
            print("    flight recorder tail (last %d events):"
                  % len(r.flight_tail), file=out)
            for line in r.flight_tail:
                print("      %s" % line, file=out)


def _trace_path(path: str, app: str, many: bool) -> str:
    if not many:
        return path
    if path.endswith(".json"):
        return "%s.%s.json" % (path[:-len(".json")], app)
    return "%s.%s" % (path, app)


def _bench_payload(results: List[ChaosResult], seed: int) -> dict:
    return {
        "plan": results[0].plan if results else {},
        "seed": seed,
        "apps": {
            r.app: {
                "converged": r.converged,
                "elapsed": r.elapsed,
                "sim_time": r.sim_time,
                "fault_stats": r.fault_stats,
            } for r in results},
        "summary": {
            "apps_measured": len(results),
            "all_converged": all(r.converged for r in results),
        },
    }


def main(argv: Optional[List[str]] = None,
         out: TextIO = sys.stdout) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_plans:
        for name in sorted(PLANS):
            print("%-14s %s" % (name, PLANS[name].describe()), file=out)
        return 0
    try:
        plan = _resolve_plan(args)
    except KeyError as e:
        parser.error(str(e))  # exits 2
    apps = args.app if args.app is not None else list(SCENARIOS)
    unknown = [a for a in apps if a not in SCENARIOS]
    if unknown:
        parser.error("unknown app(s) %s (known: %s)"
                     % (", ".join(unknown), ", ".join(SCENARIOS)))
    retransmit = None if args.no_retransmit else RetransmitPolicy()
    results = run_suite(apps=apps, plan=plan, seed=args.seed,
                        retransmit=retransmit,
                        keep_events=args.trace_json is not None)
    if args.trace_json:
        from ..obs.export import dumps_chrome
        for r in results:
            assert r.tracer is not None
            path = _trace_path(args.trace_json, r.app, len(results) > 1)
            _write_text(path, dumps_chrome(r.tracer, meta={
                "app": r.app, "seed": r.seed, "plan": r.plan,
                "converged": r.converged}))
    if args.json:
        payload = json.dumps([r.to_json() for r in results], indent=2,
                             sort_keys=True)
        if args.json == "-":
            print(payload, file=out)
        else:
            _write_text(args.json, payload + "\n")
    if args.json != "-":
        _format_text(results, out)
    if args.bench_json:
        _write_text(args.bench_json,
                    json.dumps(_bench_payload(results, args.seed),
                               indent=2, sort_keys=True) + "\n")
    return 0 if all(r.converged for r in results) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
