"""The audio-conference application of Fig. 7.

"During the conference the conference server flowlinks the tunnel for
each user device to a tunnel leading to the bridge.  Each tunnel
corresponds to a two-way audio channel.  In the direction toward the
bridge, an audio channel carries the voice of a single user.  In the
direction away from the bridge, an audio channel carries the mixed
voices of all the users except the user the channel goes to."

Partial muting (Sec. IV-B) "can be achieved easily by the conference
bridge ... The application server simply connects all the user devices
to a media server (conference bridge), and uses standardized
meta-signals to tell the media server how to mix them."  Full muting is
the primitives' job: "The conference server can accomplish this by
temporarily replacing a flowlink by two holdslots."
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.box import Box
from ..core.predicates import is_flowing
from ..core.program import (END, State, Timeout, Transition, flow_link,
                            hold_slot, on_channel_down, on_meta, open_slot)
from ..media.resources import ConferenceBridge
from ..network.network import Network
from ..protocol.channel import ChannelEnd, SignalingChannel
from ..protocol.codecs import AUDIO
from ..protocol.signals import AppMeta, ChannelUp, MetaSignal
from ..protocol.slot import Slot

__all__ = ["ConferenceServer", "build_conference", "leg_profile",
           "PROFILE_SLOTS", "PROFILE_MEDIA"]

#: Slot names of the per-leg profile below, and their media (the
#: bridge leg's medium is fixed by deployment, not by an annotation).
PROFILE_SLOTS = ("user", "bridge")
PROFILE_MEDIA = {"bridge": AUDIO}


def leg_profile(answer_timeout: float = 30.0) -> Dict[str, State]:
    """The goal-annotation profile of one conference leg.

    :class:`ConferenceServer` installs its goals imperatively (invite →
    openSlot, admit → flowLink, ``fully_mute`` → "temporarily replacing
    a flowlink by two holdslots"), so this profile is the
    static-analysis view of a leg's lifecycle for the lint catalog.
    """
    return {
        "inviting": State(
            goals=(open_slot("user", AUDIO),),
            transitions=(
                Transition(is_flowing("user"), "linked"),
                Transition(on_channel_down(), END),
            ),
            timeout=Timeout(answer_timeout, END)),
        "linked": State(
            goals=(flow_link("user", "bridge"),),
            transitions=(
                Transition(on_meta("app", "fully-mute"), "muted"),
                Transition(on_channel_down(), END),
            )),
        "muted": State(
            goals=(hold_slot("user"), hold_slot("bridge")),
            transitions=(
                Transition(on_meta("app", "unmute"), "linked"),
                Transition(on_channel_down(), END),
            )),
    }


class ConferenceServer(Box):
    """The application server of Fig. 7.

    Users join by dialing the conference address (their ``open`` is
    relayed to the bridge by a flowlink) or by being invited (the server
    rings them first, then links them in when they answer).
    """

    def __init__(self, loop, name: str, cost: float = 0.0):
        super().__init__(loop, name, cost=cost)
        self.net: Optional[Network] = None
        self.bridge: Optional[ConferenceBridge] = None
        #: user key -> (user-facing slot, bridge-facing slot)
        self.legs: Dict[str, Tuple[Slot, Slot]] = {}
        #: user keys invited but not yet answered.
        self.pending_invites: Dict[Slot, str] = {}

    def configure(self, net: Network, bridge: ConferenceBridge) -> None:
        self.net = net
        self.bridge = bridge

    # ------------------------------------------------------------------
    # joining and leaving
    # ------------------------------------------------------------------
    def _bridge_leg(self, key: str) -> Slot:
        """A fresh channel to the bridge for one user, keyed so the
        bridge's mix policy can name the party."""
        assert self.net is not None and self.bridge is not None
        channel = self.net.channel(self, self.bridge,
                                   target="user:%s" % key,
                                   name="%s-bridge-%s" % (self.name, key))
        return channel.end_for(self).slot()

    def admit(self, channel: SignalingChannel, key: str) -> None:
        """Link an incoming user channel straight into the conference;
        the user's own ``open`` pulls the bridge leg up."""
        user_slot = channel.end_for(self).slot()
        bridge_slot = self._bridge_leg(key)
        self.legs[key] = (user_slot, bridge_slot)
        self.flow_link(user_slot, bridge_slot)

    def invite(self, address: str, key: Optional[str] = None) -> None:
        """Ring ``address``; when the user answers, link them in."""
        assert self.net is not None
        key = key or address
        channel = self.net.dial(self, address,
                                name="%s-user-%s" % (self.name, key))
        user_slot = channel.end_for(self).slot()
        self.pending_invites[user_slot] = key
        self.open_slot(user_slot, AUDIO)

    def on_tunnel_signal(self, slot: Slot, signal) -> None:
        super().on_tunnel_signal(slot, signal)
        # Promote an answered invite to a full conference leg.
        key = self.pending_invites.get(slot)
        if key is not None and slot.is_flowing:
            del self.pending_invites[slot]
            bridge_slot = self._bridge_leg(key)
            self.legs[key] = (slot, bridge_slot)
            self.flow_link(slot, bridge_slot)

    def on_meta_signal(self, end: ChannelEnd, signal: MetaSignal) -> None:
        if isinstance(signal, ChannelUp) and \
                signal.target.startswith("conf"):
            key = "guest-%d" % (len(self.legs) + 1)
            self.admit(end.channel, key)

    def remove(self, key: str) -> None:
        """Drop a user: both channels of the leg are destroyed."""
        user_slot, bridge_slot = self.legs.pop(key)
        user_slot.channel_end.tear_down()
        bridge_slot.channel_end.tear_down()

    # ------------------------------------------------------------------
    # muting (Sec. IV-B)
    # ------------------------------------------------------------------
    def fully_mute(self, key: str) -> None:
        """Full muting: 'temporarily replacing a flowlink by two
        holdslots'."""
        user_slot, bridge_slot = self.legs[key]
        self.hold_slot(user_slot)
        self.hold_slot(bridge_slot)

    def unmute(self, key: str) -> None:
        """Restore the leg's flowlink after full muting."""
        user_slot, bridge_slot = self.legs[key]
        self.flow_link(user_slot, bridge_slot)

    def _send_mix(self, speaker: str, listener: str, mode: str) -> None:
        """Drive the bridge's mix matrix with the standardized
        meta-signal, through the bridge leg of the speaker."""
        __, bridge_slot = self.legs[speaker]
        bridge_slot.channel_end.send_meta(AppMeta("set-mix", {
            "speaker": "user:%s" % speaker,
            "listener": "user:%s" % listener,
            "mode": mode}))

    def business_mute(self, key: str, muted: bool = True) -> None:
        """Mute a nonspeaking participant's input so background noise
        does not degrade the meeting; they still hear everything."""
        mode = "blocked" if muted else "normal"
        for other in self.legs:
            if other != key:
                self._send_mix(key, other, mode)

    def emergency_isolate(self, caller: str) -> None:
        """IP-based emergency services: the caller keeps being heard,
        but cannot hear what the responders are saying."""
        for other in self.legs:
            if other != caller:
                self._send_mix(other, caller, "blocked")

    def training_mode(self, agent: str, customer: str,
                      supervisor: str) -> None:
        """A/B/C training: agent and customer hear each other, the
        supervisor hears both, the customer cannot hear the supervisor,
        and the agent hears the supervisor as a whisper."""
        self._send_mix(supervisor, customer, "blocked")
        self._send_mix(supervisor, agent, "whisper")


def build_conference(net: Network, name: str = "conf",
                     **kwargs) -> ConferenceServer:
    """Create a conference server plus its bridge, routed at ``conf:``
    addresses."""
    server = net.box(name, cls=ConferenceServer, **kwargs)
    bridge = net.resource("%s-bridge" % name, ConferenceBridge)
    server.configure(net, bridge)
    net.router.register("conf", server)
    return server
