"""A PBX application server with call switching (Figs. 2 and 3).

"Endpoint A is a telephone in an office with an IP PBX.  Because of
this, A has a permanent signaling channel to the PBX, and all signaling
channels connecting A to other telephones radiate from the PBX.  Among
other features, the PBX allows A to switch between multiple outside
calls."

Two implementations are provided:

* :class:`PBX` — the *correct* server of Fig. 3, programmed with the
  goal primitives: the line slot is flowlinked to the active call and
  every other call is held.

* :class:`NaivePBX` — the *erroneous* server of Fig. 2: it forwards all
  media signals that it receives, "acting as if media signals concern
  media endpoints only", and issues its own raw signals when switching.
  It exists to reproduce the failure snapshots of Sec. II-A.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.box import Box
from ..core.program import (END, State, Transition, flow_link, hold_slot,
                            on_channel_down, on_meta)
from ..protocol.channel import ChannelEnd, SignalingChannel
from ..protocol.descriptor import Descriptor
from ..protocol.errors import ConfigurationError
from ..protocol.signals import (ChannelUp, Describe, MetaSignal, Oack, Open,
                                Select, TunnelSignal)
from ..protocol.slot import Slot

__all__ = ["PBX", "NaivePBX", "switching_profile", "PROFILE_SLOTS"]

#: Slot names of the two-call switching profile below.
PROFILE_SLOTS = ("line", "call-1", "call-2")


def switching_profile() -> Dict[str, State]:
    """The goal-annotation profile of the switching feature, as a
    state machine over a line and two outside calls.

    :class:`PBX` drives its goals imperatively (``switch_to`` installs
    ``flowLink(line, call_k)`` and holds the rest), so there is no
    ``Program`` object to extract; this profile is the static-analysis
    view of the same annotation pattern — "the annotation pattern
    ``flowLink(line, call_k)`` + ``holdSlot(call_j)``" — and the lint
    catalog (:mod:`repro.staticcheck.catalog`) checks it in place of
    the imperative code.
    """
    return {
        "allHeld": State(
            goals=(hold_slot("line"), hold_slot("call-1"),
                   hold_slot("call-2")),
            transitions=(
                Transition(on_meta("app", "switch-1"), "onCall1"),
                Transition(on_meta("app", "switch-2"), "onCall2"),
                Transition(on_channel_down(), END),
            )),
        "onCall1": State(
            goals=(flow_link("line", "call-1"), hold_slot("call-2")),
            transitions=(
                Transition(on_meta("app", "switch-2"), "onCall2"),
                Transition(on_meta("app", "hold-all"), "allHeld"),
                Transition(on_channel_down(), END),
            )),
        "onCall2": State(
            goals=(flow_link("line", "call-2"), hold_slot("call-1")),
            transitions=(
                Transition(on_meta("app", "switch-1"), "onCall1"),
                Transition(on_meta("app", "hold-all"), "allHeld"),
                Transition(on_channel_down(), END),
            )),
    }


class PBX(Box):
    """The correctly-programmed PBX of Fig. 3.

    One *line* channel connects the PBX to its telephone; any number of
    *call* channels connect it to the outside.  ``switch_to(key)``
    flowlinks the line to that call and holds every other call — the
    annotation pattern ``flowLink(line, call_k)`` + ``holdSlot(call_j)``.
    """

    def __init__(self, loop, name: str, cost: float = 0.0):
        super().__init__(loop, name, cost=cost)
        self.line_slot: Optional[Slot] = None
        self.call_slots: Dict[str, Slot] = {}
        self.active: Optional[str] = None
        self._next_call = 0

    # -- wiring -------------------------------------------------------------
    def attach_line(self, channel: SignalingChannel) -> Slot:
        """Declare ``channel`` as the permanent channel to the phone."""
        self.line_slot = channel.end_for(self).slot()
        self.name_slot("line", self.line_slot)
        # Until a call is switched in, the line is held: the phone may
        # open toward us and will be accepted (muted).
        self.hold_slot(self.line_slot)
        return self.line_slot

    def add_call(self, channel: SignalingChannel,
                 key: Optional[str] = None) -> str:
        """Register an outside call channel (placed or received)."""
        if key is None:
            self._next_call += 1
            key = "call-%d" % self._next_call
        slot = channel.end_for(self).slot()
        self.call_slots[key] = slot
        self.name_slot(key, slot)
        # Unswitched calls are held: the far server's open is accepted
        # but muted until the user switches to it.
        self.hold_slot(slot)
        return key

    # -- the switching feature ------------------------------------------------
    def switch_to(self, key: str) -> None:
        """Connect the phone to call ``key``; hold everything else."""
        if self.line_slot is None:
            raise ConfigurationError("PBX %s has no line channel"
                                     % self.name)
        if key not in self.call_slots:
            raise ConfigurationError("PBX %s has no call %r" %
                                     (self.name, key))
        for other, slot in self.call_slots.items():
            if other != key:
                self.hold_slot(slot)
        self.flow_link(self.line_slot, self.call_slots[key])
        self.active = key

    def hold_all(self) -> None:
        """Put every call (and the line) on hold."""
        for slot in self.call_slots.values():
            self.hold_slot(slot)
        if self.line_slot is not None:
            self.hold_slot(self.line_slot)
        self.active = None

    def drop_call(self, key: str) -> None:
        """Tear down an outside call entirely."""
        slot = self.call_slots.pop(key)
        end = slot.channel_end
        if self.active == key:
            self.active = None
            if self.line_slot is not None:
                self.hold_slot(self.line_slot)
        end.tear_down()

    # -- incoming channels -------------------------------------------------------
    def on_meta_signal(self, end: ChannelEnd, signal: MetaSignal) -> None:
        if isinstance(signal, ChannelUp):
            # A new outside call arrived (e.g. from a prepaid-card
            # server).  Register and hold it; the user switches later.
            slot = end.slot()
            if slot is self.line_slot or slot in self.call_slots.values():
                return  # already wired explicitly
            self.add_call(end.channel)


class NaivePBX(Box):
    """The uncoordinated PBX of Fig. 2.

    It keeps a record of descriptors seen (as real servers do,
    Sec. VI-C), forwards every media signal it receives "untouched
    toward the far endpoint", and implements switching by writing raw
    ``describe`` signals — with no idea that another server might be
    doing the same.  Channels carrying it must be created with
    ``strict=False``.
    """

    def __init__(self, loop, name: str, cost: float = 0.0):
        super().__init__(loop, name, cost=cost)
        self.line_slot: Optional[Slot] = None
        self.call_slots: Dict[str, Slot] = {}
        self.active: Optional[str] = None
        #: Last descriptor observed per slot (recorded in passing).
        self.seen_descriptors: Dict[Slot, Descriptor] = {}

    # -- wiring ---------------------------------------------------------------
    def attach_line(self, channel: SignalingChannel) -> Slot:
        self.line_slot = channel.end_for(self).slot()
        return self.line_slot

    def add_call(self, channel: SignalingChannel, key: str) -> Slot:
        slot = channel.end_for(self).slot()
        self.call_slots[key] = slot
        return slot

    # -- raw signaling (no goal objects, no coordination) -------------------------
    @staticmethod
    def raw(slot: Slot, signal: TunnelSignal) -> None:
        """Send a signal without consulting the slot state machine —
        exactly what a server unaware of composition does."""
        slot.channel_end.send_tunnel(slot.tunnel_id, signal)

    def _record(self, slot: Slot, signal: TunnelSignal) -> None:
        descriptor = getattr(signal, "descriptor", None)
        if descriptor is not None:
            self.seen_descriptors[slot] = descriptor

    def descriptor_of(self, slot: Slot) -> Descriptor:
        return self.seen_descriptors[slot]

    # -- naive forwarding ----------------------------------------------------------
    def on_tunnel_signal(self, slot: Slot, signal: TunnelSignal) -> None:
        self._record(slot, signal)
        target = self._forward_target(slot)
        if target is not None:
            self.raw(target, signal)

    def _forward_target(self, slot: Slot) -> Optional[Slot]:
        """Media signals from a call go to the line; signals from the
        line go to whatever call the PBX believes is active."""
        if slot is self.line_slot and self.active is not None:
            return self.call_slots.get(self.active)
        if slot in self.call_slots.values():
            return self.line_slot
        return None

    # -- the (uncoordinated) switching feature ------------------------------------------
    def answer_call(self, key: str) -> None:
        """Naively accept an incoming call's open on behalf of A."""
        slot = self.call_slots[key]
        line_desc = self.seen_descriptors.get(self.line_slot)
        if line_desc is not None:
            self.raw(slot, Oack(line_desc))

    def switch_to(self, key: str) -> None:
        """Fig. 2 switching: three raw signals, no coordination.

        A ``describe`` with the new peer's descriptor to the line, a
        ``describe`` with the line's descriptor toward the new peer, and
        a ``describe(noMedia)`` toward the old peer.
        """
        from ..protocol.codecs import NO_MEDIA  # local: rarely used
        old = self.active
        new_slot = self.call_slots[key]
        line_desc = self.seen_descriptors.get(self.line_slot)
        peer_desc = self.seen_descriptors.get(new_slot)
        if old is not None and old != key:
            old_slot = self.call_slots[old]
            self.raw(old_slot, Describe(self._no_media()))
        if peer_desc is not None:
            self.raw(self.line_slot, Describe(peer_desc))
        if line_desc is not None:
            self.raw(new_slot, Describe(line_desc))
        self.active = key

    def _no_media(self) -> Descriptor:
        return self._descriptors.no_media()

    def on_meta_signal(self, end: ChannelEnd, signal: MetaSignal) -> None:
        pass  # the naive PBX reacts to nothing it does not understand
