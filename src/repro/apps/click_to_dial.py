"""The Click-to-Dial box program of Fig. 6.

"The program takes its initial transition when a user 1, who is browsing
a Web site, clicks on a 'click-to-dial' link."  The box opens an audio
channel to user 1's telephone; once user 1 answers it tries the clicked
address, playing ringback while trying, busy tone if the callee is
unavailable, and finally flowlinks the two telephones.

The program below is a literal transcription of Fig. 6's five states
(``oneCall``, ``twoCalls``, ``busyTone``, ``ringback``, ``connected``)
with the same annotations and transition triggers, expressed in the
:mod:`repro.core.program` framework.
"""

from __future__ import annotations

from typing import Optional

from ..core.box import Box
from ..core.predicates import is_flowing
from ..core.program import (END, Program, State, Timeout, Transition,
                            flow_link, on_channel_down, on_meta, open_slot)
from ..media.resources import ToneGenerator
from ..network.network import Network
from ..protocol.channel import SignalingChannel
from ..protocol.codecs import AUDIO

__all__ = ["ClickToDialBox", "build_click_to_dial"]


def _from_ch2(program: Program, end, signal) -> bool:
    """Availability reports matter only when they come from channel 2
    (user 1's own device also reports availability on channel 1)."""
    box = program.box
    return box.channel2 is not None and end.channel is box.channel2


class ClickToDialBox(Box):
    """The Click-to-Dial application server.

    The box is configured with user 1's telephone address; ``click``
    starts the program with the clicked (callee) address.
    """

    def __init__(self, loop, name: str, cost: float = 0.0,
                 answer_timeout: float = 30.0):
        super().__init__(loop, name, cost=cost)
        self.answer_timeout = answer_timeout
        self.net: Optional[Network] = None
        self.caller_address: Optional[str] = None
        self.tone_address = "tones"
        self.channel1: Optional[SignalingChannel] = None
        self.channel2: Optional[SignalingChannel] = None
        self.channelT: Optional[SignalingChannel] = None
        self.program: Optional[Program] = None

    # -- configuration ------------------------------------------------------
    def configure(self, net: Network, caller_address: str,
                  tone_address: str = "tones") -> None:
        self.net = net
        self.caller_address = caller_address
        self.tone_address = tone_address

    # -- channel actions (the meta-actions of Fig. 6) --------------------------
    def _create_channel_1(self, program: Program) -> None:
        assert self.net is not None and self.caller_address is not None
        self.channel1 = self.net.dial(self, self.caller_address,
                                      name="%s-ch1" % self.name)
        self.name_slot("1a", self.channel1.end_for(self).slot())

    def _create_channel_2(self, program: Program) -> None:
        assert self.net is not None
        callee = program.data["callee"]
        self.channel2 = self.net.dial(self, callee,
                                      name="%s-ch2" % self.name)
        self.name_slot("2a", self.channel2.end_for(self).slot())

    def _create_channel_t(self, program: Program, tone: str) -> None:
        assert self.net is not None
        self.channelT = self.net.dial(self, "%s:%s"
                                      % (self.tone_address, tone),
                                      name="%s-chT" % self.name)
        self.name_slot("Ta", self.channelT.end_for(self).slot())

    def _ringback(self, program: Program) -> None:
        self._create_channel_t(program, "ringback")

    def _destroy_channel_2(self, program: Program) -> None:
        if self.channel2 is not None and self.channel2.active:
            self.channel2.end_for(self).tear_down()
        self.forget_slot("2a")
        self.channel2 = None

    def _destroy_channel_t(self, program: Program) -> None:
        if self.channelT is not None and self.channelT.active:
            self.channelT.end_for(self).tear_down()
        self.forget_slot("Ta")
        self.channelT = None

    def _destroy_everything(self, program: Program) -> None:
        for channel in (self.channel1, self.channel2, self.channelT):
            if channel is not None and channel.active:
                channel.end_for(self).tear_down()
        self.channel1 = self.channel2 = self.channelT = None

    # -- the program of Fig. 6 ---------------------------------------------------
    #: The slots the Fig. 6 program annotates; declared up front so the
    #: program constructor (and the static analyzer) can validate every
    #: annotation even though the channels are created lazily.
    PROGRAM_SLOTS = ("1a", "2a", "Ta")

    def fig6_states(self) -> dict:
        """The five-state machine of Fig. 6, as data.

        Factored out of :meth:`click` so the static analyzer
        (:mod:`repro.staticcheck`) can extract and lint the program
        without a network or a running scenario.
        """
        return {
            # Try to reach user 1's own telephone first.
            "oneCall": State(
                goals=(open_slot("1a", AUDIO),),
                transitions=(
                    Transition(is_flowing("1a"), "twoCalls",
                               action=self._create_channel_2),
                    Transition(on_channel_down(), END,
                               action=self._destroy_everything),
                ),
                timeout=Timeout(self.answer_timeout, END,
                                action=self._destroy_everything),
            ),
            # Waiting to hear whether the callee device is available.
            "twoCalls": State(
                goals=(open_slot("1a", AUDIO), open_slot("2a", AUDIO)),
                transitions=(
                    Transition(on_meta("unavailable", where=_from_ch2),
                               "busyTone", action=self._unavailable),
                    Transition(on_meta("available", where=_from_ch2),
                               "ringback", action=self._ringback),
                    Transition(is_flowing("2a"), "connected",
                               action=lambda p: None),
                    Transition(on_channel_down(), END,
                               action=self._destroy_everything),
                ),
            ),
            # The callee is busy: play user 1 a busy tone until they
            # abandon the call (destroying channel 1 ends the program).
            "busyTone": State(
                goals=(flow_link("1a", "Ta"),),
                transitions=(
                    Transition(on_channel_down(), END,
                               action=self._destroy_everything),
                ),
            ),
            # Ringback while still trying to open the audio channel to
            # user 2; note 2a keeps the same openSlot annotation, hence
            # the same goal object, across twoCalls -> ringback.
            "ringback": State(
                goals=(flow_link("1a", "Ta"), open_slot("2a", AUDIO)),
                transitions=(
                    Transition(is_flowing("2a"), "connected",
                               action=self._destroy_channel_t),
                    Transition(on_channel_down(), END,
                               action=self._destroy_everything),
                ),
            ),
            # Users 1 and 2 talk; the flowlink "will automatically
            # reconfigure IP addresses, ports, and codecs".
            "connected": State(
                goals=(flow_link("1a", "2a"),),
                transitions=(
                    Transition(on_channel_down(), END,
                               action=self._destroy_everything),
                ),
            ),
        }

    def click(self, callee_address: str) -> Program:
        """User 1 clicked a click-to-dial link for ``callee_address``."""
        program = Program(self, self.fig6_states(), initial="oneCall",
                          data={"callee": callee_address},
                          slots=self.PROGRAM_SLOTS)
        self.program = program
        self._create_channel_1(program)
        program.start()
        return program

    def _unavailable(self, program: Program) -> None:
        self._destroy_channel_2(program)
        self._create_channel_t(program, "busy")


def build_click_to_dial(net: Network, name: str = "ctd",
                        caller_address: str = "user1",
                        tone_address: str = "tones",
                        **kwargs) -> ClickToDialBox:
    """Create and configure a Click-to-Dial box plus its tone resource
    (registered at ``tone_address`` if nothing is there yet)."""
    box = net.box(name, cls=ClickToDialBox, **kwargs)
    box.configure(net, caller_address, tone_address)
    try:
        net.router.resolve(tone_address)
    except Exception:
        net.resource("%s-tones" % name, ToneGenerator, tone="ringback",
                     address=tone_address)
    return box
