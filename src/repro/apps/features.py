"""DFC-style feature boxes (Secs. I and II-B).

"The value of modularity in developing media services has been
demonstrated by the success of the Distributed Feature Composition
(DFC) architecture ...  a feature is implemented as an independent,
concurrent module in a signaling pipeline.  Because of this
independence, each feature can be simple and comprehensible, and
features are easy to add or change."

This module shows the primitives carrying that style: each feature is a
small box that can be dropped into a signaling path without knowledge
of its neighbours.  Composing them (e.g. do-not-disturb at the callee
in front of voicemail, behind a transparent forwarding feature at the
caller) exercises exactly the multi-server coordination the paper's
protocol exists for.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.box import Box
from ..core.predicates import is_closed, is_flowing
from ..core.program import (END, State, Timeout, Transition, close_slot,
                            flow_link, hold_slot, on_channel_down, on_meta)
from ..media.resources import AnnouncementPlayer
from ..network.network import Network
from ..protocol.channel import ChannelEnd, SignalingChannel
from ..protocol.codecs import AUDIO
from ..protocol.signals import ChannelUp, MetaSignal
from ..protocol.slot import Slot

__all__ = ["TransparentFeature", "DoNotDisturb", "CallForwarding",
           "VoicemailFeature", "dnd_profile", "voicemail_profile",
           "DND_SLOTS", "VOICEMAIL_SLOTS"]

#: Slot names of the feature profiles below.
DND_SLOTS = ("upstream", "downstream")
VOICEMAIL_SLOTS = ("upstream", "downstream", "vm")


def dnd_profile() -> Dict[str, State]:
    """The goal-annotation profile of :class:`DoNotDisturb`: transparent
    flowlink while idle; while engaged, "reject all incoming media
    channels (a closeslot toward the caller side)" and hold the
    protected user.  Static-analysis view for the lint catalog."""
    return {
        "transparent": State(
            goals=(flow_link("upstream", "downstream"),),
            transitions=(
                Transition(on_meta("app", "engage"), "engaged"),
                Transition(on_channel_down(), END),
            )),
        "engaged": State(
            goals=(close_slot("upstream"), hold_slot("downstream")),
            transitions=(
                Transition(on_meta("app", "disengage"), "transparent"),
                Transition(on_channel_down(), END),
            )),
    }


def voicemail_profile(answer_timeout: float = 10.0) -> Dict[str, State]:
    """The goal-annotation profile of :class:`VoicemailFeature`:
    transparent until the no-answer timer fires, then the caller is
    diverted to the greeting resource; announcement completion releases
    the call (closeslot toward the caller, END once it closes)."""
    return {
        "ringing": State(
            goals=(flow_link("upstream", "downstream"),),
            transitions=(
                Transition(is_flowing("downstream"), "answered"),
                Transition(on_channel_down(), END),
            ),
            timeout=Timeout(answer_timeout, "greeting")),
        "answered": State(
            goals=(flow_link("upstream", "downstream"),),
            transitions=(
                Transition(on_channel_down(), END),
            )),
        "greeting": State(
            goals=(hold_slot("downstream"), flow_link("upstream", "vm")),
            transitions=(
                Transition(on_meta("app", "announcement-done"),
                           "releasing"),
                Transition(on_channel_down(), END),
            )),
        "releasing": State(
            goals=(close_slot("upstream"),),
            transitions=(
                Transition(is_closed("upstream"), END),
                Transition(on_channel_down(), END),
            )),
    }


class TransparentFeature(Box):
    """A feature box currently doing nothing: one flowlink straight
    through.  The base for features that activate on demand — and the
    proof of the piecewise-protocol principle (Sec. X-A): with the
    feature idle, "there is no externally observable difference between
    a tunnel and two tunnels connected by a module acting
    transparently"."""

    def __init__(self, loop, name: str, cost: float = 0.0):
        super().__init__(loop, name, cost=cost)
        self.upstream: Optional[Slot] = None
        self.downstream: Optional[Slot] = None

    def splice(self, upstream: SignalingChannel,
               downstream: SignalingChannel) -> None:
        """Insert this feature between two channels."""
        self.upstream = upstream.end_for(self).slot()
        self.downstream = downstream.end_for(self).slot()
        self.pass_through()

    def pass_through(self) -> None:
        """Behave transparently."""
        assert self.upstream is not None and self.downstream is not None
        self.flow_link(self.upstream, self.downstream)


class DoNotDisturb(TransparentFeature):
    """Callee-side feature: while engaged, reject all incoming media
    channels (a closeslot toward the caller side); otherwise
    transparent."""

    def __init__(self, loop, name: str, cost: float = 0.0):
        super().__init__(loop, name, cost=cost)
        self.engaged = False

    def engage(self) -> None:
        self.engaged = True
        assert self.upstream is not None and self.downstream is not None
        # upstream = toward callers; downstream = toward the protected
        # user.  Reject callers, hold the user's side.
        self.close_slot(self.upstream)
        self.hold_slot(self.downstream)

    def disengage(self) -> None:
        self.engaged = False
        self.pass_through()


class CallForwarding(TransparentFeature):
    """Callee-side feature: when engaged, media channels are diverted
    to another address (a fresh channel is dialed and linked in)."""

    def __init__(self, loop, name: str, cost: float = 0.0):
        super().__init__(loop, name, cost=cost)
        self.net: Optional[Network] = None
        self.forward_to: Optional[str] = None
        self.diverted: Optional[SignalingChannel] = None

    def configure(self, net: Network, forward_to: str) -> None:
        self.net = net
        self.forward_to = forward_to

    def engage(self) -> None:
        """Divert: callers now reach ``forward_to``."""
        assert self.net is not None and self.forward_to is not None
        assert self.upstream is not None and self.downstream is not None
        self.diverted = self.net.dial(self, self.forward_to,
                                      name="%s-fwd" % self.name)
        target_slot = self.diverted.end_for(self).slot()
        self.hold_slot(self.downstream)
        self.flow_link(self.upstream, target_slot)

    def disengage(self) -> None:
        if self.diverted is not None and self.diverted.active:
            self.diverted.end_for(self).tear_down()
        self.diverted = None
        self.pass_through()


class VoicemailFeature(TransparentFeature):
    """Callee-side feature providing 'a persistent network presence ...
    for handheld devices' (Sec. I): if the user does not answer within
    ``answer_timeout``, the caller is diverted to a greeting resource.

    The greeting is an :class:`AnnouncementPlayer`; when it finishes,
    the whole call is released.
    """

    def __init__(self, loop, name: str, cost: float = 0.0,
                 answer_timeout: float = 10.0):
        super().__init__(loop, name, cost=cost)
        self.net: Optional[Network] = None
        self.greeting_address: Optional[str] = None
        self.answer_timeout = answer_timeout
        self.greeting_channel: Optional[SignalingChannel] = None
        self._timer = None
        self.took_message = False

    def configure(self, net: Network, greeting_address: str) -> None:
        self.net = net
        self.greeting_address = greeting_address

    def pass_through(self) -> None:
        super().pass_through()
        # Arm the no-answer timer whenever a call could be ringing.
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.node.set_timer(self.answer_timeout,
                                          self._maybe_divert)

    def _maybe_divert(self) -> None:
        self._timer = None
        assert self.upstream is not None and self.downstream is not None
        if self.downstream.is_flowing:
            return  # the user answered in time
        if not self.upstream.is_live:
            return  # nobody is calling
        assert self.net is not None and self.greeting_address is not None
        self.took_message = True
        self.greeting_channel = self.net.dial(
            self, self.greeting_address, name="%s-vm" % self.name)
        vm_slot = self.greeting_channel.end_for(self).slot()
        self.hold_slot(self.downstream)
        self.flow_link(self.upstream, vm_slot)

    def on_meta_signal(self, end: ChannelEnd, signal: MetaSignal) -> None:
        # The announcement player reports completion; release the call.
        if getattr(signal, "name", None) == "announcement-done":
            if self.upstream is not None and self.upstream.is_live:
                self.close_slot(self.upstream)
