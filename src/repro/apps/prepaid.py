"""The prepaid-card service of Figs. 2, 3, and 13.

"PC is an application server implementing a prepaid-card feature.  V is
a media resource providing a user interface for PC by means of audio
signaling."

:class:`PrepaidCardServer` is the *correct* server: its program is the
two-state machine of Sec. IV-B — "In Snapshots 1 and 4, the program is
in a state annotated ``flowLink(c,a), holdSlot(v)`` ...  A timeout event
(expiration of the prepaid talk time) causes a transition to the PC
state of Snapshots 2 and 3, which is annotated ``flowLink(c,v),
holdSlot(a)``.  A signal from V that the user has paid causes a
transition from this state to the other one."

:class:`PrepaidScenario` wires the full Fig. 3 deployment (A, B, C, V,
PBX, PC) with correct servers; :class:`ErroneousPrepaidScenario` wires
the same deployment with the naive servers of Fig. 2 and scripts its
four snapshots, making the failures observable on the media plane.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.box import Box
from ..core.program import (Program, State, Timeout, Transition, flow_link,
                            hold_slot, on_meta)
from ..media.device import UserDevice
from ..media.resources import InteractiveVoice
from ..network.network import Network
from ..protocol.channel import ChannelEnd, SignalingChannel
from ..protocol.codecs import AUDIO
from ..protocol.descriptor import Descriptor
from ..protocol.signals import (Describe, MetaSignal, Oack, Open,
                                TunnelSignal)
from ..protocol.slot import Slot
from .pbx import NaivePBX, PBX

__all__ = ["PrepaidCardServer", "PrepaidScenario",
           "NaivePrepaidServer", "ErroneousPrepaidScenario"]


class PrepaidCardServer(Box):
    """The correctly-programmed prepaid-card server PC (Fig. 3)."""

    def __init__(self, loop, name: str, talk_seconds: float = 30.0,
                 cost: float = 0.0):
        super().__init__(loop, name, cost=cost)
        self.talk_seconds = talk_seconds

    #: The slots the Sec. IV-B program annotates (c = caller, a = toward
    #: the callee path, v = interactive voice).
    PROGRAM_SLOTS = ("c", "a", "v")

    def program_states(self) -> dict:
        """The two-state machine of Sec. IV-B, as data — factored out of
        :meth:`wire` so the static analyzer (:mod:`repro.staticcheck`)
        can extract and lint it without a deployment.  The machine
        cycles forever by design (talk → collect → payment → talk), so
        the lint catalog suppresses RC102 for it."""
        return {
            "talking": State(
                goals=(flow_link("c", "a"), hold_slot("v")),
                timeout=Timeout(self.talk_seconds, "collect"),
            ),
            "collect": State(
                goals=(flow_link("c", "v"), hold_slot("a")),
                transitions=(
                    Transition(on_meta("app", "user-paid"), "talking"),
                ),
            ),
        }

    def wire(self, caller_slot: Slot, callee_slot: Slot,
             ivr_slot: Slot) -> Program:
        """Bind the three slots and build the two-state program."""
        self.name_slot("c", caller_slot)
        self.name_slot("a", callee_slot)
        self.name_slot("v", ivr_slot)
        return Program(self, self.program_states(), initial="talking",
                       slots=self.PROGRAM_SLOTS)


class PrepaidScenario:
    """The full, correct Fig. 3 deployment.

    Parties: telephone ``A`` behind a :class:`~repro.apps.pbx.PBX`;
    telephone ``B`` already in a call with A; telephone ``C`` calling A
    through the prepaid-card server ``PC``; interactive-voice resource
    ``V`` serving PC.
    """

    def __init__(self, net: Network, talk_seconds: float = 30.0,
                 verify_delay: float = 2.0):
        self.net = net
        self.a = net.device("A")
        self.b = net.device("B", auto_accept=True)
        self.c = net.device("C")
        self.v = net.resource("V", InteractiveVoice,
                              verify_delay=verify_delay)
        self.pbx = net.box("pbx", cls=PBX)
        net.router.register("A", self.pbx)
        self.pc = net.box("pc", cls=PrepaidCardServer,
                          talk_seconds=talk_seconds)

        # Permanent line channel A -- PBX.
        self.line = net.channel(self.a, self.pbx, name="line-A")
        self.pbx.attach_line(self.line)
        # B's existing call to A.
        self.call_b = net.channel(self.b, self.pbx, name="call-B")
        self.key_b = self.pbx.add_call(self.call_b, key="B")
        # C's channel to the prepaid server.
        self.ch_c = net.channel(self.c, self.pc, name="C-PC")
        # PC's channel toward A (routed through the PBX) and to V.
        self.ch_a = net.dial(self.pc, "A", name="PC-PBX")
        self.ch_v = net.channel(self.pc, self.v, name="PC-V")
        self.key_pc: Optional[str] = None
        self.program: Optional[Program] = None

    # -- driving the story -------------------------------------------------
    #
    # The PC program cycles forever by design (talk timer -> collect ->
    # payment -> talk timer ...), so the scenario advances simulated
    # time only as far as each snapshot requires instead of running to
    # quiescence.
    def _drain(self, dt: float = 0.01) -> None:
        """Let in-flight signaling converge without firing long timers."""
        self.net.run(dt)

    def establish_ab_call(self) -> None:
        """A and B get talking (the pre-history of Snapshot 1)."""
        self.b.open(self.call_b.end_for(self.b).slot(), AUDIO)
        self.a.open(self.line.end_for(self.a).slot(), AUDIO)
        self.pbx.switch_to(self.key_b)
        self._drain()

    def card_call_starts(self) -> None:
        """C dials through PC toward A; PC's program starts in
        ``talking``; A switches to the new call (Snapshot 1)."""
        self.program = self.pc.wire(
            caller_slot=self.ch_c.end_for(self.pc).slot(),
            callee_slot=self.ch_a.end_for(self.pc).slot(),
            ivr_slot=self.ch_v.end_for(self.pc).slot())
        self.c.open(self.ch_c.end_for(self.c).slot(), AUDIO)
        self.program.start()
        self._drain()
        # The PBX registered PC's incoming channel as a call.
        self.key_pc = [k for k in self.pbx.call_slots if k != self.key_b][0]
        self.pbx.switch_to(self.key_pc)
        self._drain()

    def run_until_funds_exhausted(self) -> None:
        """Let the prepaid talk timer expire (Snapshot 2)."""
        self.net.run(self.pc.talk_seconds + 0.001)
        self._drain()

    def switch_back_to_b(self) -> None:
        """A uses the PBX to return to B (Snapshot 3)."""
        self.pbx.switch_to(self.key_b)
        self._drain()

    def run_until_paid(self) -> None:
        """V completes verification; PC relinks C toward A
        (Snapshot 4)."""
        self.net.run(self.v.verify_delay + 0.001)
        self._drain()

    def switch_to_card_call(self) -> None:
        """A switches to the prepaid call (A's consent — contrast with
        Fig. 2, where PC forced the switch)."""
        assert self.key_pc is not None
        self.pbx.switch_to(self.key_pc)
        self._drain()


class NaivePrepaidServer(Box):
    """The uncoordinated prepaid server of Fig. 2.

    Like :class:`~repro.apps.pbx.NaivePBX` it records descriptors in
    passing, forwards media signals blindly (signals from the callee
    side always go to the caller; signals from the caller go to the
    current patch target), and implements its feature transitions by
    writing raw ``describe`` signals.
    """

    def __init__(self, loop, name: str, cost: float = 0.0):
        super().__init__(loop, name, cost=cost)
        self.c_slot: Optional[Slot] = None
        self.a_slot: Optional[Slot] = None
        self.v_slot: Optional[Slot] = None
        #: Where signals from the caller C are forwarded: "v" or "a".
        self.patch = "v"
        self.seen_descriptors: Dict[Slot, Descriptor] = {}
        #: Last *real* (non-noMedia) descriptor per slot — the identity
        #: of the endpoint behind it, remembered even after later hold
        #: (noMedia) describes pass through (Sec. VI-C: the server "has
        #: these descriptors available because it has recorded them as
        #: they passed through in previous signals").
        self.real_descriptors: Dict[Slot, Descriptor] = {}

    raw = staticmethod(NaivePBX.raw)

    def descriptor_of(self, slot: Slot) -> Descriptor:
        return self.real_descriptors[slot]

    def on_tunnel_signal(self, slot: Slot, signal: TunnelSignal) -> None:
        descriptor = getattr(signal, "descriptor", None)
        if descriptor is not None:
            self.seen_descriptors[slot] = descriptor
            if not descriptor.is_no_media:
                self.real_descriptors[slot] = descriptor
        target = self._forward_target(slot)
        if target is not None:
            self.raw(target, signal)

    def _forward_target(self, slot: Slot) -> Optional[Slot]:
        if slot is self.a_slot:
            return self.c_slot           # far side always reaches C
        if slot is self.c_slot:
            return self.v_slot if self.patch == "v" else self.a_slot
        return None                      # V terminates at PC

    def on_meta_signal(self, end: ChannelEnd, signal: MetaSignal) -> None:
        pass

    # -- feature actions (raw, uncoordinated) --------------------------------
    def begin_card_entry(self) -> None:
        """Connect the caller to V for card-number entry.

        The caller's ``open`` was already forwarded to V when it arrived
        (the default patch is "v"); this transition only fixes the patch
        so the V leg keeps carrying the dialogue.
        """
        assert self.real_descriptors.get(self.c_slot) is not None
        self.patch = "v"

    def place_call(self) -> None:
        """Open toward the callee and patch the caller to it."""
        desc_c = self.real_descriptors[self.c_slot]
        self.raw(self.v_slot, Describe(self._descriptors.no_media()))
        self.raw(self.a_slot, Open(AUDIO, desc_c))
        self.patch = "a"

    def funds_exhausted(self) -> None:
        """Snapshot 2: 'a signal to A telling it to stop sending media
        ... a signal to C telling it to send media to the resource V,
        and a signal to V telling it to send media to C'."""
        self.raw(self.a_slot, Describe(self._descriptors.no_media()))
        self.raw(self.c_slot, Describe(self.real_descriptors[self.v_slot]))
        self.raw(self.v_slot, Describe(self.real_descriptors[self.c_slot]))
        self.patch = "v"

    def payment_verified(self) -> None:
        """Snapshot 4: 'PC sends a signal to A telling it to send to C,
        a signal to C telling it to send to A, and a signal to V telling
        it to stop sending media'."""
        self.raw(self.a_slot, Describe(self.real_descriptors[self.c_slot]))
        self.raw(self.c_slot, Describe(self.real_descriptors[self.a_slot]))
        self.raw(self.v_slot, Describe(self._descriptors.no_media()))
        self.patch = "a"


class ErroneousPrepaidScenario:
    """The Fig. 2 deployment: same parties, uncoordinated servers.

    Channels are created lenient (``strict=False``) because the naive
    servers knowingly violate per-tunnel protocol state.  The four
    ``snapshot*`` methods reproduce the paper's four snapshots; the
    failures are then visible on the media plane:

    * after Snapshot 3, V has lost its audio input from C (one-way
      media);
    * after Snapshot 4, A has been switched to C without its user's
      action, and B transmits into the void.
    """

    def __init__(self, net: Network, verify_delay: float = 2.0):
        self.net = net
        self.a = net.device("A")
        self.b = net.device("B", auto_accept=True)
        self.c = net.device("C")
        self.v = net.resource("V", InteractiveVoice,
                              verify_delay=verify_delay)
        self.pbx = net.box("pbx", cls=NaivePBX)
        self.pc = net.box("pc", cls=NaivePrepaidServer)

        self.line = net.channel(self.a, self.pbx, name="line-A",
                                strict=False)
        self.pbx.attach_line(self.line)
        self.call_b = net.channel(self.b, self.pbx, name="call-B",
                                  strict=False)
        self.pbx.add_call(self.call_b, "B")
        self.ch_c = net.channel(self.c, self.pc, name="C-PC", strict=False)
        self.ch_a = net.channel(self.pc, self.pbx, name="PC-PBX",
                                strict=False)
        self.pbx.add_call(self.ch_a, "PC")
        self.ch_v = net.channel(self.pc, self.v, name="PC-V", strict=False)
        self.pc.c_slot = self.ch_c.end_for(self.pc).slot()
        self.pc.a_slot = self.ch_a.end_for(self.pc).slot()
        self.pc.v_slot = self.ch_v.end_for(self.pc).slot()

    def establish_ab_call(self) -> None:
        """Pre-history: A and B talking through the naive PBX."""
        self.pbx.active = "B"
        self.b.open(self.call_b.end_for(self.b).slot(), AUDIO)
        self.net.settle()
        self.a.answer()  # A's phone rang with B's forwarded open
        self.net.settle()

    def snapshot1(self) -> None:
        """C calls A on the prepaid card; A switches to C."""
        self.c.open(self.ch_c.end_for(self.c).slot(), AUDIO)
        self.net.settle()
        self.pc.begin_card_entry()
        self.net.settle()
        self.pc.place_call()
        self.net.settle()
        self.pbx.answer_call("PC")
        self.pbx.switch_to("PC")
        self.net.settle()

    def snapshot2(self) -> None:
        """The prepaid funds run out."""
        self.pc.funds_exhausted()
        self.net.settle()

    def snapshot3(self) -> None:
        """A switches back to B; the *do-not-send* toward C passes
        through PC untouched, starving V of input."""
        self.pbx.switch_to("B")
        self.net.settle()

    def snapshot4(self) -> None:
        """V verifies the funds; PC reconnects C with A — switching A
        away from B without A's permission."""
        self.pc.payment_verified()
        self.net.settle()
