"""Example application servers built on the public API (Sec. IV-B)."""

from .click_to_dial import ClickToDialBox, build_click_to_dial
from .collab_tv import CollabBox, CollaborativeTV, MOVIE_TUNNELS
from .conference import ConferenceServer, build_conference
from .pbx import NaivePBX, PBX
from .prepaid import (ErroneousPrepaidScenario, NaivePrepaidServer,
                      PrepaidCardServer, PrepaidScenario)

__all__ = [
    "ClickToDialBox", "build_click_to_dial",
    "CollabBox", "CollaborativeTV", "MOVIE_TUNNELS",
    "ConferenceServer", "build_conference",
    "NaivePBX", "PBX",
    "ErroneousPrepaidScenario", "NaivePrepaidServer",
    "PrepaidCardServer", "PrepaidScenario",
]
