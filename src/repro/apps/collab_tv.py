"""Collaborative television (Fig. 8, after Kahmann et al.).

"Endpoint A is a large television in a family room.  C is a laptop in a
daughter's bedroom.  They are sharing a particular movie ...  This
signaling channel has five active tunnels controlling five media
channels.  Because they are all in the same signaling channel, the media
is all from the same movie at the same time point.  There are video and
English audio channels for the two video devices, which differ because
the two devices have different media quality and use different codecs.
There is also a French audio channel to the headphones of a
French-speaking friend in the family room (endpoint B)."

The deployment is deliberately distributed and compositional: device C
reaches the movie through *two* collaboration boxes in series (its own
and A's), so its signaling path contains two flowlinks.  The
``leave_and_fast_forward`` scenario reproduces the paper's story: "the
daughter decides to leave the collaboration and fast-forward to the end
of the movie.  After this change is completed, the collaboration box of
C would have its own signaling channel to the movie server ...  There
would no longer be a signaling channel between the two collaboration
boxes."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.box import Box
from ..core.program import (END, State, Transition, flow_link,
                            on_channel_down, on_meta)
from ..media.device import UserDevice
from ..media.resources import MovieServer
from ..network.network import Network
from ..protocol.channel import SignalingChannel
from ..protocol.codecs import (AUDIO, G711, H263, MPEG4_HD, VIDEO, Codec)
from ..protocol.signals import AppMeta
from ..protocol.slot import Slot

__all__ = ["CollabBox", "CollaborativeTV", "MOVIE_TUNNELS",
           "DEVICE_CODECS", "sharing_profile", "PROFILE_SLOTS",
           "PROFILE_MEDIA"]

#: The five tunnels of the shared movie channel in Fig. 8.
MOVIE_TUNNELS = ("video-A", "audio-A", "video-C", "audio-C", "audio-fr-B")

#: Advertised codec preference lists per device (priority-ordered,
#: best first — Sec. VI-B).  Used both to configure the deployment and
#: as the lint catalog's protocol-hygiene input.
DEVICE_CODECS: Dict[str, Dict[str, Tuple[Codec, ...]]] = {
    "TV": {VIDEO: (MPEG4_HD,), AUDIO: (G711,)},
    "laptop": {VIDEO: (H263,), AUDIO: (G711,)},
    "headphones": {AUDIO: (G711,)},
}

#: Slot names of A's collaboration box in Fig. 8, with their media:
#: device-facing slots on the left, movie-channel tunnels on the right.
PROFILE_SLOTS = ("tv-video", "tv-audio", "phones-fr",
                 "chain-video", "chain-audio",
                 "movie-video-A", "movie-audio-A",
                 "movie-video-C", "movie-audio-C", "movie-audio-fr")
PROFILE_MEDIA = {
    "tv-video": VIDEO, "tv-audio": AUDIO, "phones-fr": AUDIO,
    "chain-video": VIDEO, "chain-audio": AUDIO,
    "movie-video-A": VIDEO, "movie-audio-A": AUDIO,
    "movie-video-C": VIDEO, "movie-audio-C": AUDIO,
    "movie-audio-fr": AUDIO,
}


def sharing_profile() -> Dict[str, State]:
    """The goal-annotation profile of A's collaboration box.

    While the movie is shared, five flowlinks join device tunnels to
    movie tunnels; when C leaves (the ``leave_and_fast_forward``
    story), the two chain links disappear and the rest stay.  This is
    the static-analysis view of :class:`CollaborativeTV`'s imperative
    wiring for the lint catalog — and the medium map above lets the
    linter check ``require_medium_match`` on every link statically.
    """
    family_links = (
        flow_link("tv-video", "movie-video-A"),
        flow_link("tv-audio", "movie-audio-A"),
        flow_link("phones-fr", "movie-audio-fr"),
    )
    return {
        "shared": State(
            goals=family_links + (
                flow_link("chain-video", "movie-video-C"),
                flow_link("chain-audio", "movie-audio-C"),
            ),
            transitions=(
                Transition(on_meta("app", "leave"), "split"),
                Transition(on_channel_down(), END),
            )),
        "split": State(
            goals=family_links,
            transitions=(
                Transition(on_channel_down(), END),
            )),
    }


class CollabBox(Box):
    """A collaborative-control box.

    It owns (at most) one channel to the movie server — or to an
    upstream collaboration box — and flowlinks device tunnels onto movie
    tunnels.  Movie transport controls (pause/play/seek) are mediated by
    the box that holds the server channel: "The control box for A has
    control of the movie, so that commands to pause or play the movie
    are mediated by it, and affect all five media channels."
    """

    def __init__(self, loop, name: str, cost: float = 0.0):
        super().__init__(loop, name, cost=cost)
        self.movie_channel: Optional[SignalingChannel] = None

    def attach_movie_channel(self, channel: SignalingChannel) -> None:
        self.movie_channel = channel

    def link(self, device_slot: Slot, movie_tunnel: str) -> None:
        assert self.movie_channel is not None
        self.flow_link(device_slot,
                       self.movie_channel.end_for(self).slot(movie_tunnel))

    # transport controls, forwarded on the movie channel
    def pause(self) -> None:
        assert self.movie_channel is not None
        self.movie_channel.end_for(self).send_meta(AppMeta("pause"))

    def play(self) -> None:
        assert self.movie_channel is not None
        self.movie_channel.end_for(self).send_meta(AppMeta("play"))

    def seek(self, position: float) -> None:
        assert self.movie_channel is not None
        self.movie_channel.end_for(self).send_meta(
            AppMeta("seek", {"position": position}))


class CollaborativeTV:
    """The full Fig. 8 deployment, plus the leave-collaboration story."""

    def __init__(self, net: Network, title: str = "heidi"):
        self.net = net
        self.title = title
        # Devices: big TV (HD), laptop (lower quality), French friend's
        # headphones (audio only).
        self.tv = net.device("TV", auto_accept=True,
                             codecs=DEVICE_CODECS["TV"])
        self.laptop = net.device("laptop", auto_accept=True,
                                 codecs=DEVICE_CODECS["laptop"])
        self.phones = net.device("headphones", auto_accept=True,
                                 codecs=DEVICE_CODECS["headphones"])
        self.movie = net.resource("movie-server", MovieServer,
                                  catalog=(title,))
        self.box_a = net.box("collab-A", cls=CollabBox)
        self.box_c = net.box("collab-C", cls=CollabBox)

        # A's box holds the shared movie channel with five tunnels.
        self.movie_ch = net.channel(self.box_a, self.movie,
                                    tunnels=MOVIE_TUNNELS,
                                    target="movie:%s" % title,
                                    name="movie-shared")
        self.box_a.attach_movie_channel(self.movie_ch)

        # Device channels.
        self.tv_ch = net.channel(self.tv, self.box_a,
                                 tunnels=("video", "audio"), name="tv-A")
        self.phones_ch = net.channel(self.phones, self.box_a,
                                     tunnels=("audio-fr",), name="phones-B")
        self.laptop_ch = net.channel(self.laptop, self.box_c,
                                     tunnels=("video", "audio"),
                                     name="laptop-C")
        # C's box chains through A's box with matching tunnels.
        self.chain_ch = net.channel(self.box_c, self.box_a,
                                    tunnels=("video", "audio"),
                                    name="collab-chain")

        # Flowlinks at A's box.
        self.box_a.link(self.tv_ch.end_for(self.box_a).slot("video"),
                        "video-A")
        self.box_a.link(self.tv_ch.end_for(self.box_a).slot("audio"),
                        "audio-A")
        self.box_a.link(self.phones_ch.end_for(self.box_a).slot("audio-fr"),
                        "audio-fr-B")
        self.box_a.link(self.chain_ch.end_for(self.box_a).slot("video"),
                        "video-C")
        self.box_a.link(self.chain_ch.end_for(self.box_a).slot("audio"),
                        "audio-C")
        # Flowlinks at C's box: laptop tunnels onto the chain channel.
        for tid in ("video", "audio"):
            self.box_c.flow_link(
                self.laptop_ch.end_for(self.box_c).slot(tid),
                self.chain_ch.end_for(self.box_c).slot(tid))

        self.split_ch: Optional[SignalingChannel] = None

    # ------------------------------------------------------------------
    # watching
    # ------------------------------------------------------------------
    def start_watching(self) -> None:
        """Every device opens its media channels."""
        self.tv.open(self.tv_ch.end_for(self.tv).slot("video"), VIDEO)
        self.tv.open(self.tv_ch.end_for(self.tv).slot("audio"), AUDIO)
        self.phones.open(
            self.phones_ch.end_for(self.phones).slot("audio-fr"), AUDIO)
        self.laptop.open(
            self.laptop_ch.end_for(self.laptop).slot("video"), VIDEO)
        self.laptop.open(
            self.laptop_ch.end_for(self.laptop).slot("audio"), AUDIO)
        self.net.settle()

    def shared_session(self):
        """The movie session every watcher currently shares."""
        return self.movie.session_for_end(
            self.movie_ch.end_for(self.movie))

    # ------------------------------------------------------------------
    # the leave-and-fast-forward scenario
    # ------------------------------------------------------------------
    def leave_and_fast_forward(self, position: float) -> None:
        """C leaves the collaboration: its box gets its own channel to
        the movie server (own time pointer), the chain channel between
        the two collaboration boxes disappears, and C fast-forwards."""
        # C's box gets its own movie channel.
        self.split_ch = self.net.channel(
            self.box_c, self.movie, tunnels=("video-C", "audio-C"),
            target="movie:%s" % self.title, name="movie-split")
        self.box_c.attach_movie_channel(self.split_ch)
        # Relink the laptop tunnels onto the new channel...
        self.box_c.link(self.laptop_ch.end_for(self.box_c).slot("video"),
                        "video-C")
        self.box_c.link(self.laptop_ch.end_for(self.box_c).slot("audio"),
                        "audio-C")
        # ...and destroy the chain between the collaboration boxes.
        self.chain_ch.end_for(self.box_c).tear_down()
        self.net.settle()
        # C now controls its own view of the movie.
        self.box_c.seek(position)
        self.net.settle()
