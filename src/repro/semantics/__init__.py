"""Formal specification of compositional semantics (Sec. V)."""

from .ltl import (always, always_eventually, eventually, eventually_always,
                  holds_at_end)
from .monitor import PathMonitor, PathSnapshot, SpecViolation
from .path import SignalingPath, all_paths, endpoint_role, trace_path
from .spec import (both_closed, both_flowing, check_path_now,
                   descriptors_settled, expected_property,
                   EXPECTED_PROPERTY)

__all__ = [
    "always", "always_eventually", "eventually", "eventually_always",
    "holds_at_end",
    "PathMonitor", "PathSnapshot", "SpecViolation",
    "SignalingPath", "all_paths", "endpoint_role", "trace_path",
    "both_closed", "both_flowing", "check_path_now",
    "descriptors_settled", "expected_property", "EXPECTED_PROPERTY",
]
