"""Finite-trace temporal operators (stability and recurrence).

The paper specifies path correctness with two linear-temporal-logic
shapes: stability ``◇□P`` ("eventually the path reaches P and remains
there") and recurrence ``□◇P`` ("the path always eventually returns to
P").  Two evaluation modes are provided:

* **finite traces with stutter extension** — a simulation trace is
  finite; its last state is assumed to repeat forever.  Under that
  reading both shapes reduce to conditions on suffixes, implemented
  here.  This is what the runtime monitor uses.

* **state graphs with cycles** — used by the model checker
  (:mod:`repro.verification.properties`), where infinite behaviours are
  lassos; that module implements the cycle-based criteria.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

__all__ = [
    "eventually_always", "always_eventually", "eventually", "always",
    "holds_at_end",
]

S = TypeVar("S")
Pred = Callable[[S], bool]


def always(pred: Pred, trace: Sequence[S]) -> bool:
    """``□P`` on a finite trace: P at every state."""
    return all(pred(s) for s in trace)


def eventually(pred: Pred, trace: Sequence[S]) -> bool:
    """``◇P`` on a finite trace: P at some state."""
    return any(pred(s) for s in trace)


def eventually_always(pred: Pred, trace: Sequence[S]) -> bool:
    """``◇□P`` with stutter extension: some suffix satisfies P at every
    state (the empty-trace case is vacuously false)."""
    if not trace:
        return False
    suffix_ok = False
    for i in range(len(trace) - 1, -1, -1):
        if not pred(trace[i]):
            break
        suffix_ok = True
    return suffix_ok


def always_eventually(pred: Pred, trace: Sequence[S]) -> bool:
    """``□◇P`` with stutter extension.

    On a finite trace whose last state repeats forever, ``□◇P`` holds
    iff the *final* state satisfies P: from any point, P must recur, and
    after the trace ends only the last state ever occurs again.
    """
    if not trace:
        return False
    return pred(trace[-1])


def holds_at_end(pred: Pred, trace: Sequence[S]) -> bool:
    """P at the final state (what both shapes demand after quiescence)."""
    return bool(trace) and pred(trace[-1])
