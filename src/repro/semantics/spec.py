"""The compositional semantics of Sec. V, as checkable predicates.

For each signaling path there are two distinguished path states:

* ``bothClosed``: both endpoints closed, no possibility of media flow;
* ``bothFlowing``: both endpoints flowing, same medium, and the
  implementation state correctly reflects the endpoints' mute flags
  (via the ``enabled`` history variables of Sec. VI-C).

Six path types arise from the goals controlling the two ends; each type
carries a temporal property (stability ``◇□P`` or recurrence ``□◇P``)
listed in :data:`EXPECTED_PROPERTY`.

A note on direction naming: the paper's Sec. V says ``Lenabled`` covers
right-to-left packets while its Sec. VI-C update rule ("becomes true
when the left endpoint ... sends a selector with a real codec") makes it
cover left-to-right (a selector declares an intention to *send*).  The
two sections disagree on the name only; the invariant content is
identical.  We adopt the well-defined form: for each direction,
``enabled == ¬senderMuteOut ∧ ¬receiverMuteIn``, with ``enabled`` true
iff the sender has sent a real selector while flowing.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..media.endpoint import MediaEndpoint
from ..protocol.slot import Slot
from .path import SignalingPath, endpoint_role

__all__ = [
    "both_closed", "both_flowing", "descriptors_settled",
    "expected_property", "EXPECTED_PROPERTY", "check_path_now",
]

#: Path type → temporal property, from Sec. V.  Types are normalized
#: (sorted) role pairs; "user" ends are typed by what their user wants
#: at check time, so they do not appear here.
EXPECTED_PROPERTY = {
    ("close", "close"): "stability-closed",       # ◇□ bothClosed
    ("close", "hold"): "stability-closed",        # ◇□ bothClosed
    ("close", "open"): "stability-no-flow",       # ◇□ ¬bothFlowing
    ("hold", "open"): "recurrence-flowing",       # □◇ bothFlowing
    ("open", "open"): "recurrence-flowing",       # □◇ bothFlowing
    ("hold", "hold"): "stability-closed-or-recurrence-flowing",
}


def both_closed(path: SignalingPath) -> bool:
    """``Lclosed ∧ Rclosed``."""
    return path.left.is_closed and path.right.is_closed


def _mute_flags(slot: Slot) -> Tuple[bool, bool]:
    """(mute_in, mute_out) for a path endpoint.

    Genuine media endpoints carry user-chosen flags; a server slot
    masquerading as an endpoint mutes both directions (Sec. IV-A).
    """
    owner = slot.channel_end.owner
    if isinstance(owner, MediaEndpoint):
        port = owner.port(slot)
        return (port.mute_in, port.mute_out)
    return (True, True)


def _enabled_out(slot: Slot) -> bool:
    """The ``enabled`` history variable for the direction this endpoint
    transmits: it has sent a real selector and is flowing."""
    return (slot.is_flowing and slot.selector_sent is not None
            and slot.selector_sent.codec.is_real)


def descriptors_settled(path: SignalingPath) -> bool:
    """The model-checking form of ``bothFlowing`` (Sec. VIII-A): each
    end has received the descriptor most recently sent by the other end,
    and a selector answering its own most recent descriptor."""
    left, right = path.left, path.right
    if left.local_descriptor is None or right.local_descriptor is None:
        return False
    if left.remote_descriptor is None or right.remote_descriptor is None:
        return False
    if left.remote_descriptor.id != right.local_descriptor.id:
        return False
    if right.remote_descriptor.id != left.local_descriptor.id:
        return False
    if left.selector_received is None or \
            left.selector_received.answers != left.local_descriptor.id:
        return False
    if right.selector_received is None or \
            right.selector_received.answers != right.local_descriptor.id:
        return False
    return True


def both_flowing(path: SignalingPath) -> bool:
    """The full Sec. V ``bothFlowing`` definition."""
    left, right = path.left, path.right
    if not (left.is_flowing and right.is_flowing):
        return False
    if left.medium != right.medium:
        return False
    if not descriptors_settled(path):
        return False
    l_in, l_out = _mute_flags(left)
    r_in, r_out = _mute_flags(right)
    # left-to-right direction
    if _enabled_out(left) != ((not l_out) and (not r_in)):
        return False
    # right-to-left direction
    if _enabled_out(right) != ((not r_out) and (not l_in)):
        return False
    return True


def expected_property(path: SignalingPath) -> Optional[str]:
    """The temporal property this path must satisfy, or ``None`` when an
    end is a user device or an uncontrolled slot (user intent decides)."""
    return EXPECTED_PROPERTY.get(path.path_type())


def check_path_now(path: SignalingPath) -> Optional[str]:
    """Check the path's *stable-state* obligation at this instant.

    This is the finite-trace reading of the temporal specification: once
    the system has quiesced, ``◇□P`` and ``□◇P`` both require ``P``
    now (the suffix is a stutter of the current state).  Returns an
    error string, or ``None`` when the path conforms.
    """
    prop = expected_property(path)
    if prop is None:
        return None
    if prop == "stability-closed":
        if not both_closed(path):
            return "expected bothClosed, got %s/%s" % (
                path.left.state, path.right.state)
    elif prop == "stability-no-flow":
        if both_flowing(path):
            return "expected never bothFlowing, but path is flowing"
    elif prop == "recurrence-flowing":
        if not both_flowing(path):
            return "expected bothFlowing, got %s/%s" % (
                path.left.state, path.right.state)
    elif prop == "stability-closed-or-recurrence-flowing":
        if not (both_closed(path) or both_flowing(path)):
            return "expected bothClosed or bothFlowing, got %s/%s" % (
                path.left.state, path.right.state)
    return None
