"""Signaling-path extraction (Sec. III-A).

"A signaling path is a maximal chain of tunnels and flowlinks, where the
tunnels and flowlinks meet at slots.  Each signaling path corresponds,
at any given time, to an actual or potential media channel between the
path endpoints."

Paths are *snapshots*: they change whenever a flowlink is created or
destroyed, so extraction is re-run whenever a specification is checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..core.box import Box
from ..core.flowlink import FlowLink
from ..core.goals import CloseSlot, HoldSlot, OpenSlot
from ..protocol.channel import SignalingAgent, SignalingChannel
from ..protocol.errors import ConfigurationError
from ..protocol.slot import Slot

__all__ = ["SignalingPath", "trace_path", "all_paths", "endpoint_role"]


def _flowlink_at(slot: Slot) -> Optional[FlowLink]:
    """The flowlink controlling ``slot`` at its owner, if any."""
    owner = slot.channel_end.owner
    if isinstance(owner, Box):
        goal = owner.maps.goal_for(slot)
        if isinstance(goal, FlowLink):
            return goal
    return None


def endpoint_role(slot: Slot) -> str:
    """Classify a path-endpoint slot for the Sec. V path typing.

    Returns one of ``"open"``, ``"close"``, ``"hold"`` for the three
    single-slot goals, ``"user"`` for a genuine media endpoint (whose
    user plays the role of an open/close/hold goal with free mute
    choice, Sec. V), or ``"none"`` for an uncontrolled server slot.
    """
    owner = slot.channel_end.owner
    if isinstance(owner, Box):
        goal = owner.maps.goal_for(slot)
        if isinstance(goal, OpenSlot):
            return "open"
        if isinstance(goal, CloseSlot):
            return "close"
        if isinstance(goal, HoldSlot):
            return "hold"
        return "none"
    return "user"


@dataclass
class SignalingPath:
    """A maximal chain of tunnels and flowlinks.

    ``slots`` lists every slot on the path from left to right; the path
    endpoints are ``slots[0]`` and ``slots[-1]``.  ``flowlinks`` lists
    the interior flowlinks, and ``hops`` is the number of tunnels
    (signaling channels crossed).
    """

    slots: List[Slot]
    flowlinks: List[FlowLink] = field(default_factory=list)

    @property
    def left(self) -> Slot:
        return self.slots[0]

    @property
    def right(self) -> Slot:
        return self.slots[-1]

    @property
    def hops(self) -> int:
        """Number of tunnels in the chain."""
        return len(self.slots) // 2

    @property
    def left_owner(self) -> SignalingAgent:
        return self.left.channel_end.owner

    @property
    def right_owner(self) -> SignalingAgent:
        return self.right.channel_end.owner

    def path_type(self) -> Tuple[str, str]:
        """The (left role, right role) pair, normalized so symmetric
        pairs compare equal (close ≤ hold ≤ open ≤ user ≤ none)."""
        order = {"close": 0, "hold": 1, "open": 2, "user": 3, "none": 4}
        roles = sorted((endpoint_role(self.left), endpoint_role(self.right)),
                       key=lambda r: order[r])
        return (roles[0], roles[1])

    def describe(self) -> str:
        """Human-readable rendering (for examples and logs)."""
        parts = []
        for i, slot in enumerate(self.slots):
            if i % 2 == 0:
                parts.append("%s(%s)" % (slot.channel_end.owner.name,
                                         slot.state))
            else:
                parts.append("%s(%s)" % (slot.channel_end.owner.name,
                                         slot.state))
        return " -- ".join(parts)

    def __len__(self) -> int:
        return len(self.slots)


def trace_path(start: Slot, _limit: int = 1000) -> SignalingPath:
    """Trace the maximal chain containing ``start``.

    ``start`` may be any slot on the path; tracing extends in both
    directions until it reaches slots not assigned to flowlinks.
    """
    # Walk left from start, then reverse, then walk right.
    def extend(slot: Slot, acc: List[Slot], links: List[FlowLink]) -> None:
        steps = 0
        current = slot
        while True:
            steps += 1
            if steps > _limit:
                raise ConfigurationError(
                    "signaling path too long or cyclic at %s" % current.name)
            peer = current.channel_end.peer_slot(current.tunnel_id)
            acc.append(peer)
            link = _flowlink_at(peer)
            if link is None:
                return
            other = link.other(peer)
            links.append(link)
            acc.append(other)
            current = other

    left_slots: List[Slot] = []
    left_links: List[FlowLink] = []
    right_slots: List[Slot] = []
    right_links: List[FlowLink] = []

    # The chain through ``start`` itself: start may sit inside a flowlink.
    link = _flowlink_at(start)
    if link is None:
        # start is a path endpoint; extend right only.
        extend(start, right_slots, right_links)
        slots = [start] + right_slots
        links = right_links
    else:
        other = link.other(start)
        extend(other, left_slots, left_links)
        extend(start, right_slots, right_links)
        slots = list(reversed(left_slots)) + [other, start] + right_slots
        links = list(reversed(left_links)) + [link] + right_links
    return SignalingPath(slots, links)


def all_paths(channels: List[SignalingChannel]) -> List[SignalingPath]:
    """Every distinct signaling path over the live tunnels of
    ``channels``."""
    seen: Set[int] = set()
    paths: List[SignalingPath] = []
    for channel in channels:
        if not channel.active:
            continue
        for tid in channel.tunnel_ids:
            slot = channel.ends[0].slot(tid)
            path = trace_path(slot)
            key = min(id(path.left), id(path.right)), \
                max(id(path.left), id(path.right))
            if key in seen:
                continue
            seen.add(key)
            paths.append(path)
    return paths
