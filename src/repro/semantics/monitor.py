"""Runtime monitor: assert Sec. V path specifications over a running
simulation.

The monitor samples the state of every signaling path at event
granularity, producing per-path traces that the finite-trace operators
of :mod:`repro.semantics.ltl` evaluate.  The common pattern in tests::

    monitor = PathMonitor(net)
    ... drive scenario ...
    net.settle()
    monitor.assert_all_conform()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..network.network import Network
from .path import SignalingPath, all_paths
from .spec import both_closed, both_flowing, check_path_now

__all__ = ["PathSnapshot", "PathMonitor", "SpecViolation"]


class SpecViolation(AssertionError):
    """A signaling path failed its Sec. V obligation after quiescence."""


@dataclass
class PathSnapshot:
    """One sampled observation of one path."""

    time: float
    left_state: str
    right_state: str
    closed: bool
    flowing: bool


class PathMonitor:
    """Extracts paths on demand and checks their specifications."""

    def __init__(self, net: Network):
        self.net = net
        self.history: Dict[Tuple[str, str], List[PathSnapshot]] = {}

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def paths(self) -> List[SignalingPath]:
        """Current signaling paths of the network."""
        return all_paths(self.net.channels)

    def sample(self) -> None:
        """Record one snapshot of every current path."""
        for path in self.paths():
            key = (path.left.name, path.right.name)
            self.history.setdefault(key, []).append(PathSnapshot(
                time=self.net.now,
                left_state=path.left.state,
                right_state=path.right.state,
                closed=both_closed(path),
                flowing=both_flowing(path)))

    def run_sampling(self, duration: float, interval: float) -> None:
        """Advance the network, sampling every ``interval`` seconds."""
        steps = max(1, int(duration / interval))
        for _ in range(steps):
            self.net.run(interval)
            self.sample()

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------
    def violations(self) -> List[Tuple[SignalingPath, str]]:
        """Paths violating their stable-state obligation right now."""
        found = []
        for path in self.paths():
            error = check_path_now(path)
            if error is not None:
                found.append((path, error))
        return found

    def assert_all_conform(self) -> None:
        """Raise :class:`SpecViolation` if any path misbehaves."""
        problems = self.violations()
        if problems:
            lines = ["%d path specification violation(s):" % len(problems)]
            for path, error in problems:
                lines.append("  %s: %s" % (path.describe(), error))
            raise SpecViolation("\n".join(lines))

    def assert_flowing(self, path: SignalingPath) -> None:
        if not both_flowing(path):
            raise SpecViolation(
                "path not bothFlowing: %s" % path.describe())

    def assert_closed(self, path: SignalingPath) -> None:
        if not both_closed(path):
            raise SpecViolation(
                "path not bothClosed: %s" % path.describe())
