"""SIP user agents: the transactional base and media endpoints.

The base class :class:`SipUA` implements the transaction discipline the
paper contrasts with its own protocol (Sec. IX-B): one INVITE
transaction at a time per dialog, 491 on glare, and the RFC 3261
randomized retry windows.  :class:`SipEndpointUA` is a media endpoint:
it answers offers, produces fresh offers when solicited by an offerless
INVITE, and tracks where it is currently sending media (the quantity the
latency experiments measure).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..network.address import Address
from ..network.eventloop import EventLoop
from ..network.node import Node
from ..protocol.codecs import Codec, codecs_for_medium, AUDIO
from .dialog import DialogEnd
from .messages import (ACK, BYE, INVITE, OK, REQUEST_PENDING, SipMessage,
                       SipRequest, SipResponse)
from .sdp import MediaDescription, SdpFactory

__all__ = ["SipError", "SipUA", "SipEndpointUA"]

Txn = Dict[str, Any]


class SipError(RuntimeError):
    """A SIP transaction rule was violated (e.g. overlapping INVITE
    transactions on one dialog, which RFC 3261 forbids)."""


class SipUA:
    """Base SIP entity: transaction bookkeeping over dialog ends."""

    def __init__(self, loop: EventLoop, name: str, cost: float = 0.0):
        self.loop = loop
        self.name = name
        self.node = Node(loop, name=name, cost=cost)
        self.dialog_ends: List[DialogEnd] = []
        #: Number of 491s this entity received (glare observations).
        self.glares_seen = 0

    def adopt_dialog(self, end: DialogEnd) -> None:
        self.dialog_ends.append(end)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send_invite(self, end: DialogEnd,
                    body: Optional[MediaDescription],
                    **meta: Any) -> Txn:
        """Start an INVITE transaction.  "The endpoint must wait for any
        ongoing transaction that it knows about to complete" — an
        overlap raises :class:`SipError`."""
        if end.client_txn is not None:
            raise SipError("%s: INVITE transaction already outstanding"
                           % end.name)
        txn: Txn = {"cseq": end.next_cseq(), "body": body}
        txn.update(meta)
        end.client_txn = txn
        end.send(SipRequest(INVITE, txn["cseq"], body))
        return txn

    def send_ack(self, end: DialogEnd, cseq: int,
                 body: Optional[MediaDescription] = None) -> None:
        end.send(SipRequest(ACK, cseq, body))

    def send_bye(self, end: DialogEnd) -> None:
        end.send(SipRequest(BYE, end.next_cseq()))

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def on_message(self, end: DialogEnd, message: SipMessage) -> None:
        if isinstance(message, SipRequest):
            if message.method == INVITE:
                if end.client_txn is not None:
                    # Glare: "If a race between two invite transactions
                    # is detected, both fail immediately."
                    end.send(SipResponse(REQUEST_PENDING, INVITE,
                                         message.cseq,
                                         reason="Request Pending"))
                    return
                end.server_txn = {"cseq": message.cseq,
                                  "request": message}
                self.handle_invite(end, message)
            elif message.method == ACK:
                end.server_txn = None
                self.handle_ack(end, message)
            elif message.method == BYE:
                end.send(SipResponse(OK, BYE, message.cseq))
                self.handle_bye(end, message)
        else:
            self._dispatch_response(end, message)

    def _dispatch_response(self, end: DialogEnd,
                           response: SipResponse) -> None:
        txn = end.client_txn
        if txn is None or response.cseq != txn["cseq"] or \
                response.method != INVITE:
            return  # stale or non-INVITE response
        end.client_txn = None
        if response.code == REQUEST_PENDING:
            self.glares_seen += 1
            self.handle_glare(end, txn, response)
        elif response.is_success:
            self.handle_invite_success(end, txn, response)
        else:
            self.handle_invite_failure(end, txn, response)

    # ------------------------------------------------------------------
    # overridables
    # ------------------------------------------------------------------
    def handle_invite(self, end: DialogEnd, request: SipRequest) -> None:
        raise NotImplementedError

    def handle_ack(self, end: DialogEnd, request: SipRequest) -> None:
        pass

    def handle_bye(self, end: DialogEnd, request: SipRequest) -> None:
        pass

    def handle_invite_success(self, end: DialogEnd, txn: Txn,
                              response: SipResponse) -> None:
        pass

    def handle_glare(self, end: DialogEnd, txn: Txn,
                     response: SipResponse) -> None:
        pass

    def handle_invite_failure(self, end: DialogEnd, txn: Txn,
                              response: SipResponse) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<%s %s>" % (type(self).__name__, self.name)


class SipEndpointUA(SipUA):
    """A SIP media endpoint.

    ``target_history`` records every change of the address this
    endpoint sends media to (``None`` = on hold), timestamped — the
    observable the Sec. IX-B latency comparison is measured on.
    """

    def __init__(self, loop: EventLoop, name: str, address: Address,
                 codecs: Tuple[Codec, ...] = (), cost: float = 0.0):
        super().__init__(loop, name, cost=cost)
        self.address = address
        self.codecs = codecs or codecs_for_medium(AUDIO)
        self.sdp = SdpFactory(origin=name)
        #: The peer's most recent self-description (offer or answer).
        self.remote: Optional[MediaDescription] = None
        self.local: Optional[MediaDescription] = None
        self.target_history: List[Tuple[float, Optional[Address]]] = []
        #: Media changes initiated but not yet completed (re-INVITEs).
        self.pending_changes = 0

    # -- media state ---------------------------------------------------------
    @property
    def target(self) -> Optional[Address]:
        """Where this endpoint currently sends media."""
        if not self.target_history:
            return None
        return self.target_history[-1][1]

    def _set_remote(self, description: Optional[MediaDescription]) -> None:
        self.remote = description
        if description is None or not description.codecs \
                or description.address is None:
            new_target = None  # on hold
        else:
            new_target = description.address
        if self.target != new_target or not self.target_history:
            self.target_history.append((self.loop.now, new_target))

    # -- endpoint behaviour ---------------------------------------------------
    def handle_invite(self, end: DialogEnd, request: SipRequest) -> None:
        if request.body is None:
            # Offerless INVITE: "The endpoint responds with success
            # containing an offer (instead of an answer)"; the answer
            # will arrive in the ACK.
            offer = self.sdp.offer(self.address, self.codecs)
            self.local = offer
            end.server_txn["sent_offer"] = True
            end.send(SipResponse(OK, INVITE, request.cseq, body=offer))
        else:
            answer = self.sdp.answer(request.body, self.address,
                                     self.codecs)
            self._set_remote(request.body)
            self.local = answer
            end.send(SipResponse(OK, INVITE, request.cseq, body=answer))

    def handle_ack(self, end: DialogEnd, request: SipRequest) -> None:
        if request.body is not None:
            # The answer completing an offerless INVITE.
            self._set_remote(request.body)

    def handle_bye(self, end: DialogEnd, request: SipRequest) -> None:
        self._set_remote(None)

    def call(self, end: DialogEnd) -> Txn:
        """Place a call: INVITE with a fresh offer."""
        offer = self.sdp.offer(self.address, self.codecs)
        self.local = offer
        return self.send_invite(end, offer)

    def modify_session(self, end: DialogEnd) -> Txn:
        """Re-INVITE with a fresh offer (a media change).

        On glare the change retries after the RFC 3261 backoff — the
        contention cost the paper attributes to SIP's transactional,
        media-bundled design (Sec. IX-B).
        """
        self.pending_changes += 1
        return self._send_modify(end)

    def _send_modify(self, end: DialogEnd) -> Txn:
        offer = self.sdp.offer(self.address, self.codecs)
        self.local = offer
        txn = self.send_invite(end, offer)
        txn["modify"] = True
        return txn

    def handle_invite_success(self, end: DialogEnd, txn: Txn,
                              response: SipResponse) -> None:
        if response.body is not None:
            self._set_remote(response.body)
        self.send_ack(end, txn["cseq"])
        if txn.get("modify"):
            self.pending_changes -= 1

    def handle_glare(self, end: DialogEnd, txn: Txn,
                     response: SipResponse) -> None:
        if not txn.get("modify"):
            return
        # The change is still owed; retry it after the backoff.
        low, high = end.retry_window()
        delay = self.loop.rng.uniform(low, high)
        self.node.set_timer(delay, self._retry_modify, end)

    def _retry_modify(self, end: DialogEnd) -> None:
        if end.client_txn is not None:
            self.node.set_timer(0.2, self._retry_modify, end)
            return
        self._send_modify(end)

    def change_completed(self) -> bool:
        """True when no media change is still outstanding."""
        return self.pending_changes == 0
