"""SDP offer/answer negotiation (miniature RFC 3264 subset).

The paper's protocol comparison hinges on SIP's *negotiation* model:
"To open a media channel or modify an existing one, an endpoint sends in
its invite signal an offer containing a set of possible codecs that it
can handle.  The responder sends in its success signal an answer that is
a subset of the offer codecs, all of which the responder can handle.
Henceforth any of the codecs in the answer subset can be used."

An answer is *relative* — "a description of one endpoint with respect to
(in negotiation with) another" — which is why it can never be re-used,
one of SIP's latency penalties (Sec. IX-B).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..network.address import Address
from ..protocol.codecs import Codec

__all__ = ["MediaDescription", "SdpFactory", "negotiate"]


@dataclass(frozen=True)
class MediaDescription:
    """One SDP body: who is describing themselves, where they receive,
    and which codecs they can handle.  Used for both offers and answers
    (``relative_to`` marks an answer and names the offer's version)."""

    origin: str
    version: int
    address: Optional[Address]
    codecs: Tuple[Codec, ...]
    relative_to: Optional[int] = None

    @property
    def is_answer(self) -> bool:
        return self.relative_to is not None

    def __str__(self) -> str:
        kind = "answer->%s" % self.relative_to if self.is_answer else "offer"
        return "sdp[%s v%d %s %s]" % (
            self.origin, self.version, kind,
            "/".join(c.name for c in self.codecs))


@dataclass
class SdpFactory:
    """Mints versioned offers/answers for one SIP entity."""

    origin: str
    _versions: "itertools.count" = field(default_factory=itertools.count)

    def offer(self, address: Address,
              codecs: Tuple[Codec, ...]) -> MediaDescription:
        return MediaDescription(self.origin, next(self._versions),
                                address, codecs)

    def answer(self, offer: MediaDescription, address: Address,
               codecs: Tuple[Codec, ...]) -> Optional[MediaDescription]:
        """Negotiate: the answer's codec set is the subset of the offer
        this entity can handle, in the offer's preference order.
        Returns ``None`` when negotiation fails (no common codec)."""
        common = negotiate(offer, codecs)
        if not common:
            return None
        return MediaDescription(self.origin, next(self._versions),
                                address, common,
                                relative_to=offer.version)


def negotiate(offer: MediaDescription,
              supported: Tuple[Codec, ...]) -> Tuple[Codec, ...]:
    """The RFC 3264 intersection, in the offerer's preference order."""
    supported_set = set(supported)
    return tuple(c for c in offer.codecs if c in supported_set)
