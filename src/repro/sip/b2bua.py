"""Third-party call control: the SIP back-to-back user agent.

This implements the flow the paper's Fig. 14 analyzes, following the
best-current-practice document it cites (RFC 3725): "if a box in the
middle of a signaling path wishes to function as a new flowlink and
create media flow between its slots, it must first send to one end of
the path a signal soliciting a fresh offer.  This takes the form of an
invite with no offer in it.  The endpoint responds with success
containing an offer ...  When the other endpoint receives this signal,
it responds with an ack signal containing an answer."

On glare (491) the operation aborts — "both servers send dummy answers
on their other sides to finish off the related transactions" — and is
retried after the RFC 3261 randomized backoff, whose expected value is
the paper's ``d`` (≈3 s for the dialog owner).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .agent import SipError, SipUA, Txn
from .dialog import DialogEnd
from .messages import (INVITE, OK, SipRequest, SipResponse)
from .sdp import MediaDescription, SdpFactory

__all__ = ["SipB2BUA", "RelinkOperation"]


class RelinkOperation:
    """One third-party call-control operation: join the endpoint behind
    ``outer`` to the path behind ``middle``."""

    def __init__(self, b2bua: "SipB2BUA", outer: DialogEnd,
                 middle: DialogEnd):
        self.b2bua = b2bua
        self.outer = outer
        self.middle = middle
        self.offer: Optional[MediaDescription] = None
        self.outer_cseq: Optional[int] = None
        self.attempts = 0
        self.glares = 0
        self.started_at = b2bua.loop.now
        self.completed_at: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    @property
    def latency(self) -> float:
        assert self.completed_at is not None
        return self.completed_at - self.started_at


class SipB2BUA(SipUA):
    """A SIP application server doing third-party call control.

    ``set_route`` pairs dialog ends the way a flowlink pairs slots;
    incoming INVITEs relay along routes, and :meth:`relink` performs the
    solicit-offer / forward-offer / return-answer dance of Fig. 14.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.routes: Dict[DialogEnd, DialogEnd] = {}
        self.operations: List[RelinkOperation] = []
        self.sdp = SdpFactory(origin=self.name)

    # -- wiring ---------------------------------------------------------------
    def set_route(self, end_a: DialogEnd, end_b: DialogEnd) -> None:
        """Patch two of this server's dialog ends together."""
        self.routes[end_a] = end_b
        self.routes[end_b] = end_a

    # -- the relink operation ----------------------------------------------------
    def relink(self, outer: DialogEnd, middle: DialogEnd
               ) -> RelinkOperation:
        """Create media flow between the endpoint behind ``outer`` and
        the path behind ``middle``."""
        self.set_route(outer, middle)
        operation = RelinkOperation(self, outer, middle)
        self.operations.append(operation)
        self._attempt(operation)
        return operation

    def _attempt(self, operation: RelinkOperation) -> None:
        operation.attempts += 1
        # Step 1: solicit a fresh offer from the outer endpoint.  Unlike
        # our protocol's cached descriptors, "offers are not supposed to
        # be re-used", so every attempt pays this round trip.
        txn = self.send_invite(operation.outer, None, op=operation,
                               role="solicit")
        operation.outer_cseq = txn["cseq"]

    def handle_invite_success(self, end: DialogEnd, txn: Txn,
                              response: SipResponse) -> None:
        role = txn.get("role")
        if role == "solicit":
            operation = txn["op"]
            operation.offer = response.body
            # Step 2: forward the fresh offer down the middle dialog.
            self.send_invite(operation.middle, operation.offer,
                             op=operation, role="forward")
        elif role == "forward":
            operation = txn["op"]
            answer = response.body
            # Step 3: complete both transactions — ACK the middle, and
            # carry the answer back to the outer endpoint in its ACK.
            self.send_ack(end, txn["cseq"])
            self.send_ack(operation.outer, operation.outer_cseq,
                          body=answer)
            operation.completed_at = self.loop.now
        elif role == "relay":
            # The answer for an INVITE we relayed: ACK the answering
            # side, pass the answer back as the 200 for the original
            # INVITE.
            self.send_ack(end, txn["cseq"])
            origin_end, origin_request = txn["origin"]
            origin_end.send(SipResponse(OK, INVITE, origin_request.cseq,
                                        body=response.body))

    def handle_invite(self, end: DialogEnd, request: SipRequest) -> None:
        route = self.routes.get(end)
        if route is None or request.body is None:
            # Nothing to relay to (or an offerless INVITE aimed at a
            # server, which these scenarios never produce): refuse.
            end.send(SipResponse(488, INVITE, request.cseq,
                                 reason="Not Acceptable Here"))
            return
        self.send_invite(route, request.body, role="relay",
                         origin=(end, request))

    def handle_ack(self, end: DialogEnd, request: SipRequest) -> None:
        # ACK for a 200 we relayed: propagate along the route so the
        # relayed leg also completes (the far side was ACKed when its
        # 200 arrived, so nothing further is needed here).
        pass

    def handle_glare(self, end: DialogEnd, txn: Txn,
                     response: SipResponse) -> None:
        """Our middle INVITE collided with the peer server's.

        Abort: close the outer transaction with a dummy (hold) answer,
        then retry the whole operation after the randomized backoff.
        """
        operation = txn.get("op")
        if operation is None or txn.get("role") != "forward":
            return
        operation.glares += 1
        assert operation.offer is not None
        hold = MediaDescription(origin=self.name,
                                version=operation.offer.version,
                                address=None, codecs=(),
                                relative_to=operation.offer.version)
        self.send_ack(operation.outer, operation.outer_cseq, body=hold)
        low, high = end.retry_window()
        delay = self.loop.rng.uniform(low, high)
        self.node.set_timer(delay, self._retry, operation)

    def _retry(self, operation: RelinkOperation) -> None:
        if operation.done:
            return
        if operation.outer.client_txn is not None or \
                operation.middle.client_txn is not None:
            # Another transaction still in progress; wait again briefly.
            self.node.set_timer(0.2, self._retry, operation)
            return
        self._attempt(operation)
