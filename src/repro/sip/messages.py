"""SIP messages (miniature RFC 3261 subset).

Only what the Sec. IX-B comparison needs: ``INVITE`` (with an SDP offer,
or offerless to solicit one), ``ACK`` (empty, or carrying the answer for
an offerless INVITE), ``BYE``, and the responses ``200 OK``,
``486 Busy Here``, and ``491 Request Pending`` (glare).

Transport is reliable (the paper compares against SIP-over-TCP
semantics), so no retransmission timers are modeled; the paper's
latency analysis likewise counts only message hops, processing, and the
glare backoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .sdp import MediaDescription

__all__ = ["SipRequest", "SipResponse", "SipMessage",
           "INVITE", "ACK", "BYE",
           "OK", "BUSY", "REQUEST_PENDING"]

INVITE = "INVITE"
ACK = "ACK"
BYE = "BYE"

OK = 200
BUSY = 486
REQUEST_PENDING = 491


@dataclass(frozen=True)
class SipRequest:
    """A SIP request on one dialog.

    ``body`` carries the SDP offer (for INVITE) or the answer (for the
    ACK completing an offerless INVITE); ``None`` means no body — an
    offerless INVITE "soliciting a fresh offer" (RFC 3725 flow I).
    """

    method: str
    cseq: int
    body: Optional[MediaDescription] = None

    def __str__(self) -> str:
        tag = "" if self.body is None else " +sdp"
        return "%s cseq=%d%s" % (self.method, self.cseq, tag)


@dataclass(frozen=True)
class SipResponse:
    """A SIP response, correlated to its request by (method, cseq)."""

    code: int
    method: str
    cseq: int
    body: Optional[MediaDescription] = None
    reason: str = ""

    @property
    def is_success(self) -> bool:
        return 200 <= self.code < 300

    def __str__(self) -> str:
        tag = "" if self.body is None else " +sdp"
        return "%d (%s cseq=%d)%s" % (self.code, self.method, self.cseq, tag)


SipMessage = Union[SipRequest, SipResponse]
