"""SIP dialogs: reliable duplex message pipes between two SIP entities.

A :class:`SipDialog` plays the role a SIP dialog (Call-ID + tags) plays
in a real deployment: a long-lived signaling relationship over which
INVITE transactions run.  The *owner* end is the one that created the
dialog; ownership decides the glare-retry window (RFC 3261 Sec. 14.1:
the owner retries after 2.1–4 s, the non-owner after 0–2 s).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..network.eventloop import EventLoop
from ..network.latency import LatencyModel
from ..network.transport import Link
from .messages import SipMessage

if TYPE_CHECKING:  # pragma: no cover
    from .agent import SipUA

__all__ = ["SipDialog", "DialogEnd"]

#: RFC 3261 Sec. 14.1 glare-retry windows (seconds).
OWNER_RETRY_WINDOW = (2.1, 4.0)
NON_OWNER_RETRY_WINDOW = (0.0, 2.0)


class DialogEnd:
    """One entity's end of a dialog."""

    def __init__(self, dialog: "SipDialog", side: int, owner: "SipUA"):
        self.dialog = dialog
        self.side = side
        self.owner = owner
        #: Outstanding client INVITE transaction state (set by the UA).
        self.client_txn = None
        #: Server INVITE we have not yet answered / seen ACKed.
        self.server_txn = None
        self._next_cseq = 1

    @property
    def is_dialog_owner(self) -> bool:
        """True for the end that created the dialog (Call-ID owner)."""
        return self.side == 0

    @property
    def peer(self) -> "DialogEnd":
        return self.dialog.ends[1 - self.side]

    @property
    def name(self) -> str:
        return "%s@%s" % (self.owner.name, self.dialog.name)

    def next_cseq(self) -> int:
        cseq = self._next_cseq
        self._next_cseq += 1
        return cseq

    def retry_window(self) -> tuple:
        """The RFC 3261 glare-retry window for this end."""
        return OWNER_RETRY_WINDOW if self.is_dialog_owner \
            else NON_OWNER_RETRY_WINDOW

    def send(self, message: SipMessage) -> None:
        self._link_end.send(message)

    @property
    def _link_end(self):
        return self.dialog.link.ends[self.side]

    def _receive(self, message: SipMessage) -> None:
        # One stimulus per message: the owner pays its processing cost.
        self.owner.node.enqueue(self.owner.on_message, self, message)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<DialogEnd %s>" % self.name


class SipDialog:
    """A dialog between two SIP entities, riding one link."""

    _counter = 0

    def __init__(self, loop: EventLoop, creator: "SipUA", callee: "SipUA",
                 latency: Optional[LatencyModel] = None,
                 name: Optional[str] = None):
        SipDialog._counter += 1
        self.loop = loop
        self.name = name or ("dlg%d" % SipDialog._counter)
        self.link = Link(loop, latency=latency, name=self.name)
        self.ends = (DialogEnd(self, 0, creator), DialogEnd(self, 1, callee))
        for end in self.ends:
            end._link_end.set_receiver(end._receive)
        creator.adopt_dialog(self.ends[0])
        callee.adopt_dialog(self.ends[1])

    def end_for(self, ua: "SipUA") -> DialogEnd:
        for end in self.ends:
            if end.owner is ua:
                return end
        raise ValueError("%s is not on dialog %s" % (ua.name, self.name))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<SipDialog %s (%s -- %s)>" % (
            self.name, self.ends[0].owner.name, self.ends[1].owner.name)
