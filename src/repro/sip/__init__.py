"""Miniature SIP substrate for the Sec. IX-B protocol comparison."""

from .agent import SipEndpointUA, SipError, SipUA
from .b2bua import RelinkOperation, SipB2BUA
from .dialog import DialogEnd, SipDialog
from .messages import (ACK, BYE, INVITE, OK, BUSY, REQUEST_PENDING,
                       SipRequest, SipResponse)
from .sdp import MediaDescription, SdpFactory, negotiate

__all__ = [
    "SipEndpointUA", "SipError", "SipUA",
    "RelinkOperation", "SipB2BUA",
    "DialogEnd", "SipDialog",
    "ACK", "BYE", "INVITE", "OK", "BUSY", "REQUEST_PENDING",
    "SipRequest", "SipResponse",
    "MediaDescription", "SdpFactory", "negotiate",
]
