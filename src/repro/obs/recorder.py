"""The flight recorder: a bounded ring of the most recent events.

Post-hoc diagnosis is the whole point: when a chaos run fails to
quiesce, or a slot exhausts its retransmission budget, the question is
always "which signals, retransmissions, and transitions led here?".
The recorder keeps the answer in O(capacity) memory no matter how long
the run, and its formatted tail rides on
:class:`~repro.network.eventloop.QuiescenceError` and on the
:class:`~repro.obs.events.SlotFailureRecord` payloads a box keeps.

It is *always on* whenever a :class:`~repro.obs.tracer.Tracer` is
installed — exporter subscribers can be configured away, the recorder
cannot, because by the time you know you needed it the run is over.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from .events import TraceEvent

__all__ = ["FlightRecorder", "DEFAULT_RING"]

#: Default ring capacity: enough for the full signaling tail of a
#: handful of media channels without holding a whole run.
DEFAULT_RING = 128


class FlightRecorder:
    """A fixed-capacity ring buffer of trace events."""

    def __init__(self, capacity: int = DEFAULT_RING):
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        #: Total events ever recorded (so a tail can report how much
        #: history scrolled out of the ring).
        self.recorded = 0

    def record(self, event: TraceEvent) -> None:
        self._ring.append(event)
        self.recorded += 1

    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._ring)

    def tail(self, n: Optional[int] = None) -> List[str]:
        """The last ``n`` (default: all retained) events as formatted
        lines ``"  t=1.2345 slot.transition ..."``, oldest first."""
        events = self.events()
        if n is not None:
            events = events[-n:]
        return ["t=%.4f %s" % (e.ts, e.describe()) for e in events]

    def clear(self) -> None:
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<FlightRecorder %d/%d (%d recorded)>" % (
            len(self._ring), self.capacity, self.recorded)
