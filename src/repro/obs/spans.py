"""Media-channel spans keyed by signaling path.

A *span* is one lifecycle episode of one media channel — the tunnel
``(channel, tunnel)`` going live (either slot leaves ``closed``),
possibly reaching ``bothFlowing`` (both slots ``flowing``, the paper's
Sec. V stability target), and returning to ``bothClosed``.  A tunnel
reused for a second call produces a second span with the same key and
the next episode index.

Spans carry the path-temporal annotations Secs. V-VIII care about:
open/open races resolved in the span, re-describes while flowing
(descriptor freshness), retransmissions spent, and whether a side's
retry budget failed.  The tracker also feeds the metrics registry the
two signature histograms: ``span.time_to_flowing`` (open →
``bothFlowing``) and ``span.lifetime`` (open → ``bothClosed``).

State names are the Fig. 9 strings from :mod:`repro.protocol.slot`;
they are duplicated here as plain constants because the protocol layer
imports this package, not the other way around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .events import (Retransmit, SignalReceived, SlotDrop, SlotFailed,
                     SlotTransition, TraceEvent)
from .metrics import MetricsRegistry

__all__ = ["MediaChannelSpan", "SpanTracker"]

_CLOSED = "closed"
_FLOWING = "flowing"
#: Fig. 12 live states — a slot in any of these holds the span open.
_LIVE = frozenset(("opening", "opened", "flowing"))

SpanKey = Tuple[str, str]


@dataclass
class MediaChannelSpan:
    """One open → (flowing) → closed episode of one media channel."""

    channel: str
    tunnel: str
    index: int
    opened_at: float
    opener: str
    medium: str = ""
    flowing_at: Optional[float] = None
    closed_at: Optional[float] = None
    races: int = 0
    redescribes: int = 0
    retransmits: int = 0
    failed: bool = False

    @property
    def key(self) -> SpanKey:
        return (self.channel, self.tunnel)

    @property
    def label(self) -> str:
        return "%s/%s#%d" % (self.channel, self.tunnel, self.index)

    @property
    def reached_flowing(self) -> bool:
        return self.flowing_at is not None

    @property
    def closed(self) -> bool:
        return self.closed_at is not None

    def duration(self, now: Optional[float] = None) -> float:
        """Span length; an unclosed span is measured to ``now``."""
        end = self.closed_at if self.closed_at is not None else now
        return max(0.0, (end or self.opened_at) - self.opened_at)

    def time_to_flowing(self) -> Optional[float]:
        if self.flowing_at is None:
            return None
        return self.flowing_at - self.opened_at

    def to_json(self) -> Dict[str, Any]:
        return {
            "channel": self.channel,
            "tunnel": self.tunnel,
            "index": self.index,
            "opener": self.opener,
            "medium": self.medium,
            "opened_at": self.opened_at,
            "flowing_at": self.flowing_at,
            "closed_at": self.closed_at,
            "time_to_flowing": self.time_to_flowing(),
            "races": self.races,
            "redescribes": self.redescribes,
            "retransmits": self.retransmits,
            "failed": self.failed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self.closed else (
            "flowing" if self.reached_flowing else "open")
        return "<Span %s %s>" % (self.label, state)


class SpanTracker:
    """Builds media-channel spans from the trace-event stream."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics
        #: All spans, in open order (closed and still-open alike).
        self.spans: List[MediaChannelSpan] = []
        self._active: Dict[SpanKey, MediaChannelSpan] = {}
        self._states: Dict[SpanKey, List[str]] = {}
        self._episodes: Dict[SpanKey, int] = {}

    # ------------------------------------------------------------------
    # event feed
    # ------------------------------------------------------------------
    def feed(self, event: TraceEvent) -> None:
        if isinstance(event, SlotTransition):
            self._on_transition(event)
            return
        span = None
        if isinstance(event, (SlotDrop, Retransmit, SlotFailed)):
            span = self._active.get((event.channel, event.tunnel))
        if span is None:
            if isinstance(event, SignalReceived):
                span = self._active.get((event.channel, event.tunnel))
                if span is not None and event.kind == "describe" \
                        and span.reached_flowing:
                    span.redescribes += 1
            return
        if isinstance(event, SlotDrop):
            if event.kind == "race":
                span.races += 1
        elif isinstance(event, Retransmit):
            span.retransmits += 1
        elif isinstance(event, SlotFailed):
            span.failed = True

    def _on_transition(self, event: SlotTransition) -> None:
        key = (event.channel, event.tunnel)
        states = self._states.get(key)
        if states is None:
            states = self._states[key] = [_CLOSED, _CLOSED]
        states[event.side] = event.new
        span = self._active.get(key)
        if span is None:
            if event.new in _LIVE:
                index = self._episodes.get(key, 0) + 1
                self._episodes[key] = index
                span = MediaChannelSpan(
                    channel=event.channel, tunnel=event.tunnel,
                    index=index, opened_at=event.ts, opener=event.end,
                    medium=event.medium)
                self._active[key] = span
                self.spans.append(span)
            return
        if event.medium and not span.medium:
            span.medium = event.medium
        if span.flowing_at is None and states[0] == _FLOWING \
                and states[1] == _FLOWING:
            span.flowing_at = event.ts
            if self.metrics is not None:
                self.metrics.histogram("span.time_to_flowing").observe(
                    span.time_to_flowing() or 0.0)
        if states[0] == _CLOSED and states[1] == _CLOSED:
            span.closed_at = event.ts
            del self._active[key]
            if self.metrics is not None:
                self.metrics.histogram("span.lifetime").observe(
                    span.duration())

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def open_spans(self) -> List[MediaChannelSpan]:
        """Spans still open, in open order."""
        return [s for s in self.spans if not s.closed]

    def to_json(self) -> List[Dict[str, Any]]:
        return [span.to_json() for span in self.spans]

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<SpanTracker %d spans (%d open)>" % (
            len(self.spans), len(self._active))
