"""``python -m repro trace`` — record one bundled application run and
export its trace.

Usage::

    python -m repro trace click_to_dial              # text summary
    python -m repro trace click_to_dial --json out.json
                                                     # Chrome trace_event
                                                     # JSON (load in
                                                     # chrome://tracing
                                                     # or Perfetto)
    python -m repro trace pbx --plan flaky --seed 3  # trace a faulted run
    python -m repro trace prepaid --timeline         # one line per event
    python -m repro trace prepaid --timeline --category signal,fault
    python -m repro trace click_to_dial --msc        # signal.send stream
                                                     # in MSC line format
    python -m repro trace --list-apps

Exports are canonical (sorted keys, emission-order events, per-loop
name counters), so one seed produces byte-identical output — the
determinism tests compare whole files.

Exit status: 0 on success, 1 when the scenario errored (the partial
trace is still exported — that is the point of a flight recorder),
2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, TextIO, Tuple

from ..chaos.scenarios import SCENARIOS
from ..network.faults import PLANS, FaultPlan, plan_by_name
from ..network.network import Network
from ..protocol.slot import RetransmitPolicy
from .export import dumps_chrome, msc_lines, render_timeline
from .tracer import Tracer

__all__ = ["build_parser", "run_traced", "main"]


def _write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path``, creating parent directories so
    ``--json`` accepts paths under directories that do not exist yet."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        fh.write(text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Run one bundled application with tracing on and "
                    "export the result (Chrome trace_event JSON, text "
                    "timeline, or MSC lines)")
    parser.add_argument("app", nargs="?", metavar="APP",
                        help="application to trace (one of %s)"
                             % ", ".join(SCENARIOS))
    parser.add_argument("--seed", type=int, default=7,
                        help="simulation seed (default 7)")
    parser.add_argument("--plan", default=None, metavar="NAME",
                        help="run under this named fault plan "
                             "(robust mode is then on unless "
                             "--no-retransmit)")
    parser.add_argument("--no-retransmit", action="store_true",
                        help="with --plan: disable robust mode")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write Chrome trace_event JSON to PATH "
                             "('-' for stdout)")
    parser.add_argument("--timeline", action="store_true",
                        help="print the full event timeline")
    parser.add_argument("--category", default=None, metavar="CATS",
                        help="comma-separated category filter for "
                             "--timeline (signal, slot, goal, program, "
                             "fault, channel)")
    parser.add_argument("--msc", action="store_true",
                        help="print the signal.send stream in MSC line "
                             "format (diffable against tools/msc.py)")
    parser.add_argument("--list-apps", action="store_true",
                        help="list the traceable applications and exit")
    return parser


def run_traced(app: str, seed: int = 7, plan: Optional[FaultPlan] = None,
               retransmit: Optional[RetransmitPolicy] = None
               ) -> Tuple[Network, Dict[str, object], Optional[str]]:
    """Run ``app``'s scenario on a traced network.

    Returns ``(net, fingerprint, error)``; on a scenario exception the
    fingerprint is empty and ``error`` names it, but ``net.trace`` still
    holds everything recorded up to the failure.
    """
    net = Network(seed=seed, retransmit=retransmit, faults=plan,
                  trace=True)
    error: Optional[str] = None
    fingerprint: Dict[str, object] = {}
    try:
        fingerprint = SCENARIOS[app](net)
    except Exception as e:  # exported partial traces are the point
        error = "%s: %s" % (type(e).__name__, e)
    return net, fingerprint, error


def _format_span_table(tracer: Tracer, out: TextIO) -> None:
    print("spans (%d):" % len(tracer.spans), file=out)
    for span in tracer.spans.spans:
        status = "closed" if span.closed else "open"
        if span.failed:
            status = "FAILED"
        flowing = ("%8.3f" % span.flowing_at
                   if span.flowing_at is not None else "   never")
        closed = ("%8.3f" % span.closed_at
                  if span.closed_at is not None else "    open")
        extras = []
        if span.races:
            extras.append("races=%d" % span.races)
        if span.redescribes:
            extras.append("redescribes=%d" % span.redescribes)
        if span.retransmits:
            extras.append("retx=%d" % span.retransmits)
        print("  %-16s %-8s opened %8.3f  flowing %s  closed %s  %-7s %s"
              % (span.label, span.medium or "-", span.opened_at,
                 flowing, closed, status, " ".join(extras)), file=out)


def _format_summary(app: str, seed: int, plan: Optional[FaultPlan],
                    net: Network, fingerprint: Dict[str, object],
                    error: Optional[str], out: TextIO) -> None:
    tracer = net.trace
    assert tracer is not None
    title = "== trace %s (seed %d%s) ==" % (
        app, seed, ", plan %s" % plan.name if plan is not None else "")
    print(title, file=out)
    print("events emitted: %d   sim time: %.3fs   channels: %d"
          % (tracer.emitted, net.now, len(net.channels)), file=out)
    if error:
        print("scenario error: %s" % error, file=out)
    _format_span_table(tracer, out)
    snapshot = tracer.metrics.snapshot()
    print("counters:", file=out)
    for name, value in snapshot["counters"].items():
        print("  %-28s %d" % (name, value), file=out)
    histograms = {name: h for name, h in snapshot["histograms"].items()
                  if h["count"]}
    if histograms:
        print("histograms:", file=out)
        for name, h in histograms.items():
            print("  %-28s n=%-4d p50=%.3f p99=%.3f max=%.3f"
                  % (name, h["count"], h["p50"], h["p99"], h["max"]),
                  file=out)
    if fingerprint:
        print("fingerprint:", file=out)
        for key in sorted(fingerprint):
            print("  %-28s %r" % (key, fingerprint[key]), file=out)


def _trace_meta(app: str, args, plan: Optional[FaultPlan]
                ) -> Dict[str, Any]:
    meta: Dict[str, Any] = {"app": app, "seed": args.seed}
    if plan is not None:
        meta["plan"] = plan.describe()
        meta["retransmit"] = not args.no_retransmit
    return meta


def main(argv: Optional[List[str]] = None,
         out: Optional[TextIO] = None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_apps:
        for name in SCENARIOS:
            print(name, file=out)
        return 0
    if args.app is None:
        parser.error("missing APP (see --list-apps)")
    if args.app not in SCENARIOS:
        parser.error("unknown app %r (known: %s)"
                     % (args.app, ", ".join(SCENARIOS)))
    plan: Optional[FaultPlan] = None
    if args.plan is not None:
        try:
            plan = plan_by_name(args.plan)
        except KeyError:
            parser.error("unknown plan %r (known: %s)"
                         % (args.plan, ", ".join(sorted(PLANS))))
    retransmit = None
    if plan is not None and not args.no_retransmit:
        retransmit = RetransmitPolicy()

    net, fingerprint, error = run_traced(
        args.app, seed=args.seed, plan=plan, retransmit=retransmit)
    tracer = net.trace
    assert tracer is not None

    if args.json:
        payload = dumps_chrome(tracer, meta=_trace_meta(args.app, args,
                                                        plan))
        if args.json == "-":
            out.write(payload)
        else:
            _write_text(args.json, payload)
    if args.msc:
        for line in msc_lines(tracer):
            print(line, file=out)
    if args.timeline:
        categories = (args.category.split(",")
                      if args.category is not None else None)
        print(render_timeline(tracer, categories), file=out)
    if not (args.json == "-" or args.msc or args.timeline):
        _format_summary(args.app, args.seed, plan, net, fingerprint,
                        error, out)
    elif error:
        print("scenario error: %s" % error, file=sys.stderr)
    return 1 if error else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
