"""The trace-event taxonomy.

Every event is a small frozen dataclass of plain strings and numbers —
no live object references — so recording an event can never keep a
slot, channel, or box alive, and exports serialize without custom
encoders.  Timestamps are simulated-clock seconds; with one seed, the
whole event stream is reproduced bit-for-bit.

This module deliberately imports nothing from the runtime layers at
module scope: the protocol, core, and network packages all import it,
and the one helper that needs signal types (:func:`signal_label`) binds
them lazily on first use.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "TraceEvent", "SignalSent", "SignalReceived", "SlotTransition",
    "SlotDrop", "Retransmit", "SlotFailed", "SlotFailureRecord",
    "GoalEvent", "ProgramStep", "FaultInjected", "ChannelEvent",
    "LiveWireEvent", "signal_label",
]

_SIGNAL_TYPES: Optional[Tuple[type, type]] = None


def signal_label(message: Any) -> str:
    """One-line label for a wire message, e.g. ``open(alice#0)`` or
    ``select(noMedia)``.

    This is the canonical label shared with the MSC renderer
    (:mod:`repro.tools.msc`), so a trace timeline and a message-sequence
    chart of the same run agree line for line.
    """
    global _SIGNAL_TYPES
    if _SIGNAL_TYPES is None:
        from ..protocol.signals import MetaMessage, TunnelMessage
        _SIGNAL_TYPES = (TunnelMessage, MetaMessage)
    tunnel_type, meta_type = _SIGNAL_TYPES
    if isinstance(message, tunnel_type):
        signal = message.signal
        descriptor = getattr(signal, "descriptor", None)
        selector = getattr(signal, "selector", None)
        if descriptor is not None:
            detail = "noMedia" if descriptor.is_no_media \
                else str(descriptor.id)
            return "%s(%s)" % (signal.kind, detail)
        if selector is not None:
            detail = "noMedia" if selector.is_no_media \
                else str(selector.answers)
            return "select(%s)" % detail
        return signal.kind
    if isinstance(message, meta_type):
        return str(message.signal)
    return str(message)


@dataclass(frozen=True)
class TraceEvent:
    """Base class: a timestamped, categorized observation."""

    ts: float

    #: Coarse grouping used by exporters and subscribers.
    category = "event"
    #: Default event name within the category.
    name = "event"

    def event_name(self) -> str:
        """Name within the category (subclasses may derive it from a
        field, e.g. a goal event is named after its action)."""
        return type(self).name

    def args(self) -> Dict[str, Any]:
        """All fields but the timestamp, as a JSON-friendly dict."""
        return {f.name: getattr(self, f.name)
                for f in fields(self) if f.name != "ts"}

    def describe(self) -> str:
        """One flight-recorder / timeline line (no timestamp)."""
        detail = " ".join("%s=%s" % (k, v)
                          for k, v in sorted(self.args().items()))
        return "%s.%s %s" % (self.category, self.event_name(), detail)


# ----------------------------------------------------------------------
# signaling plane
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SignalSent(TraceEvent):
    """A message was handed to a signaling channel's link (before any
    fault policy touches it).  ``tunnel`` is ``None`` for channel-scope
    meta-signals."""

    channel: str
    source: str
    target: str
    kind: str
    label: str
    tunnel: Optional[str] = None

    category = "signal"
    name = "send"

    def describe(self) -> str:
        where = "%s/%s" % (self.channel, self.tunnel) if self.tunnel \
            else self.channel
        return "signal.send %s %s -> %s : %s" % (
            where, self.source, self.target, self.label)


@dataclass(frozen=True)
class SignalReceived(TraceEvent):
    """A tunnel signal was processed by a slot (``accepted`` is the
    slot's verdict: passed up to the controlling goal, or consumed)."""

    channel: str
    agent: str
    tunnel: str
    kind: str
    label: str
    state_before: str
    state_after: str
    accepted: bool

    category = "signal"
    name = "recv"

    def describe(self) -> str:
        return "signal.recv %s/%s at %s : %s [%s -> %s]%s" % (
            self.channel, self.tunnel, self.agent, self.label,
            self.state_before, self.state_after,
            "" if self.accepted else " (consumed)")


# ----------------------------------------------------------------------
# slot FSM
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SlotTransition(TraceEvent):
    """A slot moved between Fig. 9 protocol states."""

    slot: str
    channel: str
    tunnel: str
    end: str
    side: int
    old: str
    new: str
    cause: str
    medium: str = ""

    category = "slot"
    name = "transition"

    def describe(self) -> str:
        return "slot.transition %s %s -> %s (%s)" % (
            self.slot, self.old, self.new, self.cause)


@dataclass(frozen=True)
class SlotDrop(TraceEvent):
    """A slot consumed a signal without a state change: a race-losing
    open (``race``), an absorbed robust-mode repeat (``duplicate``), a
    signal drained while closing (``stale``), or an out-of-place signal
    dropped in robust mode (``invalid``)."""

    slot: str
    channel: str
    tunnel: str
    kind: str
    signal: str = ""

    category = "slot"
    name = "drop"

    def describe(self) -> str:
        return "slot.drop %s %s%s" % (
            self.slot, self.kind,
            " (%s)" % self.signal if self.signal else "")


@dataclass(frozen=True)
class Retransmit(TraceEvent):
    """A robust-mode timer re-sent an unacknowledged signal."""

    slot: str
    channel: str
    tunnel: str
    kind: str
    attempt: int

    category = "slot"
    name = "retransmit"

    def describe(self) -> str:
        return "slot.retransmit %s %s attempt=%d" % (
            self.slot, self.kind, self.attempt)


@dataclass(frozen=True)
class SlotFailed(TraceEvent):
    """A slot exhausted its retransmission budget and degraded to
    ``closed`` without media (the ``noMedia`` fallback)."""

    slot: str
    channel: str
    tunnel: str
    reason: str

    category = "slot"
    name = "failed"

    def describe(self) -> str:
        return "slot.failed %s reason=%s" % (self.slot, self.reason)


@dataclass(frozen=True)
class SlotFailureRecord:
    """The payload a box keeps (and hands to ``on_slot_failed``
    observers) for one retransmission-budget failure: identity, cause,
    time, and the flight recorder's tail at the moment of failure."""

    slot: str
    reason: str
    time: float
    flight_tail: Tuple[str, ...] = ()

    def to_json(self) -> Dict[str, Any]:
        return {"slot": self.slot, "reason": self.reason,
                "time": self.time, "flight_tail": list(self.flight_tail)}


# ----------------------------------------------------------------------
# goals and programs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GoalEvent(TraceEvent):
    """A goal object gained (``install``) or lost (``release``) control
    of its slots — the goal-rewrite seam of Sec. VII."""

    box: str
    goal: str
    slots: Tuple[str, ...]
    action: str

    category = "goal"

    def event_name(self) -> str:
        return self.action

    def describe(self) -> str:
        return "goal.%s %s %s(%s)" % (
            self.action, self.box, self.goal, ",".join(self.slots))


@dataclass(frozen=True)
class ProgramStep(TraceEvent):
    """A state-oriented box program took a transition."""

    box: str
    source: str
    target: str

    category = "program"
    name = "step"

    def describe(self) -> str:
        return "program.step %s %s -> %s" % (self.box, self.source,
                                             self.target)


# ----------------------------------------------------------------------
# adversary and channel lifecycle
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultInjected(TraceEvent):
    """The fault layer acted on a link: ``drop``, ``duplicate``,
    ``reorder``, ``flap-down``, ``flap-up``, ``crash``, ``restart``."""

    link: str
    action: str
    detail: str = ""

    category = "fault"

    def event_name(self) -> str:
        return self.action

    def describe(self) -> str:
        return "fault.%s %s%s" % (
            self.action, self.link,
            " %s" % self.detail if self.detail else "")


@dataclass(frozen=True)
class ChannelEvent(TraceEvent):
    """Signaling-channel lifecycle: ``up`` at creation, ``teardown`` at
    the initiating side, ``gone`` when the peer learns of it."""

    channel: str
    action: str
    initiator: str = ""
    responder: str = ""

    category = "channel"

    def event_name(self) -> str:
        return self.action

    def describe(self) -> str:
        extra = " (%s -- %s)" % (self.initiator, self.responder) \
            if self.initiator or self.responder else ""
        return "channel.%s %s%s" % (self.action, self.channel, extra)


@dataclass(frozen=True)
class LiveWireEvent(TraceEvent):
    """Live-transport lifecycle (:mod:`repro.livenet`): connections
    dialed/accepted/lost/reconnected, frames shipped/received, live
    channels opened/closed.  ``ts`` is the node's *simulated* clock (the
    wall-anchored pump clock), like every other event; ``peer`` is the
    remote node or connection label and ``detail`` a short free-form
    qualifier (reason slug, frame kind, channel id)."""

    action: str
    peer: str = ""
    detail: str = ""

    category = "live"

    def event_name(self) -> str:
        return self.action

    def describe(self) -> str:
        return "live.%s %s%s" % (
            self.action, self.peer,
            " %s" % self.detail if self.detail else "")


#: All exported event classes, for subscribers that dispatch by type.
EVENT_TYPES: List[type] = [
    SignalSent, SignalReceived, SlotTransition, SlotDrop, Retransmit,
    SlotFailed, GoalEvent, ProgramStep, FaultInjected, ChannelEvent,
    LiveWireEvent,
]
__all__.append("EVENT_TYPES")
