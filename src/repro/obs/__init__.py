"""Observability for the media-control runtime.

The paper's unit of correctness is per-signaling-path temporal behavior
(Secs. V-VIII): ``bothClosed``/``bothFlowing`` stability, open/open
races, descriptor freshness.  This package makes that behavior a
first-class runtime artifact instead of something reconstructed from
end-state fingerprints:

* :mod:`~repro.obs.events` — the typed trace-event taxonomy emitted by
  the instrumented runtime (signal send/recv, slot FSM transitions,
  goal rewrites, retransmissions, fault injections, program steps);
* :mod:`~repro.obs.tracer` — the per-loop :class:`Tracer` hub fanning
  events out to the flight recorder, span model, metrics registry, and
  any extra subscribers;
* :mod:`~repro.obs.recorder` — the always-on ring-buffer flight
  recorder whose tail rides on :class:`~repro.network.eventloop.
  QuiescenceError` and slot-failure payloads;
* :mod:`~repro.obs.spans` — media-channel spans keyed by
  ``(channel, tunnel)``: open → flowing → closed lifecycles with race,
  re-describe, and retransmission annotations;
* :mod:`~repro.obs.metrics` — counters and simulated-clock histograms
  (signal counts, retries, time-to-``bothFlowing`` percentiles);
* :mod:`~repro.obs.export` — Chrome ``trace_event`` JSON and plain-text
  signaling timelines (cross-checked against :mod:`repro.tools.msc`).

Everything is keyed to the simulated clock, so one seed produces one
byte-identical trace; and every emission site in the runtime is guarded
by a single ``loop.trace is None`` test, so a run without a tracer pays
nothing.
"""

from .events import (ChannelEvent, FaultInjected, GoalEvent, ProgramStep,
                     Retransmit, SignalReceived, SignalSent, SlotDrop,
                     SlotFailed, SlotFailureRecord, SlotTransition,
                     TraceEvent, signal_label)
from .export import chrome_trace, dumps_chrome, msc_lines, render_timeline
from .metrics import Counter, Histogram, MetricsRegistry
from .recorder import FlightRecorder
from .spans import MediaChannelSpan, SpanTracker
from .tracer import Tracer

__all__ = [
    "TraceEvent", "SignalSent", "SignalReceived", "SlotTransition",
    "SlotDrop", "Retransmit", "SlotFailed", "SlotFailureRecord",
    "GoalEvent", "ProgramStep", "FaultInjected", "ChannelEvent",
    "signal_label",
    "Tracer", "FlightRecorder",
    "MediaChannelSpan", "SpanTracker",
    "Counter", "Histogram", "MetricsRegistry",
    "chrome_trace", "dumps_chrome", "msc_lines", "render_timeline",
]
