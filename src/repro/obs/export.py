"""Trace exporters: Chrome ``trace_event`` JSON and text timelines.

The Chrome format is the ``trace_event`` JSON Object Format understood
by ``chrome://tracing`` and by Perfetto's legacy loader: media-channel
spans become ``"X"`` (complete) events on one track per signaling path,
and every other trace event becomes an ``"i"`` (instant) mark on its
channel's, box's, or link's track.  Process and thread names are
declared with ``"M"`` metadata records.

Exports are canonical: events are serialized in emission order, object
keys are sorted, and track ids are allocated in first-appearance order,
so one seed produces byte-identical output — the determinism tests
compare whole files.

:func:`msc_lines` renders the same ``signal.send`` stream in the exact
line format of :class:`repro.tools.msc.TracedMessage`, so a trace and a
message-sequence chart of one run can be diffed line for line.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .events import (ChannelEvent, FaultInjected, GoalEvent, ProgramStep,
                     Retransmit, SignalReceived, SignalSent, SlotDrop,
                     SlotFailed, TraceEvent)
from .spans import MediaChannelSpan
from .tracer import Tracer

__all__ = ["chrome_trace", "dumps_chrome", "render_timeline", "msc_lines"]

#: Fixed process ids: one per track family, declared up front so the
#: viewer groups related tracks together.
_PID_SIGNALING = 1
_PID_SPANS = 2
_PID_BOXES = 3
_PID_FAULTS = 4

_PROCESS_NAMES = {
    _PID_SIGNALING: "signaling",
    _PID_SPANS: "media channels",
    _PID_BOXES: "boxes",
    _PID_FAULTS: "faults",
}


def _us(ts: float) -> float:
    """Simulated seconds → trace microseconds, stably rounded."""
    return round(ts * 1e6, 3)


class _Tracks:
    """First-appearance allocator of thread ids within one process."""

    def __init__(self, pid: int):
        self.pid = pid
        self._tids: Dict[str, int] = {}
        self.metadata: List[Dict[str, Any]] = []

    def tid(self, name: str) -> int:
        tid = self._tids.get(name)
        if tid is None:
            tid = self._tids[name] = len(self._tids) + 1
            self.metadata.append({
                "ph": "M", "name": "thread_name", "pid": self.pid,
                "tid": tid, "args": {"name": name}})
        return tid


def _instant_track(event: TraceEvent) -> Optional[tuple]:
    """(pid, track name) for an instant event, or ``None`` to skip."""
    if isinstance(event, (SignalSent, SignalReceived, SlotDrop,
                          Retransmit, SlotFailed, ChannelEvent)):
        return (_PID_SIGNALING, event.channel)
    if isinstance(event, (GoalEvent, ProgramStep)):
        return (_PID_BOXES, event.box)
    if isinstance(event, FaultInjected):
        return (_PID_FAULTS, event.link)
    return None  # SlotTransition: rendered as span tracks, not marks


def _span_event(span: MediaChannelSpan, tid: int, end_ts: float,
                ) -> Dict[str, Any]:
    closed_at = span.closed_at if span.closed_at is not None else end_ts
    args = span.to_json()
    args["still_open"] = span.closed_at is None
    return {
        "ph": "X", "cat": "span", "name": span.label,
        "pid": _PID_SPANS, "tid": tid,
        "ts": _us(span.opened_at),
        "dur": round(_us(closed_at) - _us(span.opened_at), 3),
        "args": args,
    }


def chrome_trace(tracer: Tracer,
                 meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Build the Chrome ``trace_event`` payload for a finished run.

    Requires the tracer's full event log (``keep_events=True``).
    ``meta`` lands in ``otherData`` (app name, seed, fault plan...).
    """
    if tracer.events is None:
        raise ValueError(
            "chrome_trace needs the full event log; this Tracer was "
            "created with keep_events=False")
    tracks = {pid: _Tracks(pid) for pid in _PROCESS_NAMES}
    process_meta = [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
         "args": {"name": name}}
        for pid, name in sorted(_PROCESS_NAMES.items())]
    body: List[Dict[str, Any]] = []
    for span in tracer.spans.spans:
        tid = tracks[_PID_SPANS].tid("%s/%s" % (span.channel, span.tunnel))
        body.append(_span_event(span, tid, tracer.last_ts))
    for event in tracer.events:
        where = _instant_track(event)
        if where is None:
            continue
        pid, track = where
        body.append({
            "ph": "i", "s": "t", "cat": event.category,
            "name": "%s.%s" % (event.category, event.event_name()),
            "pid": pid, "tid": tracks[pid].tid(track),
            "ts": _us(event.ts), "args": event.args(),
        })
    trace_events: List[Dict[str, Any]] = []
    trace_events.extend(process_meta)
    for pid in sorted(tracks):
        trace_events.extend(tracks[pid].metadata)
    trace_events.extend(body)
    other = {"emitted": tracer.emitted,
             "metrics": tracer.metrics.snapshot()}
    if meta:
        other.update(meta)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms",
            "otherData": other}


def dumps_chrome(tracer: Tracer,
                 meta: Optional[Dict[str, Any]] = None) -> str:
    """Canonical serialization of :func:`chrome_trace`: sorted keys,
    two-space indent, trailing newline — fit for byte comparison."""
    payload = chrome_trace(tracer, meta)
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# text renderings
# ----------------------------------------------------------------------
def render_timeline(tracer: Tracer,
                    categories: Optional[List[str]] = None) -> str:
    """The full event stream, one line per event, optionally filtered to
    the given categories (``signal``, ``slot``, ``goal``, ``program``,
    ``fault``, ``channel``)."""
    if tracer.events is None:
        raise ValueError(
            "render_timeline needs the full event log; this Tracer was "
            "created with keep_events=False")
    wanted = set(categories) if categories is not None else None
    lines = []
    for event in tracer.events:
        if wanted is not None and event.category not in wanted:
            continue
        lines.append("%9.4f  %s" % (event.ts, event.describe()))
    return "\n".join(lines)


def msc_lines(tracer: Tracer) -> List[str]:
    """The ``signal.send`` stream in :class:`repro.tools.msc.
    TracedMessage` line format (``"%8.3f  src -> dst : label"``), for
    cross-checking a trace against an MSC capture of the same run."""
    if tracer.events is None:
        raise ValueError(
            "msc_lines needs the full event log; this Tracer was "
            "created with keep_events=False")
    return ["%8.3f  %s -> %s : %s" % (e.ts, e.source, e.target, e.label)
            for e in tracer.events if isinstance(e, SignalSent)]
