"""The per-loop tracing hub.

One :class:`Tracer` serves one :class:`~repro.network.eventloop.
EventLoop`: the runtime finds it at ``loop.trace`` and every emission
site is guarded by a single ``loop.trace is None`` test, so an
uninstrumented run pays one attribute read per would-be event and
nothing else.

The hub fans each event out, in a fixed order, to:

1. the always-on :class:`~repro.obs.recorder.FlightRecorder` (its tail
   rides on failure payloads);
2. the :class:`~repro.obs.spans.SpanTracker` building media-channel
   spans (which must see transitions before metrics snapshot them);
3. the :class:`~repro.obs.metrics.MetricsRegistry`;
4. the optional full event log (``keep_events=False`` turns it off for
   long chaos runs that only want the flight recorder and metrics);
5. any external subscribers (exporter callbacks, test probes).

``attach_channel`` taps a signaling channel's link through the same
transmit-hook chain the fault layer uses (one seam, two subscribers),
emitting a :class:`~repro.obs.events.SignalSent` for every message the
application hands to the wire — *before* any fault policy drops or
duplicates it, which is the honest place to count offered load.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .events import SignalSent, TraceEvent, signal_label
from .metrics import MetricsRegistry
from .recorder import DEFAULT_RING, FlightRecorder
from .spans import SpanTracker

__all__ = ["Tracer"]

Subscriber = Callable[[TraceEvent], None]

_MESSAGE_TYPES: Optional[tuple] = None


def _message_types() -> tuple:
    # Lazy: obs is a leaf package; the protocol layer imports it.
    global _MESSAGE_TYPES
    if _MESSAGE_TYPES is None:
        from ..protocol.signals import MetaMessage, TunnelMessage
        _MESSAGE_TYPES = (TunnelMessage, MetaMessage)
    return _MESSAGE_TYPES


class Tracer:
    """Collects, aggregates, and retains the trace of one run."""

    def __init__(self, ring: int = DEFAULT_RING, keep_events: bool = True):
        self.flight = FlightRecorder(ring)
        self.metrics = MetricsRegistry()
        self.spans = SpanTracker(self.metrics)
        #: Full event log for exporters; ``None`` when ``keep_events``
        #: is off (flight recorder + metrics + spans still run).
        self.events: Optional[List[TraceEvent]] = [] if keep_events else None
        self.subscribers: List[Subscriber] = []
        #: Total events emitted (independent of ``keep_events``).
        self.emitted = 0
        #: Simulated-clock time of the latest event.
        self.last_ts = 0.0
        self._channel_hooks: Dict[int, Any] = {}

    # ------------------------------------------------------------------
    # the emission path
    # ------------------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        """Record one event everywhere.  Called from the instrumented
        runtime; keep it cheap."""
        self.emitted += 1
        self.last_ts = event.ts
        self.flight.record(event)
        self.spans.feed(event)
        self.metrics.feed(event)
        if self.events is not None:
            self.events.append(event)
        for subscriber in self.subscribers:
            subscriber(event)

    def subscribe(self, subscriber: Subscriber) -> None:
        self.subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Subscriber) -> None:
        if subscriber in self.subscribers:
            self.subscribers.remove(subscriber)

    # ------------------------------------------------------------------
    # flight-recorder access
    # ------------------------------------------------------------------
    def flight_tail(self, n: Optional[int] = None) -> List[str]:
        """The flight recorder's formatted tail (see
        :meth:`~repro.obs.recorder.FlightRecorder.tail`)."""
        return self.flight.tail(n)

    # ------------------------------------------------------------------
    # channel taps
    # ------------------------------------------------------------------
    def attach_channel(self, channel: Any) -> None:
        """Tap ``channel``'s link so every send emits a
        :class:`SignalSent`.  Idempotent per channel."""
        if id(channel) in self._channel_hooks:
            return
        hook = self._make_send_hook(channel)
        channel.link.add_transmit_hook(hook)
        self._channel_hooks[id(channel)] = (channel, hook)

    def detach_channel(self, channel: Any) -> None:
        entry = self._channel_hooks.pop(id(channel), None)
        if entry is not None:
            channel.link.remove_transmit_hook(entry[1])

    def _make_send_hook(self, channel: Any):
        emit = self.emit
        loop = channel.loop

        def send_hook(origin: Any, message: Any, forward: Any) -> None:
            tunnel_type, meta_type = _message_types()
            side = 0 if origin is channel.link.ends[0] else 1
            source = channel.ends[side].owner.name
            target = channel.ends[1 - side].owner.name
            if isinstance(message, tunnel_type):
                emit(SignalSent(
                    ts=loop.now, channel=channel.name, source=source,
                    target=target, kind=message.signal.kind,
                    label=signal_label(message),
                    tunnel=message.tunnel_id))
            elif isinstance(message, meta_type):
                emit(SignalSent(
                    ts=loop.now, channel=channel.name, source=source,
                    target=target, kind=message.signal.kind,
                    label=signal_label(message), tunnel=None))
            forward(origin, message)

        return send_hook

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """A deterministic JSON-friendly digest of the whole run."""
        return {
            "emitted": self.emitted,
            "last_ts": self.last_ts,
            "spans": self.spans.to_json(),
            "metrics": self.metrics.snapshot(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Tracer emitted=%d spans=%d last_ts=%.4f>" % (
            self.emitted, len(self.spans), self.last_ts)
