"""Counters and simulated-clock histograms.

The registry is fed by the :class:`~repro.obs.tracer.Tracer` with the
standard wiring below (signal counts by kind, retransmissions, fault
actions, goal churn); span-derived durations (time-to-``bothFlowing``,
span lifetimes) are observed by the span tracker.  Everything is keyed
to the simulated clock, so two same-seed runs snapshot identically —
percentiles included.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .events import (ChannelEvent, FaultInjected, GoalEvent, ProgramStep,
                     Retransmit, SignalReceived, SignalSent, SlotDrop,
                     SlotFailed, TraceEvent)

__all__ = ["Counter", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Counter %s=%d>" % (self.name, self.value)


class Histogram:
    """A named distribution of simulated-clock observations.

    Values are retained (runs are bounded, simulated, and small), so
    exact percentiles come for free and snapshots are deterministic.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile; ``None`` on an empty histogram."""
        if not self.values:
            return None
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self.values)
        rank = max(1, int(-(-p * len(ordered) // 100)))  # ceil
        return ordered[min(rank, len(ordered)) - 1]

    def snapshot(self) -> Dict[str, Any]:
        if not self.values:
            return {"count": 0}
        ordered = sorted(self.values)
        return {
            "count": len(ordered),
            "sum": self.total,
            "min": ordered[0],
            "max": ordered[-1],
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Histogram %s n=%d>" % (self.name, self.count)


class MetricsRegistry:
    """Get-or-create registry of counters and histograms."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name)
        return histogram

    # ------------------------------------------------------------------
    # standard event wiring
    # ------------------------------------------------------------------
    def feed(self, event: TraceEvent) -> None:
        """Update the standard metrics for one trace event."""
        if isinstance(event, SignalSent):
            self.counter("signals.sent").inc()
            self.counter("signals.sent.%s" % event.kind).inc()
        elif isinstance(event, SignalReceived):
            self.counter("signals.recv").inc()
            self.counter("signals.recv.%s" % event.kind).inc()
        elif isinstance(event, Retransmit):
            self.counter("slot.retransmits").inc()
            self.counter("slot.retransmits.%s" % event.kind).inc()
        elif isinstance(event, SlotDrop):
            self.counter("slot.drops.%s" % event.kind).inc()
        elif isinstance(event, SlotFailed):
            self.counter("slot.failures").inc()
        elif isinstance(event, GoalEvent):
            self.counter("goals.%s" % event.action).inc()
        elif isinstance(event, ProgramStep):
            self.counter("program.steps").inc()
        elif isinstance(event, FaultInjected):
            self.counter("faults.%s" % event.action).inc()
        elif isinstance(event, ChannelEvent):
            self.counter("channels.%s" % event.action).inc()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A deterministic, JSON-friendly dump of every metric."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
            "histograms": {name: h.snapshot()
                           for name, h in sorted(self.histograms.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<MetricsRegistry counters=%d histograms=%d>" % (
            len(self.counters), len(self.histograms))
