"""The single-slot goal primitives: ``openSlot``, ``closeSlot``,
``holdSlot`` (Sec. IV-A).

A goal object "reads all the signals received from its slot, and writes
all the signals sent to its slot".  It is a *goal* rather than a command
"because the box must have the cooperation of other boxes and users to
achieve it".  The paper characterizes their signal vocabularies
(Sec. VII):

* a ``closeSlot`` object emits ``close`` signals, and never ``open`` or
  ``oack``;
* an ``openSlot`` object emits ``open`` and ``oack`` signals, and never
  ``close`` (the ``oack`` case arises when it loses an open/open race);
* a ``holdSlot`` object emits ``oack`` signals, and never ``open`` or
  ``close``.

"When any of these goal objects opens or accepts a channel, it mutes
media flow on the channel in both directions" — implemented by minting
``noMedia`` descriptors and selectors from the hosting box.  Media
endpoints reuse the same classes with real descriptors supplied by the
endpoint (Sec. V assumes endpoints are programmed with the same
primitives, with users free to choose the mute flags).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from ..obs.events import GoalEvent
from ..protocol.codecs import Medium
from ..protocol.descriptor import Descriptor, Selector
from ..protocol.errors import PreconditionError
from ..protocol.signals import (Close, CloseAck, Describe, Oack, Open,
                                Select, TunnelSignal)
from ..protocol.slot import Slot

if TYPE_CHECKING:  # pragma: no cover
    from .box import Box

__all__ = ["Goal", "OpenSlot", "CloseSlot", "HoldSlot"]


class Goal:
    """Base class for the four media-control goal objects."""

    def __init__(self) -> None:
        self.host: Optional["Box"] = None
        self.slots: Tuple[Slot, ...] = ()
        self.attached = False

    # -- lifecycle ---------------------------------------------------------
    def attach(self, host: "Box", slots: Sequence[Slot]) -> None:
        """Gain control of ``slots`` within ``host``.

        "The first action of a goal object is to query its slots ... to
        get their protocol states and descriptors.  Then, having
        completed this initialization, the goal object proceeds to
        control its slot or slots" (Sec. VII).
        """
        self.host = host
        self.slots = tuple(slots)
        self.attached = True
        self._emit("install")
        self.on_attach()

    def detach(self) -> None:
        """Lose control; the object becomes garbage."""
        self.attached = False
        self._emit("release")
        self.on_detach()

    def _emit(self, action: str) -> None:
        host = self.host
        if host is None:
            return
        tr = host.loop.trace
        if tr is not None:
            tr.emit(GoalEvent(
                ts=host.loop.now, box=host.name,
                goal=type(self).__name__,
                slots=tuple(s.name for s in self.slots), action=action))

    def on_attach(self) -> None:
        raise NotImplementedError

    def on_detach(self) -> None:
        """Cancel timers etc.  Default: nothing."""

    # -- signal path --------------------------------------------------------
    def goal_receive(self, slot: Slot, signal: TunnelSignal) -> None:
        """Shown every signal received (and accepted) by a controlled
        slot, after the slot has updated its own state."""
        raise NotImplementedError

    def on_slot_failed(self, slot: Slot, reason: str) -> None:
        """Robust mode: ``slot`` exhausted its retransmission budget and
        fell back to ``closed`` without media.  The goal must not keep
        pushing (the peer is unreachable); default is to accept the
        ``noMedia`` outcome and do nothing."""

    # -- mute-everything helpers (server-side defaults) ----------------------
    def _local_descriptor(self, slot: Slot) -> Descriptor:
        """Descriptor describing this slot as a receiver; the host
        decides (boxes mint ``noMedia``, endpoints describe themselves)."""
        assert self.host is not None
        return self.host.make_local_descriptor(slot)

    def _answer(self, slot: Slot) -> None:
        """Answer the most recent received descriptor with a selector."""
        assert self.host is not None
        if slot.remote_descriptor is None:
            return
        selector = self.host.make_selector(slot, slot.remote_descriptor)
        slot.send_select(selector)

    def _accept(self, slot: Slot) -> None:
        """Send ``oack`` then ``select`` in sequence ("!oack / !select
        means send the two signals in sequence", Fig. 9)."""
        slot.send_oack(self._local_descriptor(slot))
        self._answer(slot)

    def _redescribe(self, slot: Slot) -> None:
        """Describe this slot as ourselves and answer the far end's
        current descriptor; used when a single-slot goal takes over a
        flowing slot previously driven by another goal."""
        slot.send_describe(self._local_descriptor(slot))
        self._answer(slot)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = ",".join(s.name for s in self.slots) or "-"
        return "<%s %s>" % (type(self).__name__, names)


class OpenSlot(Goal):
    """Goal: "open a media channel and get it to the flowing state ...
    the object takes every possible opportunity to push the slot (and, by
    extension, the media channel) toward the flowing state.  If an
    openslot sends open and receives reject, then it sends open again."

    ``retry_interval`` spaces out re-opens after a rejection; the paper
    retries unconditionally, and a nonzero spacing merely keeps the
    discrete-event simulation from spinning at a single instant when an
    openslot faces a closeslot (that pairing never stabilizes by design —
    its specification is only ``◇□¬bothFlowing``).
    """

    def __init__(self, medium: Medium, retry_interval: float = 0.5):
        super().__init__()
        self.medium = medium
        self.retry_interval = retry_interval
        self._retry_timer = None
        self.rejections = 0
        #: Robust mode: the slot's retransmission budget ran out; the
        #: goal stops pushing and the program can observe ``slot_failed``.
        self.gave_up = False

    @property
    def slot(self) -> Slot:
        return self.slots[0]

    def on_attach(self) -> None:
        slot = self.slot
        if slot.is_closed:
            self._send_open()
        elif slot.is_opened:
            # Tolerated for object reuse across program states and for
            # race losses; an openslot is happy to be the acceptor.
            self._accept(slot)
        elif slot.is_flowing:
            # Taking over a flowing slot whose last-sent descriptor came
            # from a previous goal (e.g. a flowlink that forwarded some
            # other endpoint's descriptor): re-describe as ourselves so
            # the far end stops sending to a stale address, and answer
            # the current descriptor (Fig. 3, Snapshot 2 behaviour).
            self._redescribe(slot)
        # opening: already headed where we want; closing: wait for the
        # closeack, then reopen (see goal_receive).

    def on_detach(self) -> None:
        if self._retry_timer is not None:
            self._retry_timer.cancel()
            self._retry_timer = None

    def _send_open(self) -> None:
        self.slot.send_open(self.medium, self._local_descriptor(self.slot))

    def _schedule_retry(self) -> None:
        if self._retry_timer is not None:
            self._retry_timer.cancel()
        assert self.host is not None
        self._retry_timer = self.host.node.set_timer(
            self.retry_interval, self._retry)

    def _retry(self) -> None:
        self._retry_timer = None
        if self.attached and not self.gave_up and self.slot.is_closed:
            self._send_open()

    def on_slot_failed(self, slot: Slot, reason: str) -> None:
        """The open (or close) went unanswered past the retry budget:
        accept the ``noMedia`` fallback rather than re-opening into a
        black hole.  ``slot.failed`` stays set for program guards."""
        self.gave_up = True
        if self._retry_timer is not None:
            self._retry_timer.cancel()
            self._retry_timer = None

    def goal_receive(self, slot: Slot, signal: TunnelSignal) -> None:
        if isinstance(signal, Open):
            # We lost an open/open race; back off and accept instead.
            self._accept(slot)
        elif isinstance(signal, Oack):
            # "?oack / !select": answer the acceptor's descriptor.
            self._answer(slot)
        elif isinstance(signal, Describe):
            self._answer(slot)
        elif isinstance(signal, Close):
            # Rejected (or closed from the far end): push again.
            self.rejections += 1
            if self.retry_interval <= 0:
                self._send_open()
            else:
                self._schedule_retry()
        elif isinstance(signal, CloseAck):
            # Only reachable if we attached while the slot was closing
            # (a previous goal had sent close); now reopen.
            self._send_open()
        # Select: nothing for a server-side openslot to do.


class CloseSlot(Goal):
    """Goal: "get its slot to the closed state and keep it there.  Once
    its slot is closed, if the closeSlot goal object receives an open
    signal, the object sends reject immediately"."""

    def __init__(self) -> None:
        super().__init__()
        self.rejected = 0

    @property
    def slot(self) -> Slot:
        return self.slots[0]

    def on_attach(self) -> None:
        if self.slot.is_live:
            self.slot.send_close()
        # closed: done; closing: the closeack will arrive by itself.

    def goal_receive(self, slot: Slot, signal: TunnelSignal) -> None:
        if isinstance(signal, Open):
            # The slot moved to ``opened``; reject immediately.
            self.rejected += 1
            slot.send_close()
        # Close: the slot already acknowledged and closed — goal reached.
        # CloseAck: our close completed — goal reached.
        # Oack/Describe/Select cannot reach us: if we attached in a live
        # state we sent close at once, and the closing slot drains them.


class HoldSlot(Goal):
    """Goal: "accept a media channel and get it to the flowing state,
    but only if the channel is requested by the other end of the
    signaling path.  The channel will be closed if the other end closes
    it, and will remain closed until the other end asks to open it."
    """

    def __init__(self) -> None:
        super().__init__()
        self.accepted = 0

    @property
    def slot(self) -> Slot:
        return self.slots[0]

    def on_attach(self) -> None:
        slot = self.slot
        if slot.is_opened:
            self.accepted += 1
            self._accept(slot)
        elif slot.is_flowing:
            # The slot was flowing under another goal (typically a
            # flowlink being replaced, as in Fig. 3 Snapshot 2): the
            # held channel stays open but must stop carrying media, so
            # re-describe as noMedia and answer with a noMedia selector.
            self._redescribe(slot)
        # closed: wait for an open; opening: a previous goal asked — wait
        # for the far end's answer; closing: the closeack will close it
        # and we hold there.

    def goal_receive(self, slot: Slot, signal: TunnelSignal) -> None:
        if isinstance(signal, Open):
            self.accepted += 1
            self._accept(slot)
        elif isinstance(signal, Oack):
            # The slot was opening when we gained control and the far end
            # accepted; complete the handshake with our selector.
            self._answer(slot)
        elif isinstance(signal, Describe):
            self._answer(slot)
        # Close/CloseAck: slot closed; hold there until reopened.
        # Select: nothing to do.


def require_medium_match(s1: Slot, s2: Slot) -> None:
    """Enforce the flowlink precondition: "if both slots have the medium
    attribute defined ... their medium attributes are the same"
    (Sec. IV-A)."""
    if s1.medium is not None and s2.medium is not None \
            and s1.medium != s2.medium:
        raise PreconditionError(
            "flowlinked slots carry different media: %s=%s, %s=%s"
            % (s1.name, s1.medium, s2.name, s2.medium))


__all__.append("require_medium_match")
