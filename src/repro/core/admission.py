"""Admission control for overloaded boxes (overload resilience layer).

Long-lived network elements cannot serve unbounded load: a box in a
composition chain must *shed* excess session setups gracefully rather
than time every caller out.  This module supplies the policy and the
bookkeeping; :meth:`repro.core.box.Box.on_tunnel_signal` consults it
when an ``open`` arrives and answers with the structured
:class:`~repro.protocol.signals.Busy` refusal when a limit fires.  The
refused opener retries with bounded backoff and ultimately degrades to
the paper's ``noMedia`` fallback — shedding is compositional, not a
collapse.

Three limits, all optional (0 disables each):

* ``max_concurrent`` — cap on media channels concurrently live at the
  box (its per-worker fan-in budget);
* ``per_tenant_concurrent`` — the same cap bucketed by *tenant*, the
  agent that initiated the signaling channel the open arrived on, so a
  heavy-hitter upstream cannot starve everyone else;
* ``setup_rate``/``setup_burst`` — a token bucket over the *rate* of
  setups, filled on the simulated clock, protecting against arrival
  spikes even when concurrency is low.

Determinism: all state advances on the loop's simulated clock and on
insertion-ordered dicts — same seed, same sheds, same fingerprints.
When no box installs a policy the runtime's behavior is byte-identical
to before this module existed (one ``is None`` attribute test on the
open path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict

if TYPE_CHECKING:  # pragma: no cover
    from typing import Optional

    from ..network.eventloop import EventLoop
    from ..protocol.slot import Slot

__all__ = ["AdmissionPolicy", "AdmissionControl", "TokenBucket"]


class TokenBucket:
    """A clock-agnostic token bucket: ``burst`` capacity, refilled at
    ``rate`` tokens per clock second.

    The clock is injected as a zero-argument callable so the same
    arithmetic serves both admission control (the *simulated* clock —
    deterministic, fingerprint-pinned) and the live gateway's per-client
    rate limiting (``time.monotonic``).  Refill happens lazily at each
    query; no timers are armed.
    """

    __slots__ = ("rate", "burst", "_tokens", "_last", "_clock")

    def __init__(self, rate: float, burst: int,
                 clock: Callable[[], float]):
        self.rate = rate
        self.burst = burst
        self._tokens = float(burst)
        self._last = clock()
        self._clock = clock

    @property
    def tokens(self) -> float:
        return self._tokens

    def refill(self) -> None:
        """Credit tokens for the clock time elapsed since the last
        refill, capped at the burst size (floor 1, so ``burst=0``
        configurations still admit a steady trickle)."""
        now = self._clock()
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(float(max(self.burst, 1)),
                               self._tokens + elapsed * self.rate)
            self._last = now

    def peek(self) -> bool:
        """Refill, then report whether one whole token is available —
        without consuming it (admission only bills admitted setups)."""
        self.refill()
        return self._tokens >= 1.0

    def take(self) -> None:
        """Consume one token (caller has already checked :meth:`peek`)."""
        self._tokens -= 1.0

    def try_take(self) -> bool:
        """Refill, then atomically take one token if available.  The
        one-call form the gateway uses per request."""
        self.refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<TokenBucket %.3f/%d tokens=%.3f>" % (
            self.rate, self.burst, self._tokens)


@dataclass(frozen=True)
class AdmissionPolicy:
    """Limits for one box's admission control.  Every limit defaults to
    0 = unlimited, so ``AdmissionPolicy()`` admits everything.

    ``retry_after`` is the hint (simulated seconds) placed into the
    ``busy`` refusal; 0 leaves the opener on its own backoff schedule.
    """

    max_concurrent: int = 0
    per_tenant_concurrent: int = 0
    setup_rate: float = 0.0
    setup_burst: int = 1
    retry_after: float = 0.0


class AdmissionControl:
    """Per-box admission bookkeeping: live-channel tracking, per-tenant
    buckets, and a sim-clock token bucket for setup rate.

    The active set is a ``Dict[Slot, None]`` used as an insertion-
    ordered set (plain sets iterate in hash order, which is banned for
    determinism — audit rule RC812).  Slots are pruned lazily: a slot
    whose episode ended (state left the live set) stops counting the
    next time a limit is evaluated, with no hook needed on the close
    path.
    """

    __slots__ = ("policy", "_loop", "_active", "_tenants", "_bucket",
                 "admitted", "shed_rate", "shed_concurrent", "shed_tenant")

    def __init__(self, loop: "EventLoop", policy: AdmissionPolicy):
        self.policy = policy
        self._loop = loop
        self._active: Dict["Slot", None] = {}
        self._tenants: Dict[str, Dict["Slot", None]] = {}
        #: Setup-rate limiter on the *simulated* clock.  The arithmetic
        #: lives in :class:`TokenBucket` (shared with the live gateway);
        #: refill points and consumption order below are unchanged, so
        #: shed sequences — and hence fingerprints — are identical.
        self._bucket = TokenBucket(policy.setup_rate, policy.setup_burst,
                                   lambda: self._loop.now)

        # shed/admit counters (the soak harness and metrics read these)
        self.admitted = 0
        self.shed_rate = 0
        self.shed_concurrent = 0
        self.shed_tenant = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def shed_total(self) -> int:
        return self.shed_rate + self.shed_concurrent + self.shed_tenant

    def active_count(self) -> int:
        """Live admitted channels right now (prunes first)."""
        self._prune()
        return len(self._active)

    def tenant_count(self, tenant: str) -> int:
        self._prune()
        bucket = self._tenants.get(tenant)
        return 0 if bucket is None else len(bucket)

    def counters(self) -> Dict[str, int]:
        """Deterministic snapshot of the shed/admit counters."""
        return {
            "admitted": self.admitted,
            "shed_rate": self.shed_rate,
            "shed_concurrent": self.shed_concurrent,
            "shed_tenant": self.shed_tenant,
        }

    # ------------------------------------------------------------------
    # the decision
    # ------------------------------------------------------------------
    def admit(self, slot: "Slot") -> "Optional[str]":
        """Decide on one just-received ``open`` at ``slot`` (the box's
        own slot, state ``opened``).

        Returns ``None`` and registers the slot when admitted, or the
        shed reason (``"rate"``, ``"concurrent"``, ``"tenant"``) when a
        limit fired.  The rate token is only consumed on admission, so
        a concurrency-shed burst does not also drain the bucket.
        """
        policy = self.policy
        if policy.setup_rate > 0:
            if not self._bucket.peek():
                self.shed_rate += 1
                return "rate"
        self._prune()
        if policy.max_concurrent > 0 \
                and len(self._active) >= policy.max_concurrent:
            self.shed_concurrent += 1
            return "concurrent"
        tenant = slot.channel_end.tenant
        bucket = self._tenants.get(tenant)
        if policy.per_tenant_concurrent > 0 and bucket is not None \
                and len(bucket) >= policy.per_tenant_concurrent:
            self.shed_tenant += 1
            return "tenant"
        if policy.setup_rate > 0:
            self._bucket.take()
        self._active[slot] = None
        if bucket is None:
            bucket = self._tenants[tenant] = {}
        bucket[slot] = None
        self.admitted += 1
        return None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _prune(self) -> None:
        active = self._active
        if not active:
            return
        dead = [slot for slot in active if not slot.is_live]
        for slot in dead:
            del active[slot]
        if dead:
            for bucket in self._tenants.values():
                for slot in dead:
                    if slot in bucket:
                        del bucket[slot]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return ("<AdmissionControl active=%d admitted=%d shed=%d>"
                % (len(self._active), self.admitted, self.shed_total))
