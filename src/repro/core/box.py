"""The Box: a peer module involved in media control (Secs. III-A, VII).

"We use the word box as a short synonym for 'peer module involved in
media control'."  A box owns channel ends (and hence slots), a
:class:`~repro.core.maps.Maps` object associating slots with goal
objects, and optionally a state-oriented program
(:mod:`repro.core.program`).

Signal flow mirrors Fig. 11: the box receives a stimulus, the slot
updates its protocol state, ``Maps`` finds the goal object, and the goal
sees the signal through ``goalReceive``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..network.eventloop import EventLoop
from ..obs.events import SlotFailureRecord
from ..protocol.channel import ChannelEnd, SignalingAgent
from ..protocol.codecs import Medium, NO_MEDIA
from ..protocol.descriptor import Descriptor, DescriptorFactory, Selector
from ..protocol.errors import ConfigurationError
from ..protocol.signals import MetaSignal, Open, TunnelSignal
from ..protocol.slot import Slot
from .admission import AdmissionControl, AdmissionPolicy
from .flowlink import FlowLink
from .goals import CloseSlot, Goal, HoldSlot, OpenSlot
from .maps import Maps

__all__ = ["Box"]


class Box(SignalingAgent):
    """An application-server module programmed with the goal primitives."""

    def __init__(self, loop: EventLoop, name: str, cost: float = 0.0):
        super().__init__(loop, name, cost=cost)
        self.maps = Maps()
        self._descriptors = DescriptorFactory(origin=name)
        #: Named slots, for programs and tests (``box.slot("1a")``).
        self.slot_names: Dict[str, Slot] = {}
        #: Every slot name this box has declared, bound or not.  A name
        #: enters this set when a slot is named (:meth:`name_slot`) or
        #: declared ahead of binding (:meth:`declare_slot`); it survives
        #: :meth:`forget_slot` because the box may re-create the slot
        #: (click-to-dial tears down and redials channel 2).  Programs
        #: validate their goal annotations against it at construction.
        self.declared_slots: Set[str] = set()
        #: Signals that arrived for a slot with no controlling goal.
        self.unmanaged: List[Tuple[Slot, TunnelSignal]] = []
        #: Robust mode: slots whose retransmission budget ran out,
        #: newest last, as ``(slot, reason)``.
        self.failed_log: List[Tuple[Slot, str]] = []
        #: Structured counterparts of ``failed_log``: one
        #: :class:`~repro.obs.events.SlotFailureRecord` per failure,
        #: carrying the flight recorder's tail when the loop is traced —
        #: the signaling history that led to the budget running out.
        self.failure_records: List[SlotFailureRecord] = []
        #: Meta-signals seen (newest last), for programs polling them.
        self.meta_log: List[Tuple[ChannelEnd, MetaSignal]] = []
        #: Optional observer invoked after every stimulus (programs use
        #: this to re-evaluate transition guards).
        self.after_stimulus: Optional[Callable[[], None]] = None
        #: The state-oriented program driving this box, if any.
        self.program = None
        #: Admission control; ``None`` (the default) admits everything
        #: with zero overhead beyond this attribute test.
        self.admission: Optional[AdmissionControl] = None
        #: Goal-poll memo: the value of ``goal_gen`` (inherited from
        #: :class:`SignalingAgent`) at the end of the last full
        #: no-progress guard evaluation.  Recorded only by memo-safe
        #: programs (:class:`repro.core.program.Program`); ``-1`` never
        #: equals a real generation, so the memo starts (and, for
        #: non-memo-safe pollers, stays) disabled.
        self._poll_gen = -1
        #: Cleared when a slot owned by another agent is bound to one of
        #: this box's program-local names: that slot's state changes
        #: bump the *other* agent's generation, so the memo would skip
        #: polls it must not.
        self._goal_memo_ok = True

    # ------------------------------------------------------------------
    # descriptor policy: a server slot masquerades as a media endpoint
    # but can neither send nor receive media (Sec. IV-A), so it mutes
    # both directions.
    # ------------------------------------------------------------------
    def make_local_descriptor(self, slot: Slot) -> Descriptor:
        """Descriptor offered when a goal opens/accepts on ``slot``."""
        return self._descriptors.no_media()

    def make_selector(self, slot: Slot, descriptor: Descriptor) -> Selector:
        """Selector answering ``descriptor`` on ``slot``."""
        return Selector(answers=descriptor.id, address=None, codec=NO_MEDIA)

    # ------------------------------------------------------------------
    # slot naming
    # ------------------------------------------------------------------
    def name_slot(self, name: str, slot: Slot) -> Slot:
        """Register ``slot`` under a program-local name."""
        self.slot_names[name] = slot
        self.declared_slots.add(name)
        self.goal_gen += 1
        if slot.channel_end.owner is not self:
            self._goal_memo_ok = False
        return slot

    def declare_slot(self, *names: str) -> None:
        """Declare slot names before their channels exist, so programs
        annotating them can be validated at construction time."""
        self.declared_slots.update(names)

    def slot(self, name: str) -> Slot:
        """Look up a named slot."""
        try:
            return self.slot_names[name]
        except KeyError:
            raise ConfigurationError(
                "box %s has no slot named %r (known: %s)"
                % (self.name, name, ", ".join(sorted(self.slot_names))))

    def forget_slot(self, name: str) -> None:
        """Drop a program-local slot name (e.g. after channel teardown)."""
        self.slot_names.pop(name, None)
        self.goal_gen += 1

    # ------------------------------------------------------------------
    # goal management (the programming primitives)
    # ------------------------------------------------------------------
    def set_goal(self, goal: Goal, *slots: Slot) -> Goal:
        """Install ``goal`` over ``slots`` and let it take initiative."""
        self.maps.assign(goal, slots)
        goal.attach(self, slots)
        return goal

    def open_slot(self, slot: Slot, medium: Medium, **kwargs) -> OpenSlot:
        """Annotate ``openSlot(slot, medium)``."""
        return self.set_goal(OpenSlot(medium, **kwargs), slot)

    def close_slot(self, slot: Slot) -> CloseSlot:
        """Annotate ``closeSlot(slot)``."""
        return self.set_goal(CloseSlot(), slot)

    def hold_slot(self, slot: Slot) -> HoldSlot:
        """Annotate ``holdSlot(slot)``."""
        return self.set_goal(HoldSlot(), slot)

    def flow_link(self, s1: Slot, s2: Slot) -> FlowLink:
        """Annotate ``flowLink(s1, s2)``."""
        return self.set_goal(FlowLink(), s1, s2)

    def release_goal(self, goal: Goal) -> None:
        """Remove a goal, leaving its slots uncontrolled."""
        self.maps.release(goal)

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def set_admission(self, policy: Optional[AdmissionPolicy]
                      ) -> Optional[AdmissionControl]:
        """Install (or, with ``None``, remove) admission control.  Every
        subsequent incoming ``open`` is checked against the policy and
        refused with a ``busy`` when a limit fires.  Returns the live
        :class:`AdmissionControl` so callers can read its counters."""
        self.admission = (None if policy is None
                          else AdmissionControl(self.loop, policy))
        return self.admission

    # ------------------------------------------------------------------
    # stimulus dispatch
    # ------------------------------------------------------------------
    def on_tunnel_signal(self, slot: Slot, signal: TunnelSignal) -> None:
        admission = self.admission
        if admission is not None and type(signal) is Open \
                and slot.is_opened:
            # ``is_opened`` guards the race-loss replay: a losing-side
            # open that already moved the slot onward must not be
            # double-counted, and ``send_busy`` is only legal from
            # ``opened`` anyway.
            reason = admission.admit(slot)
            if reason is not None:
                slot.send_busy(reason, admission.policy.retry_after)
                self._poll()
                return
        goal = self.maps.goal_for(slot)
        if goal is not None:
            goal.goal_receive(slot, signal)
        else:
            self.unmanaged.append((slot, signal))
            self.on_unmanaged_signal(slot, signal)
        self._poll()

    def on_meta(self, end: ChannelEnd, signal: MetaSignal) -> None:
        self.meta_log.append((end, signal))
        if self.program is not None:
            self.program.note_meta(end, signal)
        self.on_meta_signal(end, signal)
        self._poll()

    def on_slot_failed(self, slot: Slot, reason: str) -> None:
        """Robust mode: route a retransmission-budget failure to the
        goal controlling the slot, then re-poll the program — the
        ``slot_failed`` guard predicate is now true for the slot."""
        self.failed_log.append((slot, reason))
        tr = self.loop.trace
        self.failure_records.append(SlotFailureRecord(
            slot=slot.name, reason=reason, time=self.loop.now,
            flight_tail=tuple(tr.flight_tail()) if tr is not None else ()))
        goal = self.maps.goal_for(slot)
        if goal is not None:
            goal.on_slot_failed(slot, reason)
        self._poll()

    def on_channel_gone(self, end: ChannelEnd) -> None:
        # Slots of the dead channel are force-closed; drop their goals
        # and names so programs see a clean world.
        for slot in end.slots.values():
            self.maps.release_slot(slot)
        dead_names = [n for n, s in self.slot_names.items()
                      if s.channel_end is end]
        for name in dead_names:
            del self.slot_names[name]
        self.goal_gen += 1
        if self.program is not None:
            self.program.note_channel_down(end)
        self.on_channel_down(end)
        self._poll()

    def _poll(self) -> None:
        cb = self.after_stimulus
        if cb is not None and self._poll_gen != self.goal_gen:
            cb()

    # ------------------------------------------------------------------
    # overridable application hooks
    # ------------------------------------------------------------------
    def on_unmanaged_signal(self, slot: Slot, signal: TunnelSignal) -> None:
        """A signal arrived on a slot no goal controls.  Default: keep it
        in ``unmanaged`` (already done) and continue."""

    def on_meta_signal(self, end: ChannelEnd, signal: MetaSignal) -> None:
        """A non-teardown meta-signal arrived.  Default: nothing (it is
        already recorded in ``meta_log``)."""

    def on_channel_down(self, end: ChannelEnd) -> None:
        """A channel this box did not tear down has disappeared."""
