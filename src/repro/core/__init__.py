"""The paper's primary contribution: goal primitives, flowlinks, boxes,
and state-oriented box programs (Secs. IV and VII)."""

from .admission import AdmissionControl, AdmissionPolicy
from .box import Box
from .flowlink import FlowLink
from .goals import CloseSlot, Goal, HoldSlot, OpenSlot, require_medium_match
from .maps import Maps
from .predicates import (all_of, always, any_of, is_closed, is_flowing,
                         is_opened, is_opening, negate, slot_failed)
from .program import (END, GoalSpec, Program, State, Timeout, Transition,
                      close_slot, flow_link, hold_slot, on_channel_down,
                      on_meta, open_slot)

__all__ = [
    "AdmissionControl", "AdmissionPolicy",
    "Box", "FlowLink", "CloseSlot", "Goal", "HoldSlot", "OpenSlot",
    "require_medium_match", "Maps",
    "all_of", "always", "any_of", "is_closed", "is_flowing", "is_opened",
    "is_opening", "negate", "slot_failed",
    "END", "GoalSpec", "Program", "State", "Timeout", "Transition",
    "close_slot", "flow_link", "hold_slot", "on_channel_down", "on_meta",
    "open_slot",
]
