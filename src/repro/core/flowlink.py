"""The ``flowLink`` goal object (Secs. IV-A and VII, Fig. 12).

A flowlink controls two slots and "attempts to match their states as if
the slots had always been connected transparently, and to keep them
matched.  It has a bias toward media flow" (Sec. IV-A).

The implementation follows Sec. VII exactly:

* **Primary organization — state matching** (Fig. 12).  From whichever
  superstate the environment puts the pair in (*both live*, *one live
  one dead*, *both dead*), the flowlink works toward one of the two goal
  substates *both flowing* or *both closed*.  The bias toward flow means
  a dead slot found at link-creation time is opened; a slot killed by an
  environment ``close`` afterwards drags the other slot down with it.

* **Secondary organization — descriptors.**  Each slot's most recent
  received descriptor is cached (the :class:`~repro.protocol.slot.Slot`
  itself holds it, per Sec. VII).  A slot is *described* if a current
  descriptor has been received for it; each slot has a Boolean
  *up-to-date* (``utd``) "that is true if and only if the other slot is
  described and this slot has been sent its most recent descriptor."
  In any live state the flowlink works to make the ``utd`` variables
  true, via the descriptors carried in ``open``, ``oack``, and
  ``describe`` signals.

* **Selectors need no history.**  "When a flowlink receives a selector
  and is in a state to forward it to the other slot, it checks before
  forwarding that the selector is a response to the other slot's
  descriptor.  If it is not a proper response, then the selector is
  obsolete and is discarded."  Discards are always recovered, because
  any descriptor change re-falsifies a ``utd`` variable, which triggers
  a ``describe``, which triggers a fresh selector.
"""

from __future__ import annotations

from typing import Dict

from ..protocol.signals import (Close, CloseAck, Describe, Oack, Open,
                                Select, TunnelSignal)
from ..protocol.slot import (CLOSED, CLOSING, FLOWING, LIVE_STATES,
                             OPENED, Slot)
from .goals import Goal, require_medium_match

__all__ = ["FlowLink"]


class FlowLink(Goal):
    """Coordinates the signals of its two slots (Sec. III-A)."""

    def __init__(self) -> None:
        super().__init__()
        #: up-to-date flags, keyed by slot.
        self._utd: Dict[Slot, bool] = {}
        #: slots to reopen as soon as their in-progress close completes.
        self._reopen: Dict[Slot, bool] = {}
        # observability
        self.forwarded_selects = 0
        self.discarded_selects = 0
        self.describes_sent = 0
        self.opens_sent = 0

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def other(self, slot: Slot) -> Slot:
        """The flowlink's other slot."""
        s1, s2 = self.slots
        if slot is s1:
            return s2
        if slot is s2:
            return s1
        raise ValueError("%r does not control slot %s" % (self, slot.name))

    def is_up_to_date(self, slot: Slot) -> bool:
        """The paper's ``utd`` variable for ``slot``."""
        return self._utd[slot]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_attach(self) -> None:
        if len(self.slots) != 2:
            raise ValueError("a flowlink controls exactly two slots")
        s1, s2 = self.slots
        require_medium_match(s1, s2)
        self._utd = {s1: False, s2: False}
        self._reopen = {s1: False, s2: False}
        # Initial bias toward media flow: a dead slot paired with a live
        # one is pulled up rather than the live one pulled down.
        for slot in self.slots:
            peer = self.other(slot)
            if peer.is_live and slot.is_dead:
                if slot.is_closed:
                    self._open_through(slot)
                else:
                    # Mid-close; reopen once the closeack lands.
                    self._reopen[slot] = True
        self._work()

    # ------------------------------------------------------------------
    # the reconciliation engine
    # ------------------------------------------------------------------
    def _work(self) -> None:
        """Idempotent push toward the current goal substate of Fig. 12.

        Safe to call after any event; guards ensure each obligation is
        discharged exactly once (sending an ``oack`` moves the slot out
        of ``opened``; sending a descriptor sets ``utd``).
        """
        if not self.attached:
            return
        for slot in self.slots:
            peer = self.other(slot)
            state = slot.state
            if self._reopen[slot] and state == CLOSED:
                self._reopen[slot] = False
                if peer.state in LIVE_STATES:
                    self._open_through(slot)
                state = slot.state
            if state == OPENED and peer.remote_descriptor is not None:
                # Accept, carrying the path-peer's current descriptor.
                slot.send_oack(peer.remote_descriptor)
                self._utd[slot] = True
            elif state == FLOWING and not self._utd[slot] \
                    and peer.remote_descriptor is not None:
                slot.send_describe(peer.remote_descriptor)
                self.describes_sent += 1
                self._utd[slot] = True

    def _open_through(self, slot: Slot) -> None:
        """Open ``slot``, describing the far side of the path.

        If the peer slot is described, its cached descriptor rides the
        ``open`` and ``slot`` is immediately up to date (the paper's
        Case 2).  Otherwise a placeholder ``noMedia`` descriptor minted
        by the host is sent and a ``describe`` will follow once the real
        descriptor arrives.
        """
        peer = self.other(slot)
        if peer.is_described:
            descriptor = peer.remote_descriptor
            self._utd[slot] = True
        else:
            descriptor = self._local_descriptor(slot)
            self._utd[slot] = False
        assert peer.medium is not None
        slot.send_open(peer.medium, descriptor)
        self.opens_sent += 1

    # ------------------------------------------------------------------
    # signal handling
    # ------------------------------------------------------------------
    def goal_receive(self, slot: Slot, signal: TunnelSignal) -> None:
        peer = self.other(slot)
        # Exact-type dispatch; the signal classes are final.
        cls = type(signal)
        if cls is Open:
            # ``slot`` is now opened (or backed off from a race).  Its
            # descriptor is fresh, so the peer is no longer up to date.
            require_medium_match(slot, peer)
            self._utd[peer] = False
            if peer.state == CLOSED:
                self._open_through(peer)
            elif peer.state == CLOSING:
                self._reopen[peer] = True
            self._work()
        elif cls is Oack or cls is Describe:
            # A fresh descriptor arrived on ``slot``.
            self._utd[peer] = False
            self._work()
        elif cls is Select:
            self._forward_select(slot, signal)
        elif cls is Close:
            # Environment-initiated death propagates to the other slot.
            self._utd[slot] = False
            self._utd[peer] = False
            if slot.state == CLOSED and peer.state in LIVE_STATES:
                peer.send_close()
            # slot.is_closing means closes crossed; our own close is
            # already in flight and its closeack will finish the job.
        elif cls is CloseAck:
            # A close we sent has completed; a reopen may be pending.
            self._work()

    def on_slot_failed(self, slot: Slot, reason: str) -> None:
        """One side of the link is unreachable (its retransmission budget
        ran out and the slot fell back to ``closed``).  Degrade like an
        environment close (Fig. 12, both-dead goal substate): drag the
        other slot down instead of linking media into a black hole."""
        peer = self.other(slot)
        self._utd[slot] = False
        self._utd[peer] = False
        self._reopen[slot] = False
        self._reopen[peer] = False
        if peer.is_live:
            peer.send_close()

    def _forward_select(self, slot: Slot, signal: Select) -> None:
        """Forward a selector if it is fresh, else discard it."""
        peer = self.other(slot)
        selector = signal.selector
        fresh = (peer.state == FLOWING
                 and peer.remote_descriptor is not None
                 and (selector.answers is peer.remote_descriptor.id
                      or selector.answers == peer.remote_descriptor.id))
        if fresh:
            peer.send_select(selector)
            self.forwarded_selects += 1
        else:
            self.discarded_selects += 1
