"""Slot predicates and guard combinators for box programs (Sec. IV-A).

"For each slot, there are predicates isClosed, isOpening, isOpened, and
isFlowing corresponding to the four states in Figure 5.  These
predicates can be used as guards on transitions in box programs."

Guards here are callables taking the running
:class:`~repro.core.program.Program` and returning a boolean.  A guard
over a named slot is false while the name is unbound (its channel does
not exist yet or has been destroyed), which lets programs write guards
that only become meaningful once a channel is up.

Every guard built by this module also carries a *static description* of
itself (see :func:`describe_guard`): slot predicates record which
predicate they test over which slot name, and combinators record their
operator and operands.  The static analyzer
(:mod:`repro.staticcheck`) reads these descriptions to reason about
transitions without running them; hand-written guard callables without
a description are treated as opaque.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .program import Program

__all__ = [
    "Guard",
    "is_closed", "is_opening", "is_opened", "is_flowing", "slot_failed",
    "all_of", "any_of", "negate", "always",
    "describe_guard", "guard_atom", "memo_safe_guard",
]

Guard = Callable[["Program"], bool]

#: Attribute under which a guard stores its static atom description.
_ATOM_ATTR = "static_atom"
#: Attributes under which a combinator stores operator and operands.
_OP_ATTR = "static_op"
_OPERANDS_ATTR = "static_operands"


def _tag_atom(guard: Guard, atom: Tuple[Any, ...]) -> Guard:
    """Attach a static atom description to a leaf guard."""
    setattr(guard, _ATOM_ATTR, atom)
    return guard


def _tag_combinator(guard: Guard, op: str,
                    operands: Tuple[Guard, ...]) -> Guard:
    """Attach operator/operand descriptions to a combinator guard."""
    setattr(guard, _OP_ATTR, op)
    setattr(guard, _OPERANDS_ATTR, operands)
    return guard


def guard_atom(guard: Guard) -> Optional[Tuple[Any, ...]]:
    """The static atom of a leaf guard, or ``None``."""
    atom = getattr(guard, _ATOM_ATTR, None)
    return atom if isinstance(atom, tuple) else None


def describe_guard(guard: Guard) -> Tuple[Any, ...]:
    """A static, hashable description of ``guard``.

    Returns one of::

        ("atom", <atom tuple>)          # a described leaf guard
        (<op>, <description>, ...)      # "all" / "any" / "not"
        ("opaque", <qualname>, <id>)    # an undescribed callable

    Opaque descriptions embed the callable's identity so that two
    different hand-written guards never compare equal (the analyzer
    must not report a nondeterministic race between guards it cannot
    read).
    """
    atom = guard_atom(guard)
    if atom is not None:
        return ("atom", atom)
    op = getattr(guard, _OP_ATTR, None)
    operands = getattr(guard, _OPERANDS_ATTR, None)
    if isinstance(op, str) and isinstance(operands, tuple):
        return (op,) + tuple(describe_guard(g) for g in operands)
    return ("opaque", getattr(guard, "__qualname__",
                              getattr(guard, "__name__", "?")), id(guard))


def memo_safe_guard(guard: Guard) -> bool:
    """True when ``guard``'s verdict is a pure function of name-bound
    slot state — ``("slot", ...)`` atoms (state and ``failed``
    predicates) and ``("always",)`` under ``all``/``any``/``not``
    combinators.  Every input such a guard reads is covered by the
    owning box's ``goal_gen`` generation counter, so a program whose
    guards are all memo-safe may skip re-evaluation while the counter
    is unchanged.  Event-consuming guards (``meta``/``down``), which
    have side effects, and opaque hand-written callables, which can
    read anything, are conservatively unsafe."""
    atom = guard_atom(guard)
    if atom is not None:
        return atom[0] in ("slot", "always")
    op = getattr(guard, _OP_ATTR, None)
    operands = getattr(guard, _OPERANDS_ATTR, None)
    if isinstance(op, str) and isinstance(operands, tuple):
        return all(memo_safe_guard(g) for g in operands)
    return False


def _slot_state_guard(name: str, state: str) -> Guard:
    def guard(program: "Program") -> bool:
        slot = program.box.slot_names.get(name)
        return slot is not None and slot.state == state
    guard.__name__ = "is_%s(%s)" % (state, name)
    return _tag_atom(guard, ("slot", state, name))


def is_closed(name: str) -> Guard:
    """``isClosed(s)``: true when named slot exists and is closed."""
    return _slot_state_guard(name, "closed")


def is_opening(name: str) -> Guard:
    """``isOpening(s)``."""
    return _slot_state_guard(name, "opening")


def is_opened(name: str) -> Guard:
    """``isOpened(s)``."""
    return _slot_state_guard(name, "opened")


def is_flowing(name: str) -> Guard:
    """``isFlowing(s)``."""
    return _slot_state_guard(name, "flowing")


def slot_failed(name: str) -> Guard:
    """``slotFailed(s)``: the slot exhausted its retransmission budget
    (robust mode) and fell back to ``closed`` without media.  False for
    slots that closed normally, and while the name is unbound.  Programs
    use it to branch to a degraded state instead of waiting forever on
    media that will never flow."""
    def guard(program: "Program") -> bool:
        slot = program.box.slot_names.get(name)
        return slot is not None and getattr(slot, "failed", False)
    guard.__name__ = "slot_failed(%s)" % (name,)
    return _tag_atom(guard, ("slot", "failed", name))


def all_of(*guards: Guard) -> Guard:
    """Conjunction of guards."""
    def guard(program: "Program") -> bool:
        return all(g(program) for g in guards)
    return _tag_combinator(guard, "all", guards)


def any_of(*guards: Guard) -> Guard:
    """Disjunction of guards."""
    def guard(program: "Program") -> bool:
        return any(g(program) for g in guards)
    return _tag_combinator(guard, "any", guards)


def negate(inner: Guard) -> Guard:
    """Negation of a guard."""
    def guard(program: "Program") -> bool:
        return not inner(program)
    return _tag_combinator(guard, "not", (inner,))


def always(program: "Program") -> bool:
    """A guard that is always true (for immediate transitions)."""
    return True


_tag_atom(always, ("always",))
