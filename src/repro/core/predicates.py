"""Slot predicates and guard combinators for box programs (Sec. IV-A).

"For each slot, there are predicates isClosed, isOpening, isOpened, and
isFlowing corresponding to the four states in Figure 5.  These
predicates can be used as guards on transitions in box programs."

Guards here are callables taking the running
:class:`~repro.core.program.Program` and returning a boolean.  A guard
over a named slot is false while the name is unbound (its channel does
not exist yet or has been destroyed), which lets programs write guards
that only become meaningful once a channel is up.
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .program import Program

__all__ = [
    "Guard",
    "is_closed", "is_opening", "is_opened", "is_flowing",
    "all_of", "any_of", "negate", "always",
]

Guard = Callable[["Program"], bool]


def _slot_state_guard(name: str, state: str) -> Guard:
    def guard(program: "Program") -> bool:
        slot = program.box.slot_names.get(name)
        return slot is not None and slot.state == state
    guard.__name__ = "is_%s(%s)" % (state, name)
    return guard


def is_closed(name: str) -> Guard:
    """``isClosed(s)``: true when named slot exists and is closed."""
    return _slot_state_guard(name, "closed")


def is_opening(name: str) -> Guard:
    """``isOpening(s)``."""
    return _slot_state_guard(name, "opening")


def is_opened(name: str) -> Guard:
    """``isOpened(s)``."""
    return _slot_state_guard(name, "opened")


def is_flowing(name: str) -> Guard:
    """``isFlowing(s)``."""
    return _slot_state_guard(name, "flowing")


def all_of(*guards: Guard) -> Guard:
    """Conjunction of guards."""
    def guard(program: "Program") -> bool:
        return all(g(program) for g in guards)
    return guard


def any_of(*guards: Guard) -> Guard:
    """Disjunction of guards."""
    def guard(program: "Program") -> bool:
        return any(g(program) for g in guards)
    return guard


def negate(inner: Guard) -> Guard:
    """Negation of a guard."""
    def guard(program: "Program") -> bool:
        return not inner(program)
    return guard


def always(program: "Program") -> bool:
    """A guard that is always true (for immediate transitions)."""
    return True
