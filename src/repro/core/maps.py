"""The Maps object: dynamic slot → goal association (Sec. VII).

"There is also a Maps object that maintains the dynamic association
between slots and goal objects.  When a box receives a signal, the box
uses these associations to find the goal object to which it should show
the signal via goalReceive."
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from ..protocol.errors import ConfigurationError
from ..protocol.slot import Slot

if TYPE_CHECKING:  # pragma: no cover
    from .goals import Goal

__all__ = ["Maps"]


class Maps:
    """Associates each controlled slot with exactly one goal object."""

    def __init__(self) -> None:
        self._by_slot: Dict[Slot, "Goal"] = {}
        #: Reverse index: goal -> the slots it controls, in assignment
        #: order.  Keeps goals()/assign/release O(slots of one goal)
        #: instead of rescanning every installed slot per settle.
        self._by_goal: Dict["Goal", List[Slot]] = {}

    def goal_for(self, slot: Slot) -> Optional["Goal"]:
        """The goal currently controlling ``slot``, or ``None``."""
        return self._by_slot.get(slot)

    def goals(self) -> List["Goal"]:
        """All distinct goals currently installed."""
        return list(self._by_goal)

    def assign(self, goal: "Goal", slots: Iterable[Slot]) -> None:
        """Put ``slots`` under control of ``goal``.

        Any goal previously controlling one of the slots is detached
        first ("the goal object proceeds to control its slot or slots
        until its slots are moved elsewhere and this goal object becomes
        garbage", Sec. VII).  A goal object cannot be installed twice.
        """
        slots = list(slots)
        if goal in self._by_goal:
            raise ConfigurationError(
                "goal %r is already installed; goal objects are "
                "single-use" % (goal,))
        for slot in slots:
            old = self._by_slot.get(slot)
            if old is not None:
                self.release(old)
        for slot in slots:
            self._by_slot[slot] = goal
        self._by_goal[goal] = slots

    def release(self, goal: "Goal") -> None:
        """Remove ``goal`` and free all slots it controls."""
        for slot in self._by_goal.pop(goal, ()):
            if self._by_slot.get(slot) is goal:
                del self._by_slot[slot]
        goal.detach()

    def release_slot(self, slot: Slot) -> None:
        """Free one slot; detaches its goal entirely (a flowlink cannot
        keep running with one slot)."""
        goal = self._by_slot.get(slot)
        if goal is not None:
            self.release(goal)

    def __len__(self) -> int:
        return len(self._by_slot)
