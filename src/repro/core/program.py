"""State-oriented box programs (Sec. IV).

"In each state of a box program, annotations or defaults give a static
description of the programmer's goal for each slot while the program is
in that state" (Sec. IV-A).  A :class:`Program` is a finite-state
machine whose states carry goal annotations and whose transitions are
triggered by slot predicates, meta-signal events, and timeouts — the
style of the Click-to-Dial program of Fig. 6.

Goal-object reuse follows the paper: "Because the annotation controlling
slot 2a is the same in both states twoCalls and ringback, the openLink
object controlling 2a is also the same" — an annotation that resolves to
the same spec over the same slots across a state change keeps its goal
object; anything else is detached and rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple)

from ..obs.events import ProgramStep
from ..protocol.channel import ChannelEnd
from ..protocol.codecs import Medium
from ..protocol.errors import ConfigurationError
from ..protocol.signals import MetaSignal
from ..protocol.slot import Slot
from .box import Box
from .flowlink import FlowLink
from .goals import CloseSlot, Goal, HoldSlot, OpenSlot
from .predicates import Guard, memo_safe_guard

__all__ = [
    "GoalSpec", "open_slot", "close_slot", "hold_slot", "flow_link",
    "Transition", "Timeout", "State", "Program", "END",
    "on_meta", "on_channel_down",
]

#: Sentinel target: the program terminates.
END = "__end__"


# ----------------------------------------------------------------------
# goal annotations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GoalSpec:
    """A goal annotation over named slots, e.g. ``flowLink(c, a)``."""

    kind: str
    names: Tuple[str, ...]
    medium: Optional[Medium] = None

    def instantiate(self) -> Goal:
        if self.kind == "open":
            assert self.medium is not None
            return OpenSlot(self.medium)
        if self.kind == "close":
            return CloseSlot()
        if self.kind == "hold":
            return HoldSlot()
        if self.kind == "link":
            return FlowLink()
        raise ConfigurationError("unknown goal kind %r" % self.kind)

    def __str__(self) -> str:
        if self.kind == "open":
            return "openSlot(%s,%s)" % (self.names[0], self.medium)
        if self.kind == "link":
            return "flowLink(%s,%s)" % self.names
        return "%sSlot(%s)" % (self.kind, self.names[0])


def open_slot(name: str, medium: Medium) -> GoalSpec:
    """Annotation ``openSlot(name, medium)``."""
    return GoalSpec("open", (name,), medium)


def close_slot(name: str) -> GoalSpec:
    """Annotation ``closeSlot(name)``."""
    return GoalSpec("close", (name,))


def hold_slot(name: str) -> GoalSpec:
    """Annotation ``holdSlot(name)``."""
    return GoalSpec("hold", (name,))


def flow_link(name1: str, name2: str) -> GoalSpec:
    """Annotation ``flowLink(name1, name2)``."""
    return GoalSpec("link", (name1, name2))


# ----------------------------------------------------------------------
# transitions and states
# ----------------------------------------------------------------------
Action = Callable[["Program"], None]


@dataclass
class Transition:
    """A guarded transition.  When ``guard`` holds, run ``action`` and
    move to ``target`` (or terminate when target is ``END``)."""

    guard: Guard
    target: str
    action: Optional[Action] = None


@dataclass
class Timeout:
    """A state timeout: after ``delay`` seconds in the state, run
    ``action`` and move to ``target``."""

    delay: float
    target: str
    action: Optional[Action] = None


@dataclass
class State:
    """One program state: goal annotations plus outgoing transitions."""

    goals: Sequence[GoalSpec] = ()
    transitions: Sequence[Transition] = ()
    timeout: Optional[Timeout] = None
    on_enter: Optional[Action] = None


# ----------------------------------------------------------------------
# event guards
# ----------------------------------------------------------------------
def on_meta(kind: str, name: Optional[str] = None,
            where: Optional[Callable[["Program", ChannelEnd, MetaSignal],
                                     bool]] = None) -> Guard:
    """Guard true when a matching meta-signal event is pending.

    Matching consumes the event and stashes it as ``program.trigger``;
    because :meth:`Program.poll` takes the first true guard, only the
    chosen transition consumes.  ``kind`` matches ``MetaSignal.kind``
    (``"available"``, ``"unavailable"``, ``"app"``...); for ``app``
    events ``name`` additionally matches the application event name;
    ``where(program, end, signal)`` can further restrict matching, e.g.
    to events from one particular channel.
    """
    def guard(program: "Program") -> bool:
        for i, (end, signal) in enumerate(program.events):
            if signal.kind != kind:
                continue
            if name is not None and getattr(signal, "name", None) != name:
                continue
            if where is not None and not where(program, end, signal):
                continue
            program.trigger = (end, signal)
            del program.events[i]
            return True
        return False
    guard.__name__ = "on_meta(%s)" % kind
    # Static description for the analyzer; a ``where`` restriction is
    # recorded by qualname so two differently-restricted guards on the
    # same event never compare equal (no false race diagnostics).
    restriction = getattr(where, "__qualname__", repr(where)) \
        if where is not None else None
    setattr(guard, "static_atom", ("meta", kind, name, restriction))
    return guard


def on_channel_down(slot_prefix: Optional[str] = None) -> Guard:
    """Guard true when a channel-down event is pending (the far side
    destroyed a channel).  Consumes the event like :func:`on_meta`."""
    def guard(program: "Program") -> bool:
        for i, event in enumerate(program.downs):
            program.trigger = (event, None)
            del program.downs[i]
            return True
        return False
    guard.__name__ = "on_channel_down()"
    setattr(guard, "static_atom", ("down", slot_prefix))
    return guard


# ----------------------------------------------------------------------
# the program engine
# ----------------------------------------------------------------------
class Program:
    """Runs a state-annotated FSM inside a box.

    The program re-evaluates its current state's transition guards after
    every stimulus the box processes, in declaration order, taking the
    first one whose guard holds.
    """

    def __init__(self, box: Box, states: Dict[str, State], initial: str,
                 data: Optional[Dict[str, Any]] = None,
                 slots: Optional[Sequence[str]] = None):
        if initial not in states:
            raise ConfigurationError("initial state %r undefined" % initial)
        for sname, state in states.items():
            for t in state.transitions:
                if t.target != END and t.target not in states:
                    raise ConfigurationError(
                        "state %r has transition to undefined %r"
                        % (sname, t.target))
            if state.timeout and state.timeout.target != END \
                    and state.timeout.target not in states:
                raise ConfigurationError(
                    "state %r has timeout to undefined %r"
                    % (sname, state.timeout.target))
        #: Slot names this program may annotate: the ``slots`` argument
        #: (slots the program will create and name later) plus whatever
        #: the box has already declared.  Empty means "unknown" — a
        #: bare program on a bare box skips the check.
        self.declared_slots = frozenset(slots or ()) \
            | frozenset(box.declared_slots)
        if self.declared_slots:
            # Fail fast: a goal annotation naming a slot the box never
            # declares would otherwise only blow up on state entry,
            # possibly deep into a call (the runtime counterpart of the
            # RC401 static diagnostic).
            for sname, state in states.items():
                for spec in state.goals:
                    for n in spec.names:
                        if n not in self.declared_slots:
                            raise ConfigurationError(
                                "state %r annotates undeclared slot %r "
                                "(declared: %s)"
                                % (sname, n,
                                   ", ".join(sorted(self.declared_slots))))
        self.box = box
        self.states = states
        self.state_name: Optional[str] = None
        self.finished = False
        #: Application scratchpad shared with actions.
        self.data: Dict[str, Any] = dict(data or {})
        #: Pending meta-signal events (consumed by :func:`on_meta`).
        self.events: List[Tuple[ChannelEnd, MetaSignal]] = []
        #: Pending channel-down events.
        self.downs: List[ChannelEnd] = []
        #: The event that fired the most recent event guard.
        self.trigger: Optional[Tuple[Any, Any]] = None
        self._installed: Dict[Tuple[GoalSpec, Tuple[Slot, ...]], Goal] = {}
        self._timeout_event = None
        self._polling = False
        #: Goal-poll memoization: when every transition guard in every
        #: state is a pure function of slot state (see
        #: :func:`~repro.core.predicates.memo_safe_guard`), a full
        #: no-progress guard pass stays valid until the box's
        #: ``goal_gen`` moves, and :meth:`poll` records that fact so
        #: ``Box._poll`` can skip the re-evaluation entirely.
        self._memo_safe = all(
            memo_safe_guard(t.guard)
            for state in states.values() for t in state.transitions)
        box.program = self
        box.after_stimulus = self.poll
        # A prior program may have left a recorded generation behind;
        # this program's guards have never been evaluated.
        box._poll_gen = -1
        self._initial = initial

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Enter the initial state and start reacting."""
        self._emit_step("", self._initial)
        self._enter(self._initial)
        self.poll()

    def _emit_step(self, source: str, target: str) -> None:
        tr = self.box.loop.trace
        if tr is not None:
            tr.emit(ProgramStep(ts=self.box.loop.now, box=self.box.name,
                                source=source, target=target))

    def stop(self) -> None:
        """Terminate: release every goal, stop reacting."""
        self.finished = True
        self._cancel_timeout()
        for goal in list(self._installed.values()):
            self.box.maps.release(goal)
        self._installed.clear()
        self.box.after_stimulus = None
        # Whatever replaces this program's poll (another program, a
        # hand-written observer) must not inherit its memo.
        self.box._poll_gen = -1
        if self.box.program is self:
            self.box.program = None

    # -- box-side event feeds -------------------------------------------------
    def note_meta(self, end: ChannelEnd, signal: MetaSignal) -> None:
        self.events.append((end, signal))

    def note_channel_down(self, end: ChannelEnd) -> None:
        self.downs.append(end)

    # -- engine ---------------------------------------------------------------
    @property
    def state(self) -> State:
        assert self.state_name is not None
        return self.states[self.state_name]

    def poll(self) -> None:
        """Take enabled transitions until none is enabled."""
        if self._polling or self.finished or self.state_name is None:
            return
        self._polling = True
        try:
            progressed = True
            while progressed and not self.finished:
                progressed = False
                for transition in self.state.transitions:
                    if transition.guard(self):
                        self._fire(transition.action, transition.target)
                        progressed = True
                        break
        finally:
            self._polling = False
            # The loop exits on a full all-false guard pass; for a
            # memo-safe program that verdict holds until goal_gen
            # moves, so record it and let Box._poll skip the next
            # evaluations.  Nothing runs between that last pass and
            # this record, so the pairing is exact.
            if self._memo_safe and not self.finished:
                box = self.box
                if box._goal_memo_ok:
                    box._poll_gen = box.goal_gen

    def _fire(self, action: Optional[Action], target: str) -> None:
        self._emit_step(self.state_name or "", target)
        if action is not None:
            action(self)
        if target == END:
            self.stop()
        else:
            self._enter(target)

    def _enter(self, name: str) -> None:
        self._cancel_timeout()
        self.state_name = name
        state = self.states[name]
        self._reconcile_goals(state.goals)
        if state.on_enter is not None:
            state.on_enter(self)
        if state.timeout is not None:
            self._timeout_event = self.box.node.set_timer(
                state.timeout.delay, self._on_timeout, name)

    def _on_timeout(self, origin_state: str) -> None:
        if self.finished or self.state_name != origin_state:
            return
        timeout = self.state.timeout
        assert timeout is not None
        self._fire(timeout.action, timeout.target)
        self.poll()

    def _cancel_timeout(self) -> None:
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None

    # -- goal reconciliation ---------------------------------------------------
    def _reconcile_goals(self, specs: Sequence[GoalSpec]) -> None:
        resolved: List[Tuple[GoalSpec, Tuple[Slot, ...]]] = []
        used: Dict[Slot, GoalSpec] = {}
        for spec in specs:
            slots = tuple(self.box.slot(n) for n in spec.names)
            for slot in slots:
                if slot in used:
                    raise ConfigurationError(
                        "slot %s annotated by both %s and %s"
                        % (slot.name, used[slot], spec))
                used[slot] = spec
            resolved.append((spec, slots))
        new_keys = set(resolved)
        # Detach goals whose annotation disappeared or re-resolved.
        for key, goal in list(self._installed.items()):
            if key not in new_keys:
                self.box.maps.release(goal)
                del self._installed[key]
        # Instantiate goals for new annotations; identical annotations
        # keep their object ("control of the slot is implemented by the
        # same object", Sec. IV-B).
        for key in resolved:
            if key not in self._installed:
                spec, slots = key
                goal = spec.instantiate()
                self.box.set_goal(goal, *slots)
                self._installed[key] = goal

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Program %s state=%s%s>" % (
            self.box.name, self.state_name,
            " finished" if self.finished else "")
