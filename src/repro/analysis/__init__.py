"""Performance analysis: closed forms and simulation drivers
(Secs. VIII-C and IX-B)."""

from .experiments import (Measurement, measure_fig13, measure_path_sweep,
                          measure_sip_bundled_changes, measure_sip_common,
                          measure_sip_glare, measure_unbundled_changes,
                          run_until)
from .formulas import (EXPECTED_D, PAPER_FIG13_MS, PAPER_SIP_COMMON_MS,
                       PAPER_SIP_GLARE_MS, compositional_path_latency,
                       fig13_latency, sip_common_latency,
                       sip_glare_latency)

__all__ = [
    "Measurement", "measure_fig13", "measure_path_sweep",
    "measure_sip_bundled_changes", "measure_sip_common",
    "measure_sip_glare", "measure_unbundled_changes", "run_until",
    "EXPECTED_D", "PAPER_FIG13_MS", "PAPER_SIP_COMMON_MS",
    "PAPER_SIP_GLARE_MS", "compositional_path_latency", "fig13_latency",
    "sip_common_latency", "sip_glare_latency",
]
