"""Closed-form latency models (Secs. VIII-C and IX-B).

All times in seconds; the paper's example figures use ``c = 20 ms``
("a typical value") and ``n = 34 ms`` (measured "on a typical carrier
network with multiple geographic sites").
"""

from __future__ import annotations

from ..network.latency import PAPER_C, PAPER_N

__all__ = [
    "compositional_path_latency", "fig13_latency",
    "sip_glare_latency", "sip_common_latency",
    "EXPECTED_D", "PAPER_FIG13_MS", "PAPER_SIP_GLARE_MS",
    "PAPER_SIP_COMMON_MS",
]

#: Expected value of the SIP glare backoff ``d`` (Sec. IX-B: "a random
#: variable with expected value 3 seconds").
EXPECTED_D = 3.0

#: The paper's headline numbers (milliseconds).
PAPER_FIG13_MS = 128.0
PAPER_SIP_GLARE_MS = 3560.0
PAPER_SIP_COMMON_MS = 378.0


def compositional_path_latency(p: int, n: float = PAPER_N,
                               c: float = PAPER_C) -> float:
    """Sec. VIII-C: "the average signaling delay ... will be
    ``p·n + (p+1)·c`` where p is the number of hops between the last
    flowlink and its farther endpoint."""
    if p < 1:
        raise ValueError("a path has at least one hop")
    return p * n + (p + 1) * c


def fig13_latency(n: float = PAPER_N, c: float = PAPER_C) -> float:
    """Sec. VIII-C: "In Figure 13 both endpoints can transmit after an
    average delay of 2n + 3c" — 128 ms with the paper's constants."""
    return 2 * n + 3 * c


def sip_glare_latency(n: float = PAPER_N, c: float = PAPER_C,
                      d: float = EXPECTED_D) -> float:
    """Sec. IX-B: "the latency of this solution is 10n + 11c + d" —
    3560 ms with the paper's constants."""
    return 10 * n + 11 * c + d


def sip_common_latency(n: float = PAPER_N, c: float = PAPER_C) -> float:
    """Sec. IX-B, common case (no glare): the comparison "is 378 ms
    versus 128 ms", i.e. the SIP path costs the extra offer
    solicitation (2n+2c) and the serialized description exchange
    (3n+2c) on top of ours: 7n + 7c."""
    return 7 * n + 7 * c
