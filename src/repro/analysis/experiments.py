"""Simulation drivers measuring the paper's latency quantities.

Each driver builds a deployment with network latency ``n`` and
per-stimulus processing cost ``c``, triggers the scenario *as a
stimulus* (so the first ``c`` is paid, as the paper's accounting does),
and runs the event loop until the measured condition first holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..core.box import Box
from ..media.device import UserDevice
from ..network.eventloop import EventLoop
from ..network.latency import FixedLatency, PAPER_C, PAPER_N
from ..network.network import Network
from ..protocol.codecs import AUDIO
from ..sip.agent import SipEndpointUA
from ..sip.b2bua import SipB2BUA
from ..sip.dialog import SipDialog
from .formulas import (compositional_path_latency, fig13_latency,
                       sip_common_latency, sip_glare_latency)

__all__ = [
    "Measurement", "run_until",
    "measure_fig13", "measure_path_sweep",
    "measure_sip_glare", "measure_sip_common",
    "measure_unbundled_changes", "measure_sip_bundled_changes",
]


@dataclass
class Measurement:
    """One measured latency next to its closed-form prediction."""

    name: str
    measured: float
    predicted: float

    @property
    def measured_ms(self) -> float:
        return self.measured * 1000.0

    @property
    def predicted_ms(self) -> float:
        return self.predicted * 1000.0

    @property
    def relative_error(self) -> float:
        return abs(self.measured - self.predicted) / self.predicted

    def __str__(self) -> str:
        return "%-28s measured %8.1f ms   formula %8.1f ms" % (
            self.name, self.measured_ms, self.predicted_ms)


def run_until(loop: EventLoop, predicate: Callable[[], bool],
              max_events: int = 1_000_000) -> float:
    """Step the loop until ``predicate`` first holds; returns the time.

    Raises ``RuntimeError`` if the loop drains or the budget is spent
    with the predicate still false.
    """
    for _ in range(max_events):
        if predicate():
            return loop.now
        if not loop.step():
            raise RuntimeError("event loop drained before the condition "
                               "held (t=%g)" % loop.now)
    raise RuntimeError("condition did not hold within %d events"
                       % max_events)


# ----------------------------------------------------------------------
# helpers over the compositional stack
# ----------------------------------------------------------------------
def _can_transmit_toward(device: UserDevice, origin: str) -> bool:
    """The paper's transmit condition: the endpoint "has received a
    descriptor and sent a corresponding selector" — a real selector
    answering a descriptor minted by ``origin``."""
    for port in device.ports():
        slot = port.slot
        if (slot.selector_sent is not None
                and slot.selector_sent.codec.is_real
                and port.answered is not None
                and port.answered.id.origin == origin):
            return True
    return False


def measure_fig13(n: float = PAPER_N, c: float = PAPER_C,
                  seed: int = 0) -> Measurement:
    """E8: the Fig. 13 scenario — PBX and PC relink concurrently; both
    endpoints can transmit after 2n + 3c."""
    net = Network(seed=seed, latency=FixedLatency(n), cost=c)
    a = net.device("A")
    b = net.device("B", auto_accept=True)
    c_dev = net.device("C")
    v = net.device("V", auto_accept=True)
    pbx = net.box("pbx")
    pc = net.box("pc")
    ch_a = net.channel(a, pbx)
    ch_b = net.channel(pbx, b)
    ch_mid = net.channel(pc, pbx)
    ch_c = net.channel(c_dev, pc)
    ch_v = net.channel(pc, v)
    sa = ch_a.end_for(pbx).slot()
    sb = ch_b.end_for(pbx).slot()
    mid_pbx = ch_mid.end_for(pbx).slot()
    mid_pc = ch_mid.end_for(pc).slot()
    sc = ch_c.end_for(pc).slot()
    sv = ch_v.end_for(pc).slot()

    # Snapshot 3: A talks to B; C talks to V; the tunnel between the
    # two servers is open but muted (held at both ends) — exactly the
    # state Fig. 13 starts from, where the new flowlinks' cached
    # descriptors from the middle are noMedia.
    pbx.flow_link(sa, sb)
    pbx.hold_slot(mid_pbx)
    pc.flow_link(sc, sv)
    pc.open_slot(mid_pc, AUDIO)
    a.open(ch_a.end_for(a).slot(), AUDIO)
    c_dev.open(ch_c.end_for(c_dev).slot(), AUDIO)
    net.settle()
    pc.hold_slot(mid_pc)
    net.settle()
    assert mid_pc.is_flowing and mid_pbx.is_flowing
    assert net.plane.two_way(a, b) and net.plane.two_way(c_dev, v)

    # Concurrent relinks, each as a stimulus on its server.
    def pbx_relink():
        pbx.hold_slot(sb)
        pbx.flow_link(sa, mid_pbx)

    def pc_relink():
        pc.hold_slot(sv)
        pc.flow_link(sc, mid_pc)

    start = net.loop.now
    pbx.node.enqueue(pbx_relink)
    pc.node.enqueue(pc_relink)
    done = lambda: (_can_transmit_toward(a, "C")
                    and _can_transmit_toward(c_dev, "A"))
    finish = run_until(net.loop, done)
    return Measurement("fig13 (ours, concurrent)", finish - start,
                       fig13_latency(n, c))


def measure_path_sweep(hops: List[int], n: float = PAPER_N,
                       c: float = PAPER_C,
                       seed: int = 0) -> List[Measurement]:
    """E9: latency versus path length — the last flowlink is created at
    the box adjacent to the left endpoint, p hops from the right one."""
    results = []
    for p in hops:
        results.append(_measure_chain(p, n, c, seed))
    return results


def _measure_chain(p: int, n: float, c: float, seed: int) -> Measurement:
    net = Network(seed=seed, latency=FixedLatency(n), cost=c)
    left = net.device("L")
    right = net.device("R", auto_accept=True)
    boxes = [net.box("b%d" % i) for i in range(p)]
    # chain: L -- b0 -- b1 -- ... -- b(p-1) -- R
    ch_left = net.channel(left, boxes[0])
    mids = [net.channel(boxes[i], boxes[i + 1]) for i in range(p - 1)]
    ch_right = net.channel(boxes[-1], right)
    # All boxes except b0 flowlink straight through; b0 holds both
    # sides, so the path exists up to the missing last flowlink.
    for i, box in enumerate(boxes):
        left_slot = (ch_left if i == 0 else mids[i - 1]).end_for(box).slot()
        right_slot = (ch_right if i == p - 1 else mids[i]).end_for(
            box).slot()
        if i == 0:
            box.hold_slot(left_slot)
            box.hold_slot(right_slot)
        else:
            box.flow_link(left_slot, right_slot)
    # Both ends come up: L flows into b0's hold; R is opened through
    # the chain by b1..b(p-1) when b0's right side opens... so instead
    # the right endpoint opens toward the chain.
    left.open(ch_left.end_for(left).slot(), AUDIO)
    right.open(ch_right.end_for(right).slot(), AUDIO)
    net.settle()

    b0 = boxes[0]
    ls = ch_left.end_for(b0).slot()
    rs = (ch_right if p == 1 else mids[0]).end_for(b0).slot()

    def relink():
        b0.flow_link(ls, rs)

    start = net.loop.now
    b0.node.enqueue(relink)
    done = lambda: (_can_transmit_toward(left, "R")
                    and _can_transmit_toward(right, "L"))
    finish = run_until(net.loop, done)
    return Measurement("path p=%d" % p, finish - start,
                       compositional_path_latency(p, n, c))


# ----------------------------------------------------------------------
# SIP drivers
# ----------------------------------------------------------------------
def _sip_rig(n: float, c: float, seed: int):
    from ..network.address import Address
    loop = EventLoop(seed=seed)
    latency = FixedLatency(n)
    a = SipEndpointUA(loop, "A", Address("10.0.0.1", 5004), cost=c)
    c_ep = SipEndpointUA(loop, "C", Address("10.0.0.3", 5004), cost=c)
    pbx = SipB2BUA(loop, "pbx", cost=c)
    pc = SipB2BUA(loop, "pc", cost=c)
    d_a = SipDialog(loop, pbx, a, latency=latency)
    mid = SipDialog(loop, pc, pbx, latency=latency)   # PC owns: long window
    d_c = SipDialog(loop, pc, c_ep, latency=latency)
    return loop, a, c_ep, pbx, pc, d_a, mid, d_c


def measure_sip_glare(n: float = PAPER_N, c: float = PAPER_C,
                      seed: int = 0) -> Measurement:
    """E10: the Fig. 14 scenario — both SIP servers relink concurrently
    over the shared dialog; expect ``10n + 11c + d``."""
    loop, a, c_ep, pbx, pc, d_a, mid, d_c = _sip_rig(n, c, seed)
    start = loop.now
    ops = []
    pc.node.enqueue(lambda: ops.append(
        pc.relink(d_c.end_for(pc), mid.end_for(pc))))
    pbx.node.enqueue(lambda: ops.append(
        pbx.relink(d_a.end_for(pbx), mid.end_for(pbx))))
    done = lambda: (a.target == c_ep.address and c_ep.target == a.address
                    and len(ops) == 2 and all(op.done for op in ops))
    finish = run_until(loop, done)
    return Measurement("fig14 (SIP, glare)", finish - start,
                       sip_glare_latency(n, c))


def measure_unbundled_changes(n: float = PAPER_N, c: float = PAPER_C,
                              seed: int = 0) -> Measurement:
    """Sec. IX-B media bundling, our side: audio and video changes ride
    separate tunnels, so two concurrent changes (one per end) cannot
    contend.  Expected: both complete within one hop, n + 2c."""
    from ..protocol.codecs import VIDEO
    net = Network(seed=seed, latency=FixedLatency(n), cost=c)
    a = net.device("A", auto_accept=True)
    b = net.device("B", auto_accept=True)
    ch = net.channel(a, b, tunnels=("audio", "video"))
    a.open(ch.end_for(a).slot("audio"), AUDIO)
    b.open(ch.end_for(b).slot("video"), VIDEO)
    net.settle()
    a_audio = ch.end_for(a).slot("audio")
    b_video = ch.end_for(b).slot("video")
    start = net.loop.now
    # Concurrent changes in both directions on different tunnels.
    a.node.enqueue(a.modify, a_audio, True, None)
    b.node.enqueue(b.modify, b_video, True, None)
    done = lambda: (ch.end_for(b).slot("audio").remote_descriptor
                    .is_no_media
                    and ch.end_for(a).slot("video").remote_descriptor
                    .is_no_media)
    finish = run_until(net.loop, done)
    return Measurement("ours: concurrent audio+video change",
                       finish - start, n + 2 * c)


def measure_sip_bundled_changes(n: float = PAPER_N, c: float = PAPER_C,
                                seed: int = 0) -> Measurement:
    """Sec. IX-B media bundling, SIP side: "a transaction to control a
    video channel contends with a transaction to control an audio
    channel on the same signaling path."  Two concurrent re-INVITEs on
    one dialog glare; expected cost ≈ backoff-dominated (like
    10n + 11c + d in shape)."""
    from ..network.address import Address
    loop = EventLoop(seed=seed)
    latency = FixedLatency(n)
    a = SipEndpointUA(loop, "A", Address("10.0.0.1", 5004), cost=c)
    b = SipEndpointUA(loop, "B", Address("10.0.0.2", 5004), cost=c)
    dialog = SipDialog(loop, a, b, latency=latency)
    a.call(dialog.end_for(a))
    loop.run()
    start = loop.now
    # A changes the audio stream while B changes the video stream —
    # bundled into the same dialog, the re-INVITEs collide.
    started = []

    def change(ua):
        ua.modify_session(dialog.end_for(ua))
        started.append(ua.name)

    a.node.enqueue(change, a)
    b.node.enqueue(change, b)
    done = lambda: (len(started) == 2
                    and a.change_completed() and b.change_completed()
                    and dialog.end_for(a).client_txn is None
                    and dialog.end_for(b).client_txn is None)
    finish = run_until(loop, done)
    return Measurement("SIP: concurrent bundled changes",
                       finish - start, sip_glare_latency(n, c))


def measure_sip_common(n: float = PAPER_N, c: float = PAPER_C,
                       seed: int = 0) -> Measurement:
    """E11: the common case — a single SIP server relinks, no glare;
    expect about ``7n + 7c``."""
    loop, a, c_ep, pbx, pc, d_a, mid, d_c = _sip_rig(n, c, seed)
    pbx.set_route(mid.end_for(pbx), d_a.end_for(pbx))
    start = loop.now
    pc.node.enqueue(lambda: pc.relink(d_c.end_for(pc), mid.end_for(pc)))
    done = lambda: (a.target == c_ep.address
                    and c_ep.target == a.address)
    finish = run_until(loop, done)
    return Measurement("SIP common case", finish - start,
                       sip_common_latency(n, c))
