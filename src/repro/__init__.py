"""repro — a full reproduction of *Compositional Control of IP Media*
(Pamela Zave & Eric Cheung, CoNEXT 2006).

The package provides, in Python:

* the architecture-independent descriptive model (boxes, signaling
  channels, tunnels, slots, flowlinks, signaling paths);
* the four media-control programming primitives (``openSlot``,
  ``closeSlot``, ``holdSlot``, ``flowLink``) and a state-oriented
  box-program framework;
* the idempotent/unilateral signaling protocol of Sec. VI;
* a simulated media plane making end-to-end media flow observable;
* the formal path semantics of Sec. V with runtime monitoring;
* a from-scratch explicit-state model checker reproducing the Sec. VIII
  verification, and a miniature SIP substrate reproducing the Sec. IX-B
  comparison.

Quickstart::

    from repro import Network, AUDIO

    net = Network()
    alice = net.device("alice")
    bob = net.device("bob", auto_accept=True)
    ch = net.channel(alice, bob)
    alice.open(ch.initiator_end.slot(), AUDIO)
    net.settle()
    assert net.plane.two_way(alice, bob)
"""

from .core import (Box, CloseSlot, FlowLink, Goal, HoldSlot, Maps, OpenSlot,
                   Program, State, Timeout, Transition, END,
                   close_slot, flow_link, hold_slot, open_slot,
                   on_channel_down, on_meta,
                   is_closed, is_flowing, is_opened, is_opening,
                   slot_failed)
from .media import (AnnouncementPlayer, ConferenceBridge, InteractiveVoice,
                    MediaEndpoint, MediaPlane, MovieServer, Port,
                    ToneGenerator, UserDevice)
from .network import (Address, EventLoop, FaultPlan, FaultyLink,
                      FixedLatency, Network, QuiescenceError, Router,
                      UniformLatency, PAPER_C, PAPER_N)
from .protocol import (AUDIO, NO_MEDIA, TEXT, VIDEO, ChannelEnd, Codec,
                       ConfigurationError, Descriptor, DescriptorFactory,
                       MediaControlError, PreconditionError, ProtocolError,
                       RetransmitPolicy, Selector, SignalingAgent,
                       SignalingChannel, Slot, G711, G726, G729)
from .semantics import (PathMonitor, SignalingPath, SpecViolation,
                        all_paths, both_closed, both_flowing, trace_path)

__version__ = "1.0.0"

__all__ = [
    # core
    "Box", "CloseSlot", "FlowLink", "Goal", "HoldSlot", "Maps", "OpenSlot",
    "Program", "State", "Timeout", "Transition", "END",
    "close_slot", "flow_link", "hold_slot", "open_slot",
    "on_channel_down", "on_meta",
    "is_closed", "is_flowing", "is_opened", "is_opening", "slot_failed",
    # media
    "AnnouncementPlayer", "ConferenceBridge", "InteractiveVoice",
    "MediaEndpoint", "MediaPlane", "MovieServer", "Port", "ToneGenerator",
    "UserDevice",
    # network
    "Address", "EventLoop", "FaultPlan", "FaultyLink", "FixedLatency",
    "Network", "QuiescenceError", "Router", "UniformLatency",
    "PAPER_C", "PAPER_N",
    # protocol
    "AUDIO", "VIDEO", "TEXT", "NO_MEDIA", "ChannelEnd", "Codec",
    "ConfigurationError", "Descriptor", "DescriptorFactory",
    "MediaControlError", "PreconditionError", "ProtocolError",
    "RetransmitPolicy", "Selector",
    "SignalingAgent", "SignalingChannel", "Slot", "G711", "G726", "G729",
    # semantics
    "PathMonitor", "SignalingPath", "SpecViolation", "all_paths",
    "both_closed", "both_flowing", "trace_path",
]
