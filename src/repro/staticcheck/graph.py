"""Extraction layer: box programs → analyzable graphs.

Sec. IV makes box programs *declarative*: states carry static
:class:`~repro.core.program.GoalSpec` annotations and transitions fire
on slot predicates, meta-signal events, and timeouts.  The guards built
by :mod:`repro.core.predicates` and :mod:`repro.core.program` describe
themselves statically (see
:func:`repro.core.predicates.describe_guard`), so a whole
:class:`~repro.core.program.Program` — or a raw states dict that has
not been bound to a box yet — can be walked into a
:class:`ProgramGraph` without ever running it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Dict, FrozenSet, Iterable, List, Mapping,
                    Optional, Sequence, Set, Tuple)

from ..core.predicates import describe_guard
from ..core.program import END, GoalSpec, Program, State
from ..protocol.codecs import Medium

__all__ = [
    "GuardDesc", "TransitionInfo", "StateInfo", "ProgramGraph",
    "extract_states", "extract_program",
    "conjunctive_slot_atoms", "slot_atoms_in_guard",
    "slot_names_in_guard",
]

#: The hashable static description of a guard (see ``describe_guard``).
GuardDesc = Tuple[Any, ...]


@dataclass(frozen=True)
class TransitionInfo:
    """One outgoing transition, statically described."""

    guard: GuardDesc
    target: str                      # state name or repro.core END
    index: int                       # declaration order within the state

    @property
    def is_always(self) -> bool:
        return self.guard == ("atom", ("always",))


@dataclass(frozen=True)
class StateInfo:
    """One program state: annotations plus statically-read transitions."""

    name: str
    goals: Tuple[GoalSpec, ...]
    transitions: Tuple[TransitionInfo, ...]
    timeout_target: Optional[str] = None

    def targets(self) -> List[str]:
        """Every state (or END) this state can move to."""
        out = [t.target for t in self.transitions]
        if self.timeout_target is not None:
            out.append(self.timeout_target)
        return out

    def annotation_for(self, slot: str) -> Optional[GoalSpec]:
        """The goal annotation claiming ``slot`` in this state, if any
        (the first one, when a conflict duplicates the claim)."""
        for spec in self.goals:
            if slot in spec.names:
                return spec
        return None


@dataclass(frozen=True)
class ProgramGraph:
    """A statically-extracted box program, ready for the rule engine."""

    name: str
    states: Mapping[str, StateInfo]
    initial: str
    declared_slots: FrozenSet[str]
    #: Externally-declared media per slot (e.g. a profile declaring
    #: which tunnels carry video); merged with openSlot inference.
    declared_media: Mapping[str, Medium] = field(default_factory=dict)

    # -- reachability --------------------------------------------------
    def reachable(self) -> Set[str]:
        """States reachable from ``initial`` via transitions/timeouts."""
        seen: Set[str] = set()
        frontier = [self.initial]
        while frontier:
            name = frontier.pop()
            if name in seen or name == END:
                continue
            seen.add(name)
            info = self.states.get(name)
            if info is not None:
                frontier.extend(info.targets())
        return seen

    def can_terminate(self) -> bool:
        """Is END reachable from the initial state?"""
        return any(END in self.states[s].targets()
                   for s in self.reachable() if s in self.states)

    # -- media ---------------------------------------------------------
    def media_evidence(self) -> Dict[str, Dict[Medium, List[str]]]:
        """Everything known about each slot's medium: declared media
        (attributed to pseudo-state ``"<declared>"``) plus every
        ``openSlot(s, m)`` annotation, keyed slot → medium → states."""
        evidence: Dict[str, Dict[Medium, List[str]]] = {}
        for slot, medium in self.declared_media.items():
            evidence.setdefault(slot, {}).setdefault(medium, []) \
                .append("<declared>")
        for info in self.states.values():
            for spec in info.goals:
                if spec.kind == "open" and spec.medium is not None:
                    evidence.setdefault(spec.names[0], {}) \
                        .setdefault(spec.medium, []).append(info.name)
        return evidence

    def medium_of(self, slot: str) -> Optional[Medium]:
        """The slot's medium when the evidence is unanimous, else
        ``None`` (conflicting evidence is RC203's job to report)."""
        options = self.media_evidence().get(slot, {})
        if len(options) == 1:
            return next(iter(options))
        return None


# ----------------------------------------------------------------------
# guard-description helpers
# ----------------------------------------------------------------------
def conjunctive_slot_atoms(desc: GuardDesc
                           ) -> List[Tuple[str, str]]:
    """Slot atoms that must hold for the guard to fire.

    Returns ``(predicate, slot)`` pairs found at the top level of the
    description or nested under ``all`` combinators — i.e. atoms whose
    falsity alone keeps the transition disabled.  Atoms under ``any`` or
    ``not`` are skipped (a dead disjunct does not kill the guard), and
    opaque guards contribute nothing: the analysis stays sound.
    """
    if not desc:
        return []
    if desc[0] == "atom":
        atom = desc[1]
        if atom and atom[0] == "slot":
            return [(atom[1], atom[2])]
        return []
    if desc[0] == "all":
        found: List[Tuple[str, str]] = []
        for inner in desc[1:]:
            found.extend(conjunctive_slot_atoms(inner))
        return found
    return []


def slot_atoms_in_guard(desc: GuardDesc) -> Set[Tuple[str, str]]:
    """Every slot atom mentioned anywhere in the description, as
    ``(predicate, slot)`` pairs — combinators included, unlike
    :func:`conjunctive_slot_atoms`, which keeps only atoms that alone
    disable the guard."""
    if not desc:
        return set()
    if desc[0] == "atom":
        atom = desc[1]
        if atom and atom[0] == "slot":
            return {(atom[1], atom[2])}
        return set()
    if desc[0] in ("all", "any", "not"):
        atoms: Set[Tuple[str, str]] = set()
        for inner in desc[1:]:
            atoms |= slot_atoms_in_guard(inner)
        return atoms
    return set()


def slot_names_in_guard(desc: GuardDesc) -> Set[str]:
    """Every slot name mentioned anywhere in the description."""
    if not desc:
        return set()
    if desc[0] == "atom":
        atom = desc[1]
        if atom and atom[0] == "slot":
            return {atom[2]}
        return set()
    if desc[0] in ("all", "any", "not"):
        names: Set[str] = set()
        for inner in desc[1:]:
            names |= slot_names_in_guard(inner)
        return names
    return set()


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------
def extract_states(name: str, states: Mapping[str, State], initial: str,
                   slots: Sequence[str] = (),
                   media: Optional[Mapping[str, Medium]] = None
                   ) -> ProgramGraph:
    """Extract a graph from a raw states dict (no box required)."""
    infos: Dict[str, StateInfo] = {}
    for sname, state in states.items():
        transitions = tuple(
            TransitionInfo(guard=describe_guard(t.guard),
                           target=t.target, index=i)
            for i, t in enumerate(state.transitions))
        infos[sname] = StateInfo(
            name=sname, goals=tuple(state.goals), transitions=transitions,
            timeout_target=(state.timeout.target
                            if state.timeout is not None else None))
    return ProgramGraph(name=name, states=infos, initial=initial,
                        declared_slots=frozenset(slots),
                        declared_media=dict(media or {}))


def extract_program(name: str, program: Program,
                    media: Optional[Mapping[str, Medium]] = None
                    ) -> ProgramGraph:
    """Extract a graph from a constructed :class:`Program` (its declared
    slot set comes from the program itself)."""
    graph = extract_states(name, program.states, program._initial,
                           slots=sorted(program.declared_slots),
                           media=media)
    return graph
