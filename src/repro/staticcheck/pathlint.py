"""Static checking of verification path models (Sec. VIII-A).

The twelve path models pair a goal at each end of a signaling path with
a temporal specification from Sec. V.  Which specification a goal pair
can satisfy is *statically determined* by the goal semantics of
Sec. IV-A:

* a closeslot rejects every open, so a path with a close end can never
  recur to ``bothFlowing``;
* an openslot "takes every possible opportunity to push the slot toward
  the flowing state" and retries after every rejection, so a path with
  an open end can never stabilize in ``bothClosed``;
* with no end taking initiative (hold/hold), the path either stays
  closed or, once opened from outside, keeps flowing.

:func:`expected_property` derives the property class from those three
facts; :func:`check_model` reports RC601 when a model's assigned
specification disagrees — the static twin of the sweep discovering a
property violation at exploration time (see the cross-validation test).
"""

from __future__ import annotations

from typing import List

from ..verification.models import PathModel
from .diagnostics import Diagnostic

__all__ = ["expected_property", "check_model"]


def expected_property(left_goal: str, right_goal: str) -> str:
    """The property class a (left, right) goal pairing can satisfy."""
    goals = {left_goal, right_goal}
    unknown = goals - {"close", "hold", "open"}
    if unknown:
        raise ValueError("unknown goal kind(s): %s" % sorted(unknown))
    if "close" in goals:
        if "open" in goals:
            # The open end keeps re-opening against the rejecting close
            # end: never both flowing, but never quiescent either.
            return "stability-no-flow"
        # Close vs. close/hold: the close end wins and both ends rest.
        return "stability-closed"
    if "open" in goals:
        # Someone pushes to flowing and nothing ever closes.
        return "recurrence-flowing"
    # hold/hold: no initiative — closed forever, or flowing forever
    # once a third party (the paper's environment) opens the path.
    return "closed-or-flowing"


def check_model(model: PathModel) -> List[Diagnostic]:
    """RC601: the model's assigned temporal property does not match the
    class its goal pairing can satisfy."""
    left = model.system.processes[model.left_index]
    right = model.system.processes[model.right_index]
    expected = expected_property(left.goal, right.goal)
    if expected == model.property_kind:
        return []
    return [Diagnostic(
        "RC601", "model %s pairs goals (%s, %s), which can satisfy "
        "only %r, but is checked against %r — the sweep will report a "
        "property violation"
        % (model.key, left.goal, right.goal, expected,
           model.property_kind),
        program=model.key)]
