"""The self-hosted lint catalog: every bundled program, annotation
profile, declared codec list, and verification model as a lint target.

The import direction is strictly ``staticcheck -> apps``: application
modules expose their programs (or profile functions mirroring their
imperative annotation patterns) as plain data, and this catalog wires
them to the rule engine.  ``python -m repro lint`` runs the whole
catalog; CI keeps it clean.

Suppressions are part of the catalog, not the rules: a target that
deliberately violates a warning-level rule (the prepaid-card program
cycles forever by design, Sec. IV-B) carries a
:class:`~repro.staticcheck.diagnostics.Suppression` with its reason,
and the reports keep showing what was waived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from .diagnostics import Diagnostic, Suppression, split_suppressed
from .graph import extract_states
from .hygiene import CodecListDecl, SelectorCacheDecl, check_hygiene
from .pathlint import check_model
from .rules import check_graph

__all__ = ["LintTarget", "TargetReport", "app_targets", "model_targets",
           "all_targets", "select_targets"]


@dataclass(frozen=True)
class TargetReport:
    """The lint outcome for one target."""

    name: str
    active: Tuple[Diagnostic, ...]
    suppressed: Tuple[Diagnostic, ...]
    suppressions: Tuple[Suppression, ...]

    @property
    def clean(self) -> bool:
        return not self.active

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "clean": self.clean,
            "diagnostics": [d.to_json() for d in self.active],
            "suppressed": [d.to_json() for d in self.suppressed],
            "suppressions": [s.to_json() for s in self.suppressions],
        }


@dataclass(frozen=True)
class LintTarget:
    """One lintable unit: a name, a thunk producing diagnostics, and
    the target's deliberate waivers."""

    name: str
    run: Callable[[], List[Diagnostic]]
    suppressions: Tuple[Suppression, ...] = ()

    def report(self) -> TargetReport:
        active, suppressed = split_suppressed(self.run(),
                                              self.suppressions)
        return TargetReport(name=self.name, active=tuple(active),
                            suppressed=tuple(suppressed),
                            suppressions=self.suppressions)


# ----------------------------------------------------------------------
# application targets
# ----------------------------------------------------------------------
def _lint_click_to_dial() -> List[Diagnostic]:
    from ..apps.click_to_dial import ClickToDialBox
    from ..network.eventloop import EventLoop
    box = ClickToDialBox(EventLoop(), "ctd-lint")
    graph = extract_states("apps/click_to_dial", box.fig6_states(),
                           initial="oneCall", slots=box.PROGRAM_SLOTS)
    return check_graph(graph)


def _lint_prepaid() -> List[Diagnostic]:
    from ..apps.prepaid import PrepaidCardServer
    from ..network.eventloop import EventLoop
    server = PrepaidCardServer(EventLoop(), "pc-lint")
    graph = extract_states("apps/prepaid", server.program_states(),
                           initial="talking", slots=server.PROGRAM_SLOTS)
    return check_graph(graph)


def _lint_pbx() -> List[Diagnostic]:
    from ..apps.pbx import PROFILE_SLOTS, switching_profile
    graph = extract_states("apps/pbx", switching_profile(),
                           initial="allHeld", slots=PROFILE_SLOTS)
    return check_graph(graph)


def _lint_conference() -> List[Diagnostic]:
    from ..apps.conference import (PROFILE_MEDIA, PROFILE_SLOTS,
                                   leg_profile)
    graph = extract_states("apps/conference", leg_profile(),
                           initial="inviting", slots=PROFILE_SLOTS,
                           media=PROFILE_MEDIA)
    return check_graph(graph)


def _lint_collab_tv() -> List[Diagnostic]:
    from ..apps.collab_tv import (DEVICE_CODECS, PROFILE_MEDIA,
                                  PROFILE_SLOTS, sharing_profile)
    graph = extract_states("apps/collab_tv", sharing_profile(),
                           initial="shared", slots=PROFILE_SLOTS,
                           media=PROFILE_MEDIA)
    found = check_graph(graph)
    decls = [CodecListDecl("collab_tv.%s" % device,
                           "%s preference" % medium, codecs)
             for device, by_medium in sorted(DEVICE_CODECS.items())
             for medium, codecs in sorted(by_medium.items())]
    found.extend(check_hygiene("apps/collab_tv", codec_lists=decls))
    return found


def _lint_features_dnd() -> List[Diagnostic]:
    from ..apps.features import DND_SLOTS, dnd_profile
    graph = extract_states("apps/features-dnd", dnd_profile(),
                           initial="transparent", slots=DND_SLOTS)
    return check_graph(graph)


def _lint_features_voicemail() -> List[Diagnostic]:
    from ..apps.features import VOICEMAIL_SLOTS, voicemail_profile
    graph = extract_states("apps/features-voicemail",
                           voicemail_profile(), initial="ringing",
                           slots=VOICEMAIL_SLOTS)
    return check_graph(graph)


def _lint_codec_registry() -> List[Diagnostic]:
    """The protocol's own codec registry must satisfy the hygiene it
    demands of applications (Sec. VI-B: priority-ordered, best first)."""
    from ..protocol.codecs import AUDIO, VIDEO, codecs_for_medium
    decls = [CodecListDecl("protocol.codecs",
                           "%s registry" % medium,
                           codecs_for_medium(medium))
             for medium in (AUDIO, VIDEO)]
    return check_hygiene("protocol/codecs", codec_lists=decls)


def _lint_descriptor_discipline() -> List[Diagnostic]:
    """A server caching descriptors (Sec. VI-C) answering with the
    freshest version it holds — the discipline the Fig. 2 PBX breaks."""
    from ..protocol.codecs import NO_MEDIA
    from ..protocol.descriptor import DescriptorFactory, Selector
    factory = DescriptorFactory(origin="lint-server")
    stale = factory.no_media()
    fresh = factory.no_media()
    cache = SelectorCacheDecl(
        owner="protocol.descriptor cache",
        descriptors=(stale, fresh),
        selectors=(Selector(answers=fresh.id, address=None,
                            codec=NO_MEDIA),))
    return check_hygiene("protocol/descriptors",
                         selector_caches=(cache,))


def app_targets() -> List[LintTarget]:
    """The application and protocol targets of the catalog."""
    return [
        LintTarget("apps/click_to_dial", _lint_click_to_dial,
                   suppressions=(
            Suppression("RC701", "the Fig. 6 program predates robust "
                        "mode and runs on reliable links, where an "
                        "open cannot exhaust a retry budget; revisit "
                        "when click-to-dial is deployed under a fault "
                        "plan"),)),
        LintTarget("apps/prepaid", _lint_prepaid, suppressions=(
            Suppression("RC102", "the prepaid-card program cycles "
                        "forever by design: talk -> collect -> payment "
                        "-> talk (Sec. IV-B)"),)),
        LintTarget("apps/pbx", _lint_pbx),
        LintTarget("apps/conference", _lint_conference),
        LintTarget("apps/collab_tv", _lint_collab_tv),
        LintTarget("apps/features-dnd", _lint_features_dnd),
        LintTarget("apps/features-voicemail", _lint_features_voicemail),
        LintTarget("protocol/codecs", _lint_codec_registry),
        LintTarget("protocol/descriptors", _lint_descriptor_discipline),
    ]


# ----------------------------------------------------------------------
# verification-model targets
# ----------------------------------------------------------------------
def _lint_model(path_type: str, flowlinks: int
                ) -> Callable[[], List[Diagnostic]]:
    def run() -> List[Diagnostic]:
        from ..verification.models import build_model
        return check_model(build_model(path_type, flowlinks=flowlinks))
    return run


def model_targets() -> List[LintTarget]:
    """One target per bundled path model (the 12-model sweep grid)."""
    from ..verification.models import all_model_specs, build_model
    targets = []
    for path_type, flowlinks in all_model_specs():
        key = build_model(path_type, flowlinks=flowlinks).key
        targets.append(LintTarget("models/%s" % key,
                                  _lint_model(path_type, flowlinks)))
    return targets


def all_targets() -> List[LintTarget]:
    """Every target ``python -m repro lint`` checks by default."""
    return app_targets() + model_targets()


def select_targets(names: Sequence[str]) -> List[LintTarget]:
    """The named subset of the catalog, in catalog order.

    Raises :class:`KeyError` (naming the unknown target) so the CLI can
    exit with a usage error.
    """
    targets = all_targets()
    known = {t.name for t in targets}
    for name in names:
        if name not in known:
            raise KeyError(name)
    wanted = set(names)
    return [t for t in targets if t.name in wanted]
