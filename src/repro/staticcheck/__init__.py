"""Static analysis of box programs, declarations, and path models.

The analyzer exploits what Sec. IV makes true by construction: box
programs are *data* — states with goal annotations and self-describing
transition guards — so goal conflicts, dead guards, unreachable states,
protocol-hygiene slips, and mis-specified verification models are all
visible without running anything.  ``python -m repro lint`` runs the
self-hosted catalog (every bundled app and model); see DESIGN.md §6
for the rule table.
"""

from .catalog import (LintTarget, TargetReport, all_targets, app_targets,
                      model_targets, select_targets)
from .diagnostics import (CODES, Diagnostic, Suppression, severity_of,
                          split_suppressed)
from .fixtures import Fixture, all_fixtures
from .graph import (ProgramGraph, StateInfo, TransitionInfo,
                    conjunctive_slot_atoms, extract_program,
                    extract_states, slot_names_in_guard)
from .hygiene import (CodecListDecl, SelectorCacheDecl, check_codec_list,
                      check_hygiene, check_selector_cache)
from .pathlint import check_model, expected_property
from .rules import RULES, UNREACHABLE_UNDER, check_graph

__all__ = [
    "CODES", "Diagnostic", "Suppression", "severity_of",
    "split_suppressed",
    "ProgramGraph", "StateInfo", "TransitionInfo",
    "conjunctive_slot_atoms", "extract_program", "extract_states",
    "slot_names_in_guard",
    "RULES", "UNREACHABLE_UNDER", "check_graph",
    "CodecListDecl", "SelectorCacheDecl", "check_codec_list",
    "check_hygiene", "check_selector_cache",
    "check_model", "expected_property",
    "LintTarget", "TargetReport", "all_targets", "app_targets",
    "model_targets", "select_targets",
    "Fixture", "all_fixtures",
]
