"""The rule engine: diagnostics over extracted program graphs.

Each rule is a function ``(ProgramGraph) -> Iterable[Diagnostic]``,
registered in :data:`RULES`.  :func:`check_graph` runs them all and
returns the findings sorted by code, state, and slot, so output is
stable across runs.

The rules enforce clauses of Sec. IV of the paper; the table in
DESIGN.md §6 maps each code to its clause.  They are deliberately
*sound but incomplete*: an opaque guard (a hand-written callable with
no static description) disables the guard rules for that transition
rather than producing guesses.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..core.program import GoalSpec
from .diagnostics import Diagnostic
from .graph import (GuardDesc, ProgramGraph, TransitionInfo,
                    conjunctive_slot_atoms, slot_atoms_in_guard,
                    slot_names_in_guard)

__all__ = ["RULES", "check_graph", "UNREACHABLE_UNDER"]


# ----------------------------------------------------------------------
# RC1xx — reachability
# ----------------------------------------------------------------------
def rule_unreachable_states(graph: ProgramGraph) -> Iterable[Diagnostic]:
    """RC101: a state no chain of transitions/timeouts can enter."""
    reachable = graph.reachable()
    for name in graph.states:
        if name not in reachable:
            yield Diagnostic(
                "RC101", "state %r is unreachable from initial state %r"
                % (name, graph.initial),
                program=graph.name, state=name)


def rule_no_termination(graph: ProgramGraph) -> Iterable[Diagnostic]:
    """RC102: no reachable state ever targets END — the program can
    never terminate.  Deliberately-cyclic programs (the prepaid-card
    machine of Sec. IV-B) suppress this with a reason."""
    if not graph.can_terminate():
        yield Diagnostic(
            "RC102", "no reachable state has a transition or timeout "
            "to END; the program cannot terminate",
            program=graph.name, state=graph.initial)


def rule_trap_states(graph: ProgramGraph) -> Iterable[Diagnostic]:
    """RC103: a reachable state with no transitions and no timeout —
    once entered, the program can neither advance nor end."""
    for name in sorted(graph.reachable()):
        info = graph.states.get(name)
        if info is not None and not info.transitions \
                and info.timeout_target is None:
            yield Diagnostic(
                "RC103", "state %r has no transitions and no timeout; "
                "the program can never leave it" % name,
                program=graph.name, state=name)


# ----------------------------------------------------------------------
# RC2xx — goal conflicts
# ----------------------------------------------------------------------
def rule_goal_conflicts(graph: ProgramGraph) -> Iterable[Diagnostic]:
    """RC201/RC202: two annotations claiming one slot in one state.

    "In each state ... annotations or defaults give a static description
    of the programmer's goal for each slot" (Sec. IV-A) — *the* goal,
    singular.  A flowLink claiming a slot another annotation closes is
    reported as the sharper RC202 (the link waits forever for media the
    closeslot is rejecting); every other pairing is RC201.
    """
    for info in graph.states.values():
        claimed: Dict[str, GoalSpec] = {}
        for spec in info.goals:
            for slot in spec.names:
                first = claimed.get(slot)
                if first is None:
                    claimed[slot] = spec
                    continue
                kinds = {first.kind, spec.kind}
                code = "RC202" if kinds == {"link", "close"} else "RC201"
                yield Diagnostic(
                    code, "slot %r is claimed by both %s and %s"
                    % (slot, first, spec),
                    program=graph.name, state=info.name, slot=slot)


def rule_medium_mismatch(graph: ProgramGraph) -> Iterable[Diagnostic]:
    """RC203: ``require_medium_match``, statically.

    "If both slots have the medium attribute defined ... their medium
    attributes are the same" (Sec. IV-A).  A slot's medium is evidenced
    by declaration or by ``openSlot(s, m)`` annotations; conflicting
    evidence for one slot is reported once, and a flowLink over two
    slots with distinct unanimous media is reported per state.
    """
    evidence = graph.media_evidence()
    for slot in sorted(evidence):
        options = evidence[slot]
        if len(options) > 1:
            detail = "; ".join(
                "%s in %s" % (medium, ", ".join(sorted(set(states))))
                for medium, states in sorted(options.items()))
            yield Diagnostic(
                "RC203", "slot %r is opened with conflicting media: %s"
                % (slot, detail),
                program=graph.name, slot=slot)
    for info in graph.states.values():
        for spec in info.goals:
            if spec.kind != "link":
                continue
            m1 = graph.medium_of(spec.names[0])
            m2 = graph.medium_of(spec.names[1])
            if m1 is not None and m2 is not None and m1 != m2:
                yield Diagnostic(
                    "RC203", "flowLink(%s, %s) joins different media "
                    "(%s vs %s)" % (spec.names[0], spec.names[1], m1, m2),
                    program=graph.name, state=info.name,
                    slot=spec.names[0])


# ----------------------------------------------------------------------
# RC3xx — guards
# ----------------------------------------------------------------------
#: Slot protocol states an annotation makes unreachable while it is in
#: force (the Fig. 12 state-matching table, restricted to combinations
#: the goal itself forbids): a closeslot never sends open, so its slot
#: is never ``opening``, and it rejects every open it receives, so its
#: slot never reaches ``flowing``.  Openslots, holdslots, and flowlinks
#: can observe any slot state (via far-end action or inheritance from a
#: predecessor goal), so they forbid nothing.
UNREACHABLE_UNDER: Dict[str, Tuple[str, ...]] = {
    "close": ("opening", "flowing"),
    "open": (),
    "hold": (),
    "link": (),
}


def rule_dead_guards(graph: ProgramGraph) -> Iterable[Diagnostic]:
    """RC301: a transition waiting on a slot predicate its own state's
    annotation makes forever false — e.g. ``isFlowing(s)`` while the
    state annotates ``closeSlot(s)``.  Only *conjunctive* atoms are
    considered (a dead disjunct under ``any_of`` does not disable the
    transition)."""
    for info in graph.states.values():
        for transition in info.transitions:
            for predicate, slot in conjunctive_slot_atoms(transition.guard):
                spec = info.annotation_for(slot)
                if spec is None:
                    continue
                if predicate in UNREACHABLE_UNDER.get(spec.kind, ()):
                    yield Diagnostic(
                        "RC301", "transition to %r waits for "
                        "is_%s(%s), but %s keeps the slot out of "
                        "state %r — the guard can never fire"
                        % (transition.target, predicate, slot, spec,
                           predicate),
                        program=graph.name, state=info.name, slot=slot)


def rule_guard_overlap(graph: ProgramGraph) -> Iterable[Diagnostic]:
    """RC302: two transitions of one state race on the same condition
    (only the first declared ever fires), or an unconditional guard
    shadows every transition declared after it."""
    for info in graph.states.values():
        seen: Dict[GuardDesc, TransitionInfo] = {}
        for transition in info.transitions:
            first = seen.get(transition.guard)
            if first is not None:
                yield Diagnostic(
                    "RC302", "transitions #%d (to %r) and #%d (to %r) "
                    "share the same guard; the later one can never fire"
                    % (first.index, first.target, transition.index,
                       transition.target),
                    program=graph.name, state=info.name)
            else:
                seen[transition.guard] = transition
        for transition in info.transitions[:-1]:
            if transition.is_always:
                yield Diagnostic(
                    "RC302", "transition #%d (to %r) is unconditional "
                    "and shadows every later transition"
                    % (transition.index, transition.target),
                    program=graph.name, state=info.name)
                break


# ----------------------------------------------------------------------
# RC4xx — declarations
# ----------------------------------------------------------------------
def rule_undeclared_slots(graph: ProgramGraph) -> Iterable[Diagnostic]:
    """RC401: an annotation or guard names a slot the box never
    declares (the static twin of the ``Program`` constructor's
    fail-fast check).  Skipped when the graph declares no slots at all
    (nothing to validate against)."""
    declared = graph.declared_slots
    if not declared:
        return
    for info in graph.states.values():
        for spec in info.goals:
            for slot in spec.names:
                if slot not in declared:
                    yield Diagnostic(
                        "RC401", "annotation %s names undeclared slot "
                        "%r (declared: %s)"
                        % (spec, slot, ", ".join(sorted(declared))),
                        program=graph.name, state=info.name, slot=slot)
        for transition in info.transitions:
            for slot in sorted(slot_names_in_guard(transition.guard)):
                if slot not in declared:
                    yield Diagnostic(
                        "RC401", "guard of transition #%d (to %r) tests "
                        "undeclared slot %r (declared: %s)"
                        % (transition.index, transition.target, slot,
                           ", ".join(sorted(declared))),
                        program=graph.name, state=info.name, slot=slot)


# ----------------------------------------------------------------------
# RC7xx — robustness / degradation paths
# ----------------------------------------------------------------------
#: Slot predicates that wait for a handshake to make progress; exactly
#: the waits a retry-budget failure strands, because the failed slot
#: falls back to ``closed``.
_LIVE_WAITS = ("opening", "opened", "flowing")
#: Atoms that fire on the degraded outcome: ``slot_failed`` is the
#: dedicated predicate, and ``is_closed`` also becomes true when the
#: slot gives up and resets.
_FAILURE_ESCAPES = ("failed", "closed")


def rule_unhandled_slot_failure(graph: ProgramGraph
                                ) -> Iterable[Diagnostic]:
    """RC701: a state opens a slot and waits for it to come alive, with
    no way out when the handshake fails.

    In robust mode (lossy networks) an ``openSlot`` whose retry budget
    is exhausted degrades to ``closed`` with the slot marked failed
    instead of completing.  A state that conjunctively waits on
    ``isOpening``/``isOpened``/``isFlowing`` for such a slot, and has
    neither a ``slotFailed``/``isClosed`` transition nor a timeout,
    strands the program in that state forever.  Forward-looking and
    warning-level: on a reliable network the handshake cannot fail, so
    programs written before robust mode existed may waive it.
    """
    for name in sorted(graph.reachable()):
        info = graph.states.get(name)
        if info is None or info.timeout_target is not None:
            continue
        for spec in info.goals:
            if spec.kind != "open":
                continue
            slot = spec.names[0]
            waits = any(
                (pred, slot) in conjunctive_slot_atoms(t.guard)
                for t in info.transitions for pred in _LIVE_WAITS)
            if not waits:
                continue
            handled = any(
                (esc, slot) in slot_atoms_in_guard(t.guard)
                for t in info.transitions for esc in _FAILURE_ESCAPES)
            if not handled:
                yield Diagnostic(
                    "RC701", "state %r waits for slot %r to come alive "
                    "under %s, but no transition handles the failure "
                    "outcome (slotFailed/isClosed) and there is no "
                    "timeout; if the open's retry budget is exhausted "
                    "the program is stranded here" % (name, slot, spec),
                    program=graph.name, state=name, slot=slot)


RULES = (
    rule_unreachable_states,
    rule_no_termination,
    rule_trap_states,
    rule_goal_conflicts,
    rule_medium_mismatch,
    rule_dead_guards,
    rule_guard_overlap,
    rule_undeclared_slots,
    rule_unhandled_slot_failure,
)


def check_graph(graph: ProgramGraph) -> List[Diagnostic]:
    """Run every rule over ``graph``; stable-sorted findings."""
    found: List[Diagnostic] = []
    for rule in RULES:
        found.extend(rule(graph))
    found.sort(key=lambda d: (d.code, d.state or "", d.slot or "",
                              d.message))
    return found
