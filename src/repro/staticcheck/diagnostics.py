"""Diagnostics, codes, and suppressions for the box-program linter.

Every rule in :mod:`repro.staticcheck.rules`,
:mod:`repro.staticcheck.hygiene`, and :mod:`repro.staticcheck.pathlint`
emits :class:`Diagnostic` records with a stable ``RCxxx`` code, so that
tooling (CI, editors, the cross-validation tests) can match on codes
rather than message text.

Code families::

    RC1xx  reachability      (unreachable state, no termination, trap)
    RC2xx  goal conflicts    (slot claimed twice, link-over-close,
                              medium mismatch)
    RC3xx  guards            (dead guard, nondeterministic overlap)
    RC4xx  declarations      (undeclared slot reference)
    RC5xx  protocol hygiene  (codec priority, noMedia placement,
                              selector freshness)
    RC6xx  path models       (goal pair vs. temporal spec mismatch)
    RC7xx  robustness        (degradation paths under lossy networks)
    RC8xx  runtime audit     (backend parity, determinism hazards,
                              arena contracts -- registered by
                              :mod:`repro.audit.codes`)

The code registry is shared between rule families:
:func:`register_codes` lets the RC8xx runtime auditor add its codes
and one-line descriptions at import time, and :func:`rule_table`
renders the merged catalog for ``repro lint --list-rules`` /
``repro audit --list-rules``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Diagnostic", "Suppression", "CODES", "DESCRIPTIONS",
           "severity_of", "register_codes", "rule_table",
           "format_rule_table"]

#: Stable code → (title, severity).  Severity ``error`` marks a
#: composition bug the paper's semantics rules out; ``warning`` marks a
#: structural smell that can be deliberate (and suppressed).
CODES: Dict[str, Tuple[str, str]] = {
    "RC101": ("unreachable-state", "error"),
    "RC102": ("no-termination", "warning"),
    "RC103": ("trap-state", "warning"),
    "RC201": ("slot-conflict", "error"),
    "RC202": ("link-over-close", "error"),
    "RC203": ("medium-mismatch", "error"),
    "RC301": ("dead-guard", "error"),
    "RC302": ("guard-overlap", "warning"),
    "RC401": ("undeclared-slot", "error"),
    "RC501": ("codec-priority", "warning"),
    "RC502": ("nomedia-placement", "error"),
    "RC503": ("stale-selector", "error"),
    "RC601": ("spec-mismatch", "error"),
    "RC701": ("unhandled-slot-failure", "warning"),
}

#: Stable code → one-line description, rendered by ``--list-rules``.
#: Every registered code must have one; the cross-validation tests
#: keep the two maps in lockstep.
DESCRIPTIONS: Dict[str, str] = {
    "RC101": "a program state has no path from the initial state",
    "RC102": "no reachable state terminates the program (END)",
    "RC103": "a reachable state has no outgoing transition and is "
             "not END",
    "RC201": "two simultaneous goals claim the same slot",
    "RC202": "a flow goal links through a slot that is closed in "
             "its state",
    "RC203": "a flow goal joins slots declared for different media",
    "RC301": "a transition guard can never be satisfied in its state",
    "RC302": "two guards on one state overlap nondeterministically",
    "RC401": "a goal references a slot the program never declared",
    "RC501": "a codec preference list is not priority-ordered "
             "(best first)",
    "RC502": "noMedia appears anywhere but last in a codec list",
    "RC503": "a cached selector answers a stale descriptor version",
    "RC601": "a goal pair disagrees with its temporal specification",
    "RC701": "no transition handles a slot failure in a state that "
             "holds one open",
}


def register_codes(codes: Dict[str, Tuple[str, str]],
                   descriptions: Dict[str, str]) -> None:
    """Merge another rule family into the shared registry.

    Called at import time by :mod:`repro.audit.codes` so RC8xx
    diagnostics resolve titles/severities through the same tables the
    box-program linter uses, and ``--list-rules`` shows one catalog.
    """
    CODES.update(codes)
    DESCRIPTIONS.update(descriptions)


def rule_table() -> List[Tuple[str, str, str, str]]:
    """The merged catalog as ``(code, title, severity, description)``
    rows in code order."""
    return [(code, title, severity, DESCRIPTIONS.get(code, ""))
            for code, (title, severity) in sorted(CODES.items())]


def format_rule_table(rows=None) -> str:
    """Render ``--list-rules`` output (shared by lint and audit)."""
    lines = []
    for code, title, severity, description in (rule_table()
                                               if rows is None else rows):
        lines.append("%s  %-24s %-7s  %s"
                     % (code, title, severity, description))
    return "\n".join(lines) + "\n"


def severity_of(code: str) -> str:
    """Severity for ``code`` (unknown codes count as errors)."""
    return CODES.get(code, ("?", "error"))[1]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer."""

    code: str                    # e.g. "RC201"
    message: str                 # human-readable, self-contained
    program: str                 # lint target (app, profile, model key)
    state: Optional[str] = None  # program state, when applicable
    slot: Optional[str] = None   # slot name, when applicable

    @property
    def title(self) -> str:
        return CODES.get(self.code, ("unknown", "error"))[0]

    @property
    def severity(self) -> str:
        return severity_of(self.code)

    def format(self) -> str:
        where = self.program
        if self.state is not None:
            where += ":%s" % self.state
        tail = " [slot %s]" % self.slot if self.slot is not None else ""
        return "%s %s (%s): %s%s" % (
            self.code, where, self.title, self.message, tail)

    def to_json(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "title": self.title,
            "severity": self.severity,
            "program": self.program,
            "state": self.state,
            "slot": self.slot,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """A deliberate waiver of one code for one lint target.

    The ``reason`` is mandatory and surfaces in reports: the catalog
    must say *why* a program is allowed to, e.g., never terminate
    (the prepaid-card program cycles by design, Sec. IV-B).
    """

    code: str
    reason: str

    def to_json(self) -> Dict[str, object]:
        return {"code": self.code, "reason": self.reason}


def split_suppressed(diagnostics: List[Diagnostic],
                     suppressions: Tuple[Suppression, ...]
                     ) -> Tuple[List[Diagnostic], List[Diagnostic]]:
    """Partition ``diagnostics`` into (active, suppressed)."""
    waived = {s.code for s in suppressions}
    active = [d for d in diagnostics if d.code not in waived]
    suppressed = [d for d in diagnostics if d.code in waived]
    return active, suppressed


__all__.append("split_suppressed")
