"""Diagnostics, codes, and suppressions for the box-program linter.

Every rule in :mod:`repro.staticcheck.rules`,
:mod:`repro.staticcheck.hygiene`, and :mod:`repro.staticcheck.pathlint`
emits :class:`Diagnostic` records with a stable ``RCxxx`` code, so that
tooling (CI, editors, the cross-validation tests) can match on codes
rather than message text.

Code families::

    RC1xx  reachability      (unreachable state, no termination, trap)
    RC2xx  goal conflicts    (slot claimed twice, link-over-close,
                              medium mismatch)
    RC3xx  guards            (dead guard, nondeterministic overlap)
    RC4xx  declarations      (undeclared slot reference)
    RC5xx  protocol hygiene  (codec priority, noMedia placement,
                              selector freshness)
    RC6xx  path models       (goal pair vs. temporal spec mismatch)
    RC7xx  robustness        (degradation paths under lossy networks)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Diagnostic", "Suppression", "CODES", "severity_of"]

#: Stable code → (title, severity).  Severity ``error`` marks a
#: composition bug the paper's semantics rules out; ``warning`` marks a
#: structural smell that can be deliberate (and suppressed).
CODES: Dict[str, Tuple[str, str]] = {
    "RC101": ("unreachable-state", "error"),
    "RC102": ("no-termination", "warning"),
    "RC103": ("trap-state", "warning"),
    "RC201": ("slot-conflict", "error"),
    "RC202": ("link-over-close", "error"),
    "RC203": ("medium-mismatch", "error"),
    "RC301": ("dead-guard", "error"),
    "RC302": ("guard-overlap", "warning"),
    "RC401": ("undeclared-slot", "error"),
    "RC501": ("codec-priority", "warning"),
    "RC502": ("nomedia-placement", "error"),
    "RC503": ("stale-selector", "error"),
    "RC601": ("spec-mismatch", "error"),
    "RC701": ("unhandled-slot-failure", "warning"),
}


def severity_of(code: str) -> str:
    """Severity for ``code`` (unknown codes count as errors)."""
    return CODES.get(code, ("?", "error"))[1]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer."""

    code: str                    # e.g. "RC201"
    message: str                 # human-readable, self-contained
    program: str                 # lint target (app, profile, model key)
    state: Optional[str] = None  # program state, when applicable
    slot: Optional[str] = None   # slot name, when applicable

    @property
    def title(self) -> str:
        return CODES.get(self.code, ("unknown", "error"))[0]

    @property
    def severity(self) -> str:
        return severity_of(self.code)

    def format(self) -> str:
        where = self.program
        if self.state is not None:
            where += ":%s" % self.state
        tail = " [slot %s]" % self.slot if self.slot is not None else ""
        return "%s %s (%s): %s%s" % (
            self.code, where, self.title, self.message, tail)

    def to_json(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "title": self.title,
            "severity": self.severity,
            "program": self.program,
            "state": self.state,
            "slot": self.slot,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """A deliberate waiver of one code for one lint target.

    The ``reason`` is mandatory and surfaces in reports: the catalog
    must say *why* a program is allowed to, e.g., never terminate
    (the prepaid-card program cycles by design, Sec. IV-B).
    """

    code: str
    reason: str

    def to_json(self) -> Dict[str, object]:
        return {"code": self.code, "reason": self.reason}


def split_suppressed(diagnostics: List[Diagnostic],
                     suppressions: Tuple[Suppression, ...]
                     ) -> Tuple[List[Diagnostic], List[Diagnostic]]:
    """Partition ``diagnostics`` into (active, suppressed)."""
    waived = {s.code for s in suppressions}
    active = [d for d in diagnostics if d.code not in waived]
    suppressed = [d for d in diagnostics if d.code in waived]
    return active, suppressed


__all__.append("split_suppressed")
