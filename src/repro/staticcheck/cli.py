"""``python -m repro lint`` — run the static analyzer.

Usage::

    python -m repro lint                      # the whole catalog
    python -m repro lint --list               # show target names
    python -m repro lint --list-rules         # the rule catalog with
                                              # one-line descriptions
    python -m repro lint --target apps/pbx    # a subset (repeatable)
    python -m repro lint --format json        # machine-readable output
    python -m repro lint --fixtures           # the broken fixtures
                                              # (negative controls;
                                              # exits 1 by design)

Exit status: 0 when every selected target is clean, 1 when any
unsuppressed diagnostic was found, 2 on usage errors (including an
unknown ``--target`` name).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, TextIO

from .catalog import LintTarget, TargetReport, all_targets, select_targets
from .fixtures import all_fixtures

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Statically check the bundled box programs, codec "
                    "declarations, and verification models")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--target", action="append", default=None,
                        metavar="NAME",
                        help="lint only this catalog target "
                             "(repeatable; see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list catalog target names and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every RCxxx/RC8xx rule with its "
                             "one-line description and exit")
    parser.add_argument("--fixtures", action="store_true",
                        help="lint the deliberately-broken fixtures "
                             "instead of the catalog (exits 1)")
    return parser


def _fixture_targets() -> List[LintTarget]:
    return [LintTarget(f.name, f.run) for f in all_fixtures()]


def _render_text(reports: Sequence[TargetReport],
                 stream: TextIO) -> None:
    for report in reports:
        status = "ok" if report.clean else "FAIL"
        waived = (" (%d suppressed)" % len(report.suppressed)
                  if report.suppressed else "")
        stream.write("%-28s %s%s\n" % (report.name, status, waived))
        for diagnostic in report.active:
            stream.write("    %s\n" % diagnostic.format())
        for diagnostic in report.suppressed:
            reason = next((s.reason for s in report.suppressions
                           if s.code == diagnostic.code), "")
            stream.write("    suppressed %s: %s\n"
                         % (diagnostic.code, reason))
    errors = sum(1 for r in reports for d in r.active
                 if d.severity == "error")
    warnings = sum(1 for r in reports for d in r.active
                   if d.severity == "warning")
    stream.write("%d target(s): %d error(s), %d warning(s)\n"
                 % (len(reports), errors, warnings))


def _render_json(reports: Sequence[TargetReport],
                 stream: TextIO) -> None:
    payload = {
        "targets": [r.to_json() for r in reports],
        "summary": {
            "targets": len(reports),
            "errors": sum(1 for r in reports for d in r.active
                          if d.severity == "error"),
            "warnings": sum(1 for r in reports for d in r.active
                            if d.severity == "warning"),
            "suppressed": sum(len(r.suppressed) for r in reports),
        },
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


def main(argv: Optional[Sequence[str]] = None,
         stream: Optional[TextIO] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)  # exits 2 on usage errors
    out = stream if stream is not None else sys.stdout

    if args.list_rules:
        # The audit family registers its RC8xx codes at import time;
        # pull it in so one flag prints the whole merged catalog.
        from ..audit import codes as _audit_codes  # noqa: F401
        from .diagnostics import format_rule_table
        out.write(format_rule_table())
        return 0

    if args.list:
        for target in all_targets():
            out.write("%s\n" % target.name)
        return 0

    if args.fixtures:
        targets = _fixture_targets()
    elif args.target:
        try:
            targets = select_targets(args.target)
        except KeyError as exc:
            sys.stderr.write("repro lint: unknown target %s "
                             "(see --list)\n" % exc)
            return 2
    else:
        targets = all_targets()

    reports = [t.report() for t in targets]
    if args.format == "json":
        _render_json(reports, out)
    else:
        _render_text(reports, out)
    return 0 if all(r.clean for r in reports) else 1


if __name__ == "__main__":  # pragma: no cover - python -m entry
    sys.exit(main())
