"""Protocol hygiene: cached descriptors, codec lists, selectors.

Sec. VI's descriptor/selector discipline has static consequences for
the data applications *declare* and *cache*:

* a descriptor's codec list is "priority-ordered, best first"
  (Sec. VI-B) — so a declared preference list that is out of fidelity
  order, duplicated, or mixes media silently negotiates the wrong
  codec (RC501);
* ``noMedia`` is "the name of a distinguished pseudo-codec indicating
  no media transmission" — it stands alone, never alongside real
  codecs, and an empty offer must use it rather than offer nothing
  (RC502);
* a selector "identifies the descriptor it answers"; servers that
  cache descriptors as they pass by (Sec. VI-C) must answer the
  *freshest* version from each origin, or they re-animate a stale
  address, which is exactly the Fig. 2 hijack (RC503).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..protocol.codecs import Codec, NO_MEDIA
from ..protocol.descriptor import Descriptor, DescriptorId, Selector
from .diagnostics import Diagnostic

__all__ = ["CodecListDecl", "SelectorCacheDecl", "check_codec_list",
           "check_selector_cache", "check_hygiene"]


@dataclass(frozen=True)
class CodecListDecl:
    """A declared codec preference list to lint (e.g. a device's
    advertised codecs for one medium)."""

    owner: str                  # e.g. "collab_tv.TV"
    context: str                # e.g. "video preference"
    codecs: Tuple[Codec, ...]

    @property
    def label(self) -> str:
        return "%s %s" % (self.owner, self.context)


@dataclass(frozen=True)
class SelectorCacheDecl:
    """A cached-descriptor store plus the selectors answering into it:
    the shape of a server's ``seen_descriptors`` cache (Sec. VI-C)."""

    owner: str
    descriptors: Tuple[Descriptor, ...]   # every descriptor cached
    selectors: Tuple[Selector, ...]       # selectors the owner holds


def check_codec_list(program: str, decl: CodecListDecl
                     ) -> List[Diagnostic]:
    """RC501/RC502 over one declared codec list."""
    found: List[Diagnostic] = []
    codecs = decl.codecs
    real = [c for c in codecs if c.is_real]
    if not codecs:
        found.append(Diagnostic(
            "RC502", "%s declares an empty codec list; refuse media "
            "with the noMedia pseudo-codec instead" % decl.label,
            program=program))
        return found
    if real and NO_MEDIA in codecs:
        found.append(Diagnostic(
            "RC502", "%s mixes noMedia with real codecs %s; noMedia "
            "stands alone" % (decl.label,
                              "/".join(c.name for c in real)),
            program=program))
    if len(set(real)) != len(real):
        dupes = sorted({c.name for c in real if real.count(c) > 1})
        found.append(Diagnostic(
            "RC501", "%s lists duplicate codecs: %s"
            % (decl.label, ", ".join(dupes)),
            program=program))
    media = sorted({c.medium for c in real})
    if len(media) > 1:
        found.append(Diagnostic(
            "RC501", "%s mixes media in one list: %s"
            % (decl.label, ", ".join(media)),
            program=program))
    for earlier, later in zip(real, real[1:]):
        if later.fidelity > earlier.fidelity:
            found.append(Diagnostic(
                "RC501", "%s is not priority-ordered: %s (fidelity %d) "
                "listed after %s (fidelity %d)"
                % (decl.label, later.name, later.fidelity,
                   earlier.name, earlier.fidelity),
                program=program))
            break
    return found


def check_selector_cache(program: str, decl: SelectorCacheDecl
                         ) -> List[Diagnostic]:
    """RC503: a held selector answers a descriptor version that the
    same cache has already superseded."""
    found: List[Diagnostic] = []
    latest: Dict[str, int] = {}
    for descriptor in decl.descriptors:
        origin = descriptor.id.origin
        latest[origin] = max(latest.get(origin, -1),
                             descriptor.id.version)
    for selector in decl.selectors:
        freshest = latest.get(selector.answers.origin)
        if freshest is not None and selector.answers.version < freshest:
            found.append(Diagnostic(
                "RC503", "%s holds a selector answering %s, but has "
                "already cached version %d from the same origin; the "
                "selector is stale"
                % (decl.owner, selector.answers, freshest),
                program=program))
    return found


def check_hygiene(program: str,
                  codec_lists: Sequence[CodecListDecl] = (),
                  selector_caches: Sequence[SelectorCacheDecl] = ()
                  ) -> List[Diagnostic]:
    """Run every hygiene check; stable-sorted findings."""
    found: List[Diagnostic] = []
    for decl in codec_lists:
        found.extend(check_codec_list(program, decl))
    for cache in selector_caches:
        found.extend(check_selector_cache(program, cache))
    found.sort(key=lambda d: (d.code, d.message))
    return found
