"""Deliberately-broken miniature programs, one per diagnostic code.

Each fixture is the smallest program (or declaration) that triggers its
code, with the expected location recorded so the test suite can assert
code, state name, and slot name — and so ``python -m repro lint
--fixtures`` demonstrates every rule firing (expected exit status 1).

These are the analyzer's negative controls: the catalog proves the
bundled programs are clean, the fixtures prove the rules would have
said so if they were not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..core.predicates import is_closed, is_flowing
from ..core.program import (END, State, Transition, close_slot, flow_link,
                            hold_slot, on_channel_down, on_meta, open_slot)
from ..protocol.codecs import AUDIO, G711, G726, NO_MEDIA, VIDEO
from .diagnostics import Diagnostic
from .graph import extract_states
from .hygiene import (CodecListDecl, SelectorCacheDecl, check_hygiene)
from .rules import check_graph

__all__ = ["Fixture", "all_fixtures"]


@dataclass(frozen=True)
class Fixture:
    """One broken program plus the diagnostic it must trigger."""

    name: str                    # e.g. "broken-RC201"
    code: str                    # the code the fixture must produce
    run: Callable[[], List[Diagnostic]]
    state: Optional[str] = None  # expected diagnostic location
    slot: Optional[str] = None

    def matches(self, diagnostic: Diagnostic) -> bool:
        """Does ``diagnostic`` report this fixture's planted defect?"""
        return (diagnostic.code == self.code
                and (self.state is None or diagnostic.state == self.state)
                and (self.slot is None or diagnostic.slot == self.slot))


def _graph_fixture(name, states, initial, slots=(), media=None):
    def run() -> List[Diagnostic]:
        return check_graph(extract_states(name, states, initial,
                                          slots=slots, media=media))
    return run


# ----------------------------------------------------------------------
# one broken program per code
# ----------------------------------------------------------------------
def _rc101() -> Fixture:
    # "orphan" has an outgoing edge but nothing ever enters it.
    states = {
        "start": State(goals=(hold_slot("s"),),
                       transitions=(Transition(on_channel_down(), END),)),
        "orphan": State(goals=(hold_slot("s"),),
                        transitions=(Transition(on_channel_down(), END),)),
    }
    return Fixture("broken-RC101", "RC101",
                   _graph_fixture("broken-RC101", states, "start",
                                  slots=("s",)),
                   state="orphan")


def _rc102() -> Fixture:
    # Two states ping-ponging on meta-signals; END is never a target.
    states = {
        "ping": State(goals=(hold_slot("s"),),
                      transitions=(Transition(on_meta("app", "go"),
                                              "pong"),)),
        "pong": State(goals=(hold_slot("s"),),
                      transitions=(Transition(on_meta("app", "back"),
                                              "ping"),)),
    }
    return Fixture("broken-RC102", "RC102",
                   _graph_fixture("broken-RC102", states, "ping",
                                  slots=("s",)),
                   state="ping")


def _rc103() -> Fixture:
    # "stuck" is entered and has no way out (and no timeout).
    states = {
        "start": State(goals=(hold_slot("s"),),
                       transitions=(
                           Transition(on_meta("app", "go"), "stuck"),
                           Transition(on_channel_down(), END),)),
        "stuck": State(goals=(hold_slot("s"),), transitions=()),
    }
    return Fixture("broken-RC103", "RC103",
                   _graph_fixture("broken-RC103", states, "start",
                                  slots=("s",)),
                   state="stuck")


def _rc201() -> Fixture:
    # One state claims slot "x" with two different annotations.
    states = {
        "start": State(goals=(hold_slot("x"), open_slot("x", AUDIO)),
                       transitions=(Transition(on_channel_down(), END),)),
    }
    return Fixture("broken-RC201", "RC201",
                   _graph_fixture("broken-RC201", states, "start",
                                  slots=("x",)),
                   state="start", slot="x")


def _rc202() -> Fixture:
    # A flowlink waits for media on a slot another annotation closes.
    states = {
        "start": State(goals=(flow_link("x", "y"), close_slot("x")),
                       transitions=(Transition(on_channel_down(), END),)),
    }
    return Fixture("broken-RC202", "RC202",
                   _graph_fixture("broken-RC202", states, "start",
                                  slots=("x", "y")),
                   state="start", slot="x")


def _rc203() -> Fixture:
    # A flowlink joining a declared-audio slot to a declared-video slot.
    states = {
        "start": State(goals=(flow_link("mic", "screen"),),
                       transitions=(Transition(on_channel_down(), END),)),
    }
    return Fixture("broken-RC203", "RC203",
                   _graph_fixture("broken-RC203", states, "start",
                                  slots=("mic", "screen"),
                                  media={"mic": AUDIO, "screen": VIDEO}),
                   state="start", slot="mic")


def _rc301() -> Fixture:
    # Waiting for is_flowing on a slot the same state's closeslot keeps
    # out of the flowing state: the guard can never fire.
    states = {
        "start": State(goals=(close_slot("x"),),
                       transitions=(
                           Transition(is_flowing("x"), "next"),
                           Transition(on_channel_down(), END),)),
        "next": State(goals=(hold_slot("x"),),
                      transitions=(Transition(is_closed("x"), END),)),
    }
    return Fixture("broken-RC301", "RC301",
                   _graph_fixture("broken-RC301", states, "start",
                                  slots=("x",)),
                   state="start", slot="x")


def _rc302() -> Fixture:
    # Two transitions racing on the identical guard: only the first
    # declared can ever fire.
    states = {
        "start": State(goals=(hold_slot("s"),),
                       transitions=(
                           Transition(on_meta("app", "go"), "left"),
                           Transition(on_meta("app", "go"), "right"),
                           Transition(on_channel_down(), END),)),
        "left": State(goals=(hold_slot("s"),),
                      transitions=(Transition(on_channel_down(), END),)),
        "right": State(goals=(hold_slot("s"),),
                       transitions=(Transition(on_channel_down(), END),)),
    }
    return Fixture("broken-RC302", "RC302",
                   _graph_fixture("broken-RC302", states, "start",
                                  slots=("s",)),
                   state="start")


def _rc401() -> Fixture:
    # The annotation names slot "ghost" that was never declared.
    states = {
        "start": State(goals=(hold_slot("ghost"),),
                       transitions=(Transition(on_channel_down(), END),)),
    }
    return Fixture("broken-RC401", "RC401",
                   _graph_fixture("broken-RC401", states, "start",
                                  slots=("s",)),
                   state="start", slot="ghost")


def _rc501() -> Fixture:
    # G.726 listed before the higher-fidelity G.711: not best-first.
    def run() -> List[Diagnostic]:
        decl = CodecListDecl("broken-box", "audio preference",
                             (G726, G711))
        return check_hygiene("broken-RC501", codec_lists=(decl,))
    return Fixture("broken-RC501", "RC501", run)


def _rc502() -> Fixture:
    # noMedia mixed into a list of real codecs.
    def run() -> List[Diagnostic]:
        decl = CodecListDecl("broken-box", "audio preference",
                             (G711, NO_MEDIA))
        return check_hygiene("broken-RC502", codec_lists=(decl,))
    return Fixture("broken-RC502", "RC502", run)


def _rc503() -> Fixture:
    # The cache has seen version 1 but still answers version 0 — the
    # Fig. 2 stale-descriptor hijack, caught statically.
    def run() -> List[Diagnostic]:
        from ..protocol.descriptor import DescriptorFactory, Selector
        factory = DescriptorFactory(origin="broken-server")
        stale = factory.no_media()   # version 0
        fresh = factory.no_media()   # version 1 supersedes it
        cache = SelectorCacheDecl(
            owner="broken-server cache",
            descriptors=(stale, fresh),
            selectors=(Selector(answers=stale.id, address=None,
                                codec=NO_MEDIA),))
        return check_hygiene("broken-RC503", selector_caches=(cache,))
    return Fixture("broken-RC503", "RC503", run)


def _rc601() -> Fixture:
    # A close/open path checked against recurrence-flowing: the close
    # end rejects every open, so bothFlowing can never recur.
    def run() -> List[Diagnostic]:
        from ..verification.models import build_model
        from .pathlint import check_model
        model = build_model("CO")
        model.property_kind = "recurrence-flowing"
        return check_model(model)
    return Fixture("broken-RC601", "RC601", run)


def _rc701() -> Fixture:
    # "dialing" opens a slot and waits only for it to flow: if the
    # open's retry budget runs out (robust mode), the slot falls back to
    # closed and the program is stranded — no slotFailed/isClosed
    # transition, no timeout.
    states = {
        "dialing": State(goals=(open_slot("s", AUDIO),),
                         transitions=(
                             Transition(is_flowing("s"), "talking"),)),
        "talking": State(goals=(hold_slot("s"),),
                         transitions=(
                             Transition(on_channel_down(), END),)),
    }
    return Fixture("broken-RC701", "RC701",
                   _graph_fixture("broken-RC701", states, "dialing",
                                  slots=("s",)),
                   state="dialing", slot="s")


def all_fixtures() -> List[Fixture]:
    """Every broken fixture, one per diagnostic code, in code order."""
    return [_rc101(), _rc102(), _rc103(), _rc201(), _rc202(), _rc203(),
            _rc301(), _rc302(), _rc401(), _rc501(), _rc502(), _rc503(),
            _rc601(), _rc701()]
