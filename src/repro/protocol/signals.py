"""Tunnel signals and channel meta-signals (Secs. III-A, VI-B).

Tunnel signals operate the media-control protocol in one tunnel:
``open``, ``oack``, ``close``, ``closeack``, ``describe``, ``select``.

Meta-signals "refer to the signaling channel as a whole, and can affect
all the tunnels within it.  Meta-signals set up and tear down signaling
channels.  They can indicate that the intended far endpoint is currently
available or unavailable, as well as other conditions" (Sec. III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .codecs import Medium
from .descriptor import Descriptor, Selector

__all__ = [
    "TunnelSignal", "Open", "Oack", "Close", "CloseAck",
    "Describe", "Select", "Busy",
    "MetaSignal", "ChannelUp", "TearDown", "Available", "Unavailable",
    "AppMeta",
    "TunnelMessage", "MetaMessage",
]


# ----------------------------------------------------------------------
# tunnel signals
# ----------------------------------------------------------------------
class TunnelSignal:
    """Base class for the six media-control signals."""

    __slots__ = ()

    kind = "signal"

    def __str__(self) -> str:
        return self.kind


@dataclass(frozen=True, slots=True)
class Open(TunnelSignal):
    """Attempt to open a media channel.

    "Each open signal carries the medium being requested, and a
    descriptor" (Sec. VI-B).
    """

    medium: Medium
    descriptor: Descriptor
    kind = "open"

    def __str__(self) -> str:
        return "open(%s, %s)" % (self.medium, self.descriptor)


@dataclass(frozen=True, slots=True)
class Oack(TunnelSignal):
    """Affirmative response to ``open``, carrying the acceptor's
    descriptor."""

    descriptor: Descriptor
    kind = "oack"

    def __str__(self) -> str:
        return "oack(%s)" % (self.descriptor,)


@dataclass(frozen=True, slots=True)
class Close(TunnelSignal):
    """Close (or reject) the media channel.  "Note that close now plays
    the role of both close and reject in Figure 5."""

    kind = "close"


@dataclass(frozen=True, slots=True)
class CloseAck(TunnelSignal):
    """Mandatory acknowledgement of ``close``; drains the tunnel lane so
    it can be reused cleanly."""

    kind = "closeack"


@dataclass(frozen=True, slots=True)
class Describe(TunnelSignal):
    """A new self-description of the sender as a media receiver; the
    receiver "must respond with a new selector in a select signal, if
    only to show that it has received the descriptor" (Sec. VI-B)."""

    descriptor: Descriptor
    kind = "describe"

    def __str__(self) -> str:
        return "describe(%s)" % (self.descriptor,)


@dataclass(frozen=True, slots=True)
class Select(TunnelSignal):
    """A selector: the sender's declared intention toward a received
    descriptor."""

    selector: Selector
    kind = "select"

    def __str__(self) -> str:
        return "select(%s)" % (self.selector,)


@dataclass(frozen=True, slots=True)
class Busy(TunnelSignal):
    """Structured admission refusal: the receiving box is shedding load
    and will not serve this ``open`` right now.

    Unlike ``close`` (which doubles as a *semantic* rejection — the far
    party declined), ``busy`` is an *operational* refusal: the box is
    over one of its admission limits and the request may well succeed
    shortly.  An upstream robust slot reacts with bounded
    retry-with-backoff before degrading to the paper's ``noMedia``
    fallback; a reliable-mode slot degrades immediately.

    ``reason`` names the limit that fired (``"rate"``, ``"concurrent"``,
    ``"tenant"``); ``retry_after`` is an optional hint, in simulated
    seconds, for the earliest sensible retry (0 = no hint).
    """

    reason: str = "admission"
    retry_after: float = 0.0
    kind = "busy"

    def __str__(self) -> str:
        return "busy(%s)" % (self.reason,)


# ----------------------------------------------------------------------
# meta-signals
# ----------------------------------------------------------------------
class MetaSignal:
    """Base class for channel-scope signals."""

    __slots__ = ()

    kind = "meta"

    def __str__(self) -> str:
        return self.kind


@dataclass(frozen=True, slots=True)
class ChannelUp(MetaSignal):
    """Delivered to the callee-side owner when a new signaling channel
    reaches it.  ``target`` is the dialed address string, so a box
    serving several addresses can demultiplex."""

    target: str
    kind = "channel-up"


@dataclass(frozen=True, slots=True)
class TearDown(MetaSignal):
    """The whole signaling channel is being destroyed; "a meta-action
    that of course destroys all its tunnels and slots" (Sec. IV-B)."""

    kind = "teardown"


@dataclass(frozen=True, slots=True)
class Available(MetaSignal):
    """The intended far endpoint is currently available (e.g. ringing
    succeeded)."""

    kind = "available"


@dataclass(frozen=True, slots=True)
class Unavailable(MetaSignal):
    """The intended far endpoint is unavailable (busy, unreachable)."""

    reason: str = "busy"
    kind = "unavailable"


@dataclass(frozen=True, slots=True)
class AppMeta(MetaSignal):
    """Application-defined meta-signal (e.g. "user has paid" from the
    interactive-voice resource to the prepaid-card server, or mix-matrix
    commands to a conference bridge, Sec. IV-B)."""

    name: str
    payload: Dict[str, Any] = field(default_factory=dict)
    kind = "app"

    def __str__(self) -> str:
        return "app:%s%s" % (self.name, self.payload or "")


# ----------------------------------------------------------------------
# wire envelopes
# ----------------------------------------------------------------------
# The envelopes are deliberately *not* frozen: one is constructed per
# signal on the wire, and a frozen dataclass pays an object.__setattr__
# per field in __init__.  The signals inside them stay immutable.
@dataclass(slots=True)
class TunnelMessage:
    """Envelope routing a tunnel signal to one tunnel of a channel.

    ``pooled`` marks an envelope drawn from the loop's freelist
    (:attr:`repro.network.eventloop.EventLoop._env_pool`).  Such an
    envelope is acquired at a send site that proved the link has no
    transmit hooks — so exactly one delivery will happen and nobody
    retains the object — and is reset and released at the end of
    :meth:`repro.protocol.channel.ChannelEnd._process`.  The flag is
    excluded from equality and repr: a recycled envelope is
    indistinguishable from a fresh one.
    """

    tunnel_id: str
    signal: TunnelSignal
    pooled: bool = field(default=False, compare=False, repr=False)

    def __str__(self) -> str:
        return "[%s] %s" % (self.tunnel_id, self.signal)


@dataclass(slots=True)
class MetaMessage:
    """Envelope for a channel-scope meta-signal."""

    signal: MetaSignal

    def __str__(self) -> str:
        return "[meta] %s" % (self.signal,)


class _PoisonedSignal:
    """Sentinel stored in released pooled envelopes when arena
    poisoning is on (``REPRO_ARENA_POISON=1``, surfaced as
    :data:`repro.network.backend.ARENA_POISON`).

    A correctly recycled envelope overwrites the sentinel at its next
    acquire, so enabling poisoning changes nothing on legal paths.  A
    *use-after-release* — an envelope delivered again after
    :meth:`~repro.protocol.channel.ChannelEnd._process` released it —
    surfaces the sentinel where a signal was expected, and any
    attribute access (``.kind``, dispatch fields) raises instead of
    silently mis-dispatching a stale or ``None`` signal.
    """

    __slots__ = ()

    def __getattr__(self, name: str):
        raise RuntimeError(
            "arena poison: use-after-release — a pooled TunnelMessage "
            "was used after its release (attribute %r read on the "
            "poison sentinel)" % name)

    def __repr__(self) -> str:  # safe: debuggers/tracebacks may repr it
        return "<poisoned signal (released envelope)>"


#: The singleton written into ``TunnelMessage.signal`` at release
#: sites when poisoning is enabled.
POISONED_SIGNAL = _PoisonedSignal()
