"""Signaling channels, tunnels, and the agents that own them.

"Boxes are connected by signaling channels.  A signaling channel is
two-way, FIFO, and reliable ...  Each signaling channel is partitioned
statically into tunnels, each of which provides a separate two-way
signaling capability.  Each tunnel can be used to control a separate
media channel" (Sec. III-A).

A :class:`SignalingChannel` rides a :class:`~repro.network.transport.Link`
and multiplexes tunnel signals plus channel-scope meta-signals.  Each of
its two :class:`ChannelEnd` objects belongs to a :class:`SignalingAgent`
(a box, user device, or media resource); received messages are queued as
stimuli on the agent's node, paying the per-stimulus processing cost
``c`` of Sec. VIII-C.

Teardown is asymmetric in time, like the real network: the initiating
side's slots die immediately, a ``TearDown`` meta-signal crosses the
link, and the peer's slots die when it arrives (its owner is notified
through ``on_channel_gone``).  Signals still in flight toward a dead end
are dropped, which is exactly what a closed TCP connection does.
"""

from __future__ import annotations

from heapq import heappush
from typing import Dict, Iterable, List, Optional, Tuple

from ..network.backend import ARENA_POISON as _ARENA_POISON
from ..network.backend import CORE as _CORE
from ..network.eventloop import Event, EventLoop
from ..network.latency import LatencyModel
from ..network.node import Node
from ..network.transport import Link
from ..obs.events import ChannelEvent, SignalReceived, signal_label
from .errors import ConfigurationError
from .signals import (POISONED_SIGNAL, ChannelUp, MetaMessage,
                      MetaSignal, TearDown, TunnelMessage, TunnelSignal)
from .slot import RetransmitPolicy, Slot

__all__ = ["SignalingAgent", "ChannelEnd", "SignalingChannel",
           "DEFAULT_TUNNEL"]

#: Tunnel id used by single-medium applications, which dominate
#: (Sec. IV-B: "It is typical of single-medium applications ... that when
#: a media channel is no longer needed, the entire signaling channel is
#: destroyed").
DEFAULT_TUNNEL = "t0"

#: Cap on the per-loop recycled-envelope pool (see
#: :attr:`repro.network.eventloop.EventLoop._env_pool`).
_ENV_POOL_MAX = 64

#: What a released envelope's ``signal`` field is reset to.  Normally
#: ``None`` (drop the reference); under ``REPRO_ARENA_POISON`` it is
#: the poison sentinel, so a use-after-release raises at its next
#: attribute access instead of silently dispatching stale state.  A
#: pure-Python debug aid: the compiled Process kernel keeps its own
#: release path.
_RELEASED_SIGNAL = POISONED_SIGNAL if _ARENA_POISON else None


class SignalingAgent:
    """Base class for anything that owns channel ends.

    Subclasses are boxes (:class:`repro.core.box.Box`) and media
    endpoints (:class:`repro.media.endpoint.MediaEndpoint`).  They
    override the ``on_*`` hooks; each hook runs as one stimulus on the
    agent's :class:`~repro.network.node.Node`, paying cost ``c``.
    """

    def __init__(self, loop: EventLoop, name: str, cost: float = 0.0):
        self.loop = loop
        self.name = name
        self.node = Node(loop, name=name, cost=cost)
        self.channel_ends: List["ChannelEnd"] = []
        #: Slot-state generation counter.  Bumped whenever guard-visible
        #: slot state owned by this agent changes: every
        #: ``Slot._set_state`` (and the compiled FSM fast path, which
        #: bypasses it), plus slot-name binding changes on boxes.  Boxes
        #: pair it with ``_poll_gen`` to skip goal re-evaluation while
        #: no guard input moved; the counter lives on the agent (not the
        #: box) so the slot side can bump ``_end.owner.goal_gen``
        #: without caring what kind of agent owns the end.
        self.goal_gen = 0

    # -- hooks -----------------------------------------------------------
    def on_tunnel_signal(self, slot: Slot, signal: TunnelSignal) -> None:
        """A tunnel signal was received and accepted by ``slot``."""
        raise NotImplementedError

    def on_meta(self, end: "ChannelEnd", signal: MetaSignal) -> None:
        """A meta-signal arrived on one of this agent's channels."""
        raise NotImplementedError

    def on_channel_gone(self, end: "ChannelEnd") -> None:
        """The peer tore the channel down; all slots of ``end`` have
        already been force-closed.  Default: nothing."""

    def on_slot_failed(self, slot: Slot, reason: str) -> None:
        """Robust mode: ``slot`` exhausted its retransmission budget and
        fell back to ``closed`` without media (``reason`` is the signal
        kind that went unanswered, ``"open"`` or ``"close"``).  Default:
        nothing — boxes route this to the goal controlling the slot."""

    # -- plumbing ---------------------------------------------------------
    def _adopt_end(self, end: "ChannelEnd") -> None:
        self.channel_ends.append(end)

    def _drop_end(self, end: "ChannelEnd") -> None:
        if end in self.channel_ends:
            self.channel_ends.remove(end)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<%s %s>" % (type(self).__name__, self.name)


class ChannelEnd:
    """One agent's end of a signaling channel: a set of slots plus the
    meta-signal capability."""

    def __init__(self, channel: "SignalingChannel", side: int,
                 owner: SignalingAgent, strict: bool,
                 retransmit: Optional[RetransmitPolicy] = None):
        self.channel = channel
        self.side = side
        self.owner = owner
        self.alive = True
        #: Cached hot-path collaborators (the property chain
        #: ``channel.link.ends[side]``, ``owner.node``, and
        #: ``owner.loop`` cost real time at one lookup per signal).
        self._wire = channel.link.ends[side]
        self._node = owner.node
        self._loop = owner.loop
        self.slots: Dict[str, Slot] = {
            tid: Slot(self, tid, strict=strict, retransmit=retransmit)
            for tid in channel.tunnel_ids}
        #: The per-message kernels the wire and inbox dispatch through.
        #: Under the compiled backend these are C callables (created in
        #: this order: ``Receive`` caches ``_process_fn``); otherwise
        #: the bound methods.  Either backend may process thunks queued
        #: by the other — both callables obey the same contract.
        if _CORE is None:
            self._process_fn = self._process
            self._receive_fn = self._receive
        else:
            self._process_fn = _CORE.Process(self)
            self._receive_fn = _CORE.Receive(self)

    # -- identity ---------------------------------------------------------
    @property
    def name(self) -> str:
        return "%s@%s" % (self.owner.name, self.channel.name)

    @property
    def is_initiator(self) -> bool:
        return self.side == 0

    @property
    def peer(self) -> "ChannelEnd":
        return self.channel.ends[1 - self.side]

    @property
    def tenant(self) -> str:
        """The admission-control tenant this end's traffic is billed to:
        the name of the agent that initiated the signaling channel.
        Per-tenant caps at a shared box thereby bucket load by upstream
        originator, whichever side of this particular channel it sits
        on."""
        return self.channel.ends[0].owner.name

    def slot(self, tunnel_id: str = DEFAULT_TUNNEL) -> Slot:
        try:
            return self.slots[tunnel_id]
        except KeyError:
            raise ConfigurationError(
                "channel %s has no tunnel %r (tunnels: %s)"
                % (self.channel.name, tunnel_id,
                   ", ".join(self.channel.tunnel_ids)))

    def peer_slot(self, tunnel_id: str = DEFAULT_TUNNEL) -> Slot:
        """The slot at the other end of the same tunnel."""
        return self.peer.slot(tunnel_id)

    # -- sending ----------------------------------------------------------
    def send_tunnel(self, tunnel_id: str, signal: TunnelSignal) -> None:
        if not self.alive:
            return
        self._wire.send(TunnelMessage(tunnel_id, signal))

    def send_meta(self, signal: MetaSignal) -> None:
        if not self.alive:
            return
        self._wire.send(MetaMessage(signal))

    def tear_down(self) -> None:
        """Destroy the whole signaling channel from this side.

        This side's slots die now; the peer's die when the ``TearDown``
        meta-signal reaches it.
        """
        if not self.alive:
            return
        tr = self.owner.loop.trace
        if tr is not None:
            tr.emit(ChannelEvent(
                ts=self.owner.loop.now, channel=self.channel.name,
                action="teardown", initiator=self.owner.name))
        self.send_meta(TearDown())
        self._shutdown(notify=False)

    def _shutdown(self, notify: bool) -> None:
        if not self.alive:
            return
        self.alive = False
        for slot in self.slots.values():
            slot.force_close()
        self.owner._drop_end(self)
        if not self.peer.alive:
            self.channel.link.tear_down()
        if notify:
            self.owner.on_channel_gone(self)

    # -- receiving ---------------------------------------------------------
    @property
    def _link_end(self):
        return self._wire

    def _receive(self, message) -> None:
        # Runs inline at link-delivery time; queue as one stimulus so
        # the owner pays its processing cost c before reacting.  The
        # body of Node.enqueue is inlined — every signal in the network
        # funnels through this method, and the call frame plus varargs
        # packing were measurable at load.  Keep in sync with
        # repro.network.node.Node.enqueue.
        node = self._node
        if node.offline:
            node.dropped_while_offline += 1
            return
        node._inbox.append((self._process_fn, (message,)))
        if not node._busy:
            node._busy = True
            loop = node.loop
            when = loop._now + node.cost
            event = node._stim_event
            if event is not None and event._loop is None \
                    and not event.cancelled:
                event.time = when
                event.seq = next(loop._seq)
                event._loop = loop
            else:
                event = node._stim_event = Event(
                    when, 0, next(loop._seq), node._finish_cb, (), loop)
            if when == loop._now:
                loop._ready.append(event)
            else:
                heappush(loop._heap, event)
            loop._live += 1

    def _process(self, message) -> None:
        if not self.alive:
            return
        # Exact-type dispatch: the wire carries only the two final
        # envelope classes, so ``type() is`` is both faster than
        # isinstance and just as correct.
        if type(message) is TunnelMessage:
            signal = message.signal
            if _ARENA_POISON and signal is POISONED_SIGNAL:
                raise RuntimeError(
                    "arena poison: use-after-release — envelope %r "
                    "was delivered again after _process released it "
                    "to the pool" % (message,))
            try:
                slot = self.slots[message.tunnel_id]
            except KeyError:
                slot = self.slot(message.tunnel_id)
            owner = self.owner
            tr = self._loop.trace
            if tr is None:
                # Untraced load runs skip the pre-state capture and the
                # event construction entirely.
                if slot.receive(signal):
                    owner.on_tunnel_signal(slot, signal)
                if message.pooled:
                    # Envelope reset contract: a pooled envelope has had
                    # exactly its one delivery (pooling is only enabled
                    # on hook-free links); drop the signal reference
                    # (or poison it, under REPRO_ARENA_POISON) and
                    # release it for the next send.
                    message.signal = _RELEASED_SIGNAL  # type: ignore[assignment]
                    pool = self._loop._env_pool
                    if len(pool) < _ENV_POOL_MAX:
                        pool.append(message)
                return
            state_before = slot.state
            accepted = slot.receive(signal)
            tr.emit(SignalReceived(
                ts=self._loop.now, channel=self.channel.name,
                agent=owner.name, tunnel=message.tunnel_id,
                kind=signal.kind, label=signal_label(message),
                state_before=state_before, state_after=slot.state,
                accepted=accepted))
            if accepted:
                owner.on_tunnel_signal(slot, signal)
            if message.pooled:
                message.signal = _RELEASED_SIGNAL  # type: ignore[assignment]
                pool = self._loop._env_pool
                if len(pool) < _ENV_POOL_MAX:
                    pool.append(message)
        elif type(message) is MetaMessage:
            tr = self._loop.trace
            if isinstance(message.signal, TearDown):
                if tr is not None:
                    tr.emit(ChannelEvent(
                        ts=self.owner.loop.now, channel=self.channel.name,
                        action="gone", responder=self.owner.name))
                self._shutdown(notify=True)
            else:
                self.owner.on_meta(self, message.signal)
        else:  # pragma: no cover - wire carries only the two envelopes
            raise ConfigurationError("unknown message %r" % (message,))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<ChannelEnd %s side=%d%s>" % (
            self.name, self.side, "" if self.alive else " dead")


class SignalingChannel:
    """A two-way, FIFO, reliable signaling channel between two agents.

    ``ends[0]`` belongs to the initiator (the side that set the channel
    up), which matters for open/open race resolution.  On creation a
    :class:`ChannelUp` meta-signal travels to the callee side so its
    program can react to the incoming channel.
    """

    def __init__(self, loop: EventLoop, initiator: SignalingAgent,
                 responder: SignalingAgent,
                 tunnel_ids: Iterable[str] = (DEFAULT_TUNNEL,),
                 latency: Optional[LatencyModel] = None,
                 name: Optional[str] = None,
                 target: str = "",
                 strict: bool = True,
                 announce: bool = True,
                 retransmit: Optional[RetransmitPolicy] = None):
        self.loop = loop
        self.name = name or loop.autoname("ch")
        #: Robust-mode policy handed to every slot (None = reliable mode).
        self.retransmit = retransmit
        self.tunnel_ids: Tuple[str, ...] = tuple(tunnel_ids)
        if not self.tunnel_ids:
            raise ConfigurationError("a channel needs at least one tunnel")
        if len(set(self.tunnel_ids)) != len(self.tunnel_ids):
            raise ConfigurationError("duplicate tunnel ids: %r"
                                     % (self.tunnel_ids,))
        if initiator is responder:
            raise ConfigurationError(
                "a signaling channel cannot loop back to %s" % initiator.name)
        self.link = Link(loop, latency=latency, name=self.name)
        self.target = target
        self.ends = (ChannelEnd(self, 0, initiator, strict, retransmit),
                     ChannelEnd(self, 1, responder, strict, retransmit))
        for end in self.ends:
            end._link_end.set_receiver(end._receive_fn)
            end.owner._adopt_end(end)
        tr = loop.trace
        if tr is not None:
            # Tap the link for signal.send events (the tap is outermost
            # in the transmit chain, so it sees traffic before any fault
            # policy installed later on this link).
            tr.attach_channel(self)
            tr.emit(ChannelEvent(
                ts=loop.now, channel=self.name, action="up",
                initiator=initiator.name, responder=responder.name))
        if announce:
            self.ends[0].send_meta(ChannelUp(target=target))

    # -- convenience -------------------------------------------------------
    @property
    def initiator_end(self) -> ChannelEnd:
        return self.ends[0]

    @property
    def responder_end(self) -> ChannelEnd:
        return self.ends[1]

    @property
    def active(self) -> bool:
        """True while at least one side still holds the channel."""
        return self.ends[0].alive or self.ends[1].alive

    def end_for(self, owner: SignalingAgent) -> ChannelEnd:
        """The end owned by ``owner``."""
        for end in self.ends:
            if end.owner is owner:
                return end
        raise ConfigurationError(
            "%s does not own an end of %s" % (owner.name, self.name))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.active else "down"
        return "<SignalingChannel %s %s (%s -- %s)>" % (
            self.name, state, self.ends[0].owner.name,
            self.ends[1].owner.name)
