"""The slot: a per-tunnel protocol endpoint (Figs. 5 and 9).

"Each signaling channel is partitioned statically into tunnels ...  The
endpoint of a tunnel at a box is called a slot ...  each slot is a
protocol endpoint" (Sec. III-A).

A :class:`Slot` implements the finite-state machine of Fig. 9 with states
``closed``, ``opening``, ``opened``, ``flowing``, and ``closing``.  It
validates every send against the protocol, updates state for every
receive, resolves open/open races (the channel-initiator side wins,
Sec. VI-B), automatically acknowledges ``close`` with ``closeack``, and
silently drains signals that are stale because a close is in progress.

Following Sec. VII, the slot "maintains the complete
implementation-level state of the slot, consisting of protocol state,
medium, and descriptor", where "the descriptor of a slot ... is the most
recent descriptor received in an open, oack, or describe signal."

Robust mode (lossy networks)
----------------------------
When constructed with a :class:`RetransmitPolicy`, the slot also
survives signal loss and duplication.  Unacknowledged ``open`` and
``close`` are retransmitted on a timer with exponential backoff and a
retry budget; a ``describe`` whose answering ``select`` never arrives is
re-sent on a staleness timer (which transitively recovers lost selects,
because the peer re-answers the duplicate describe).  Duplicates are
absorbed exactly as the paper's idempotence argument predicts: a
re-received ``open`` while flowing re-elicits the ``oack`` (recovering a
lost one), a ``close`` at a closed slot re-elicits the ``closeack``, and
everything else that is a pure repeat is counted and dropped.  When the
retry budget is exhausted the slot degrades instead of hanging: it
resets to ``closed`` (the paper's ``noMedia`` fallback), marks itself
``failed``, and reports the failure to the owning agent via
``on_slot_failed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..network.backend import CORE as _CORE
from ..obs.events import Retransmit, SlotDrop, SlotFailed, SlotTransition
from .codecs import Medium
from .descriptor import Descriptor, Selector
from .errors import ProtocolError, ProtocolStateError
from .signals import (Busy, Close, CloseAck, Describe, Oack, Open, Select,
                      TunnelMessage, TunnelSignal)

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.tracer import Tracer
    from .channel import ChannelEnd

__all__ = [
    "Slot", "RetransmitPolicy",
    "CLOSED", "OPENING", "OPENED", "FLOWING", "CLOSING",
    "LIVE_STATES", "DEAD_STATES",
]

CLOSED = "closed"
OPENING = "opening"
OPENED = "opened"
FLOWING = "flowing"
CLOSING = "closing"

#: Fig. 12: "The live states are opening, opened and flowing.  The dead
#: states are closed and closing."
LIVE_STATES = frozenset((OPENING, OPENED, FLOWING))
DEAD_STATES = frozenset((CLOSED, CLOSING))

#: ``close``/``closeack`` carry no payload and are frozen, so every slot
#: shares these two instances instead of allocating one per teardown.
_CLOSE = Close()
_CLOSEACK = CloseAck()


@dataclass(frozen=True)
class RetransmitPolicy:
    """Timing and budget for robust-mode slots.

    ``initial`` is the delay before the first retransmission of an
    unacknowledged ``open``/``close``; each further retransmission waits
    ``backoff`` times longer.  After ``max_retries`` retransmissions the
    slot gives up and reports failure.  ``stale_after`` is the delay
    before re-describing when a sent descriptor has no answering
    selector (0 disables staleness recovery).
    """

    initial: float = 0.25
    backoff: float = 2.0
    max_retries: int = 6
    stale_after: float = 0.5


class Slot:
    """One protocol endpoint of one tunnel."""

    # Load runs create a slot per tunnel per call; __slots__ removes the
    # per-instance dict and makes the state fields the FSM touches on
    # every receive direct offsets.
    __slots__ = (
        "_end", "_owner", "tunnel_id", "strict", "retransmit",
        "state", "medium", "remote_descriptor", "local_descriptor",
        "selector_received", "selector_sent", "failed",
        "race_drops", "stale_drops", "invalid_drops", "duplicate_drops",
        "retransmits", "failures", "signals_sent", "signals_received",
        "_retx_timer", "_retx_signal", "_retx_kind", "_retx_attempts",
        "_retx_interval", "_stale_timer", "_stale_attempts", "_loop",
        "_tx",
        # Admission control: busy refusals received / retry machinery.
        # Deliberately separate from the ``_retx_*`` fields — the
        # compiled backend's receive kernel replicates the retx
        # acknowledgement check against ``_retx_kind`` and must keep
        # seeing only "open"/"close" there.
        "busy_refusals", "_busy_timer", "_busy_attempts",
        "_busy_medium", "_busy_descriptor",
    )

    def __init__(self, channel_end: "ChannelEnd", tunnel_id: str,
                 strict: bool = True,
                 retransmit: Optional[RetransmitPolicy] = None):
        self._end = channel_end
        #: The owning agent, pinned at construction (an end never
        #: changes owners) — the goal_gen bump in ``_set_state`` runs
        #: on every transition and must not re-chase ``_end.owner``.
        #: The compiled kernels pin the same reference at their init.
        self._owner = channel_end.owner
        self._loop = channel_end.owner.loop
        self.tunnel_id = tunnel_id
        #: Strict slots raise :class:`ProtocolError` on illegal receives;
        #: lenient slots count them and pass them up unprocessed (used by
        #: the deliberately erroneous Fig. 2 demonstration, whose servers
        #: forward signals they do not understand).
        self.strict = strict
        #: Robust mode: retransmission timers plus duplicate absorption.
        #: ``None`` (the default) keeps the exact reliable-link behavior.
        self.retransmit = retransmit

        self.state = CLOSED
        self.medium: Optional[Medium] = None
        #: Most recent descriptor *received* (open/oack/describe).
        self.remote_descriptor: Optional[Descriptor] = None
        #: Most recent descriptor *sent* (open/oack/describe).
        self.local_descriptor: Optional[Descriptor] = None
        #: Most recent selector received / sent while flowing.
        self.selector_received: Optional[Selector] = None
        self.selector_sent: Optional[Selector] = None

        #: Robust mode only: the retry budget ran out and the slot fell
        #: back to ``closed`` without media.  Cleared by the next open.
        self.failed = False

        # observability counters
        self.race_drops = 0      # opens lost to the initiator-wins rule
        self.stale_drops = 0     # signals drained during closing
        self.invalid_drops = 0   # illegal receives dropped in lenient mode
        self.duplicate_drops = 0  # repeats absorbed in robust mode
        self.retransmits = 0     # signals re-sent by the timers
        self.failures = 0        # retry budgets exhausted
        self.signals_sent = 0
        self.signals_received = 0

        # retransmission machinery (robust mode)
        self._retx_timer = None
        self._retx_signal: Optional[TunnelSignal] = None
        self._retx_kind: Optional[str] = None
        self._retx_attempts = 0
        self._retx_interval = 0.0
        self._stale_timer = None
        self._stale_attempts = 0

        # admission-refusal machinery (see ``_handle_busy``)
        self.busy_refusals = 0   # Busy signals received
        self._busy_timer = None
        self._busy_attempts = 0
        self._busy_medium: Optional[Medium] = None
        self._busy_descriptor: Optional[Descriptor] = None

        #: The per-signal send kernel: under the compiled backend a C
        #: callable that fuses ``_transmit`` with the link's transmit,
        #: otherwise the bound reference method.  Every send site calls
        #: ``self._tx``; ``_transmit`` below stays the specification.
        self._tx = (self._transmit if _CORE is None
                    else _CORE.SlotTransmit(self))

    # ------------------------------------------------------------------
    # identity and predicates
    # ------------------------------------------------------------------
    @property
    def channel_end(self) -> "ChannelEnd":
        return self._end

    @property
    def name(self) -> str:
        return "%s/%s" % (self._end.name, self.tunnel_id)

    @property
    def is_initiator(self) -> bool:
        """True when this slot's channel end initiated channel setup;
        "the winner of the race is always the end of the tunnel that
        initiated setup of the signaling channel" (Sec. VI-B)."""
        return self._end.is_initiator

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    @property
    def _trace(self) -> Optional["Tracer"]:
        return self._loop.trace

    def _set_state(self, new: str, cause: str) -> None:
        """Every protocol-state change funnels through here so a tracer
        sees the full FSM history."""
        old = self.state
        self.state = new
        # Guard-visible state moved (``failed`` flips always travel with
        # a state change, so this one bump also covers them): invalidate
        # the owner's goal-poll memo.  Unconditional — a same-state
        # reset (e.g. force-closing a closed slot) conservatively
        # invalidates too.
        self._owner.goal_gen += 1
        tr = self._loop.trace
        if tr is not None and new != old:
            tr.emit(SlotTransition(
                ts=self._end.owner.loop.now, slot=self.name,
                channel=self._end.channel.name, tunnel=self.tunnel_id,
                end=self._end.name, side=self._end.side,
                old=old, new=new, cause=cause,
                medium=str(self.medium) if self.medium is not None else ""))

    def _emit_drop(self, kind: str, signal: TunnelSignal) -> None:
        tr = self._loop.trace
        if tr is not None:
            tr.emit(SlotDrop(
                ts=self._end.owner.loop.now, slot=self.name,
                channel=self._end.channel.name, tunnel=self.tunnel_id,
                kind=kind, signal=signal.kind))

    @property
    def is_closed(self) -> bool:
        return self.state == CLOSED

    @property
    def is_opening(self) -> bool:
        return self.state == OPENING

    @property
    def is_opened(self) -> bool:
        return self.state == OPENED

    @property
    def is_flowing(self) -> bool:
        return self.state == FLOWING

    @property
    def is_closing(self) -> bool:
        return self.state == CLOSING

    @property
    def is_live(self) -> bool:
        return self.state in LIVE_STATES

    @property
    def is_dead(self) -> bool:
        return self.state in DEAD_STATES

    @property
    def is_described(self) -> bool:
        """Sec. VII: "A slot is described if the object has received a
        current descriptor for it.  Slots in the opened and flowing
        states are described"."""
        return self.remote_descriptor is not None

    # ------------------------------------------------------------------
    # sending (validated per Fig. 9)
    # ------------------------------------------------------------------
    def send_open(self, medium: Medium, descriptor: Descriptor) -> None:
        """Send ``open``; legal only from ``closed``."""
        if self.state != CLOSED:
            raise ProtocolStateError(self, "send open", self.state)
        self.medium = medium
        self.local_descriptor = descriptor
        self.failed = False
        # A fresh open starts a fresh busy-retry budget (``_busy_retry``
        # restores the running count after its own re-open).
        self._cancel_busy()
        self._busy_attempts = 0
        self._set_state(OPENING, "send_open")
        signal = Open(medium, descriptor)
        self._tx(signal)
        self._arm_retx("open", signal)

    def send_oack(self, descriptor: Descriptor) -> None:
        """Send ``oack``; legal only from ``opened``."""
        if self.state != OPENED:
            raise ProtocolStateError(self, "send oack", self.state)
        self.local_descriptor = descriptor
        self._set_state(FLOWING, "send_oack")
        self._tx(Oack(descriptor))
        # A lost oack is recovered by the peer retransmitting its open
        # (we re-oack the duplicate); the staleness timer covers the
        # descriptor-answering select.
        self._arm_stale()

    def send_close(self) -> None:
        """Send ``close`` (also the protocol's reject); legal from any
        live state."""
        if self.state not in LIVE_STATES:
            raise ProtocolStateError(self, "send close", self.state)
        self._set_state(CLOSING, "send_close")
        self._cancel_stale()
        signal = _CLOSE
        self._tx(signal)
        self._arm_retx("close", signal)

    def send_describe(self, descriptor: Descriptor) -> None:
        """Send a fresh self-description; legal only while ``flowing``."""
        if self.state != FLOWING:
            raise ProtocolStateError(self, "send describe", self.state)
        self.local_descriptor = descriptor
        self._tx(Describe(descriptor))
        self._arm_stale()

    def send_select(self, selector: Selector) -> None:
        """Send a selector; legal only while ``flowing``, and only in
        answer to the most recent received descriptor."""
        if self.state != FLOWING:
            raise ProtocolStateError(self, "send select", self.state)
        if self.remote_descriptor is None:
            raise ProtocolError(
                "%s: select with no received descriptor" % self.name)
        selector.validate_against(self.remote_descriptor)
        self.selector_sent = selector
        self._tx(Select(selector))

    def send_busy(self, reason: str = "admission",
                  retry_after: float = 0.0) -> None:
        """Refuse a just-received ``open`` with a structured ``busy``
        (admission control shedding load); legal only from ``opened``.

        Unlike a ``close`` rejection there is no acknowledgement round:
        the slot resets to ``closed`` immediately.  If the ``busy`` is
        lost, the opener's retransmitted ``open`` re-arrives at the
        closed slot and is refused again — convergence by idempotence,
        exactly as for the six base signals.
        """
        if self.state != OPENED:
            raise ProtocolStateError(self, "send busy", self.state)
        self._tx(Busy(reason, retry_after))
        self._reset_to_closed("shed_busy")

    def _transmit(self, signal: TunnelSignal) -> None:
        self.signals_sent += 1
        # Inlined ChannelEnd.send_tunnel: one envelope per signal makes
        # the extra call frame measurable at load.
        end = self._end
        if end.alive:
            wire = end._wire
            if wire._link._hooks:
                # A hooked link (fault layer, tracer tap) may duplicate
                # the envelope or deliver it late; such envelopes are
                # never pooled, so a duplicate can never observe a
                # recycled one.
                wire.send(TunnelMessage(self.tunnel_id, signal))
                return
            pool = self._loop._env_pool
            if pool:
                message = pool.pop()
                message.tunnel_id = self.tunnel_id
                message.signal = signal
            else:
                message = TunnelMessage(self.tunnel_id, signal, True)
            wire.send(message)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def receive(self, signal: TunnelSignal) -> bool:
        """Apply one received signal to the FSM.

        Returns ``True`` when the signal should be passed up to the goal
        object controlling this slot, ``False`` when the slot consumed it
        (race-losing opens at the winner, stale signals while closing,
        pure-bookkeeping closeacks are still passed up so goals can react
        to reopening opportunities).
        """
        self.signals_received += 1
        try:
            handler = _DISPATCH[self.state]
        except KeyError:  # pragma: no cover - states are exhaustive
            raise AssertionError("slot in unknown state %r" % self.state)
        result = handler(self, signal)
        # Robust mode: an unacknowledged open is acknowledged by whatever
        # receive moved us out of ``opening`` (oack, rejection, race
        # loss); a close is acknowledged only by reaching ``closed``.
        retx_kind = self._retx_kind
        if retx_kind is not None:
            if retx_kind == "open" and self.state != OPENING:
                self._cancel_retx()
            elif retx_kind == "close" and self.state == CLOSED:
                self._cancel_retx()
        return result

    # -- per-state receive handlers --
    def _recv_closed(self, signal: TunnelSignal) -> bool:
        # The handlers dispatch on exact type: the six signal classes
        # are final (nothing subclasses them), so ``type() is`` replaces
        # isinstance on the busiest path in the protocol layer.
        cls = type(signal)
        if cls is Open:
            self.medium = signal.medium
            self.remote_descriptor = signal.descriptor
            self._set_state(OPENED, "recv_open")
            return True
        if self.retransmit is not None:
            if cls is Close:
                # A retransmitted close whose closeack was lost: our
                # earlier closeack did not arrive, so answer again.
                self.duplicate_drops += 1
                self._emit_drop("duplicate", signal)
                self._tx(_CLOSEACK)
                return False
            if cls is CloseAck or cls is Oack or cls is Describe \
                    or cls is Select or cls is Busy:
                # Stale repeats from the episode just closed.  (A
                # ``busy`` here is a duplicate refusal raced by our own
                # reset — the retry timer, if any, is already running.)
                self.duplicate_drops += 1
                self._emit_drop("duplicate", signal)
                return False
        return self._illegal(signal)

    def _recv_opening(self, signal: TunnelSignal) -> bool:
        cls = type(signal)
        if cls is Busy:
            # The peer's admission control refused our open.
            return self._handle_busy(signal)
        if cls is Open:
            # open/open race in this tunnel (Sec. VI-B).
            if self.is_initiator:
                # We win: "the losing open signal is simply ignored."
                self.race_drops += 1
                self._emit_drop("race", signal)
                return False
            # We lose: back off and become the acceptor; our own open
            # will be ignored at the winner.
            self.medium = signal.medium
            self.remote_descriptor = signal.descriptor
            self._set_state(OPENED, "recv_open_race_loss")
            return True
        if cls is Oack:
            self.remote_descriptor = signal.descriptor
            self._set_state(FLOWING, "recv_oack")
            return True
        if cls is Close:
            # The peer rejected (or closed before answering).
            self._acknowledge_close()
            return True
        if self.retransmit is not None and cls is CloseAck:
            # Stale acknowledgement of a close from a previous episode.
            self.duplicate_drops += 1
            self._emit_drop("duplicate", signal)
            return False
        return self._illegal(signal)

    def _recv_opened(self, signal: TunnelSignal) -> bool:
        cls = type(signal)
        if cls is Close:
            # The opener gave up before we answered.
            self._acknowledge_close()
            return True
        if self.retransmit is not None and cls is Open \
                and self.remote_descriptor is not None \
                and signal.descriptor.id == self.remote_descriptor.id:
            # Retransmitted open; we have it and will answer in our own
            # time.
            self.duplicate_drops += 1
            self._emit_drop("duplicate", signal)
            return False
        return self._illegal(signal)

    def _recv_flowing(self, signal: TunnelSignal) -> bool:
        cls = type(signal)
        if cls is Describe:
            self.remote_descriptor = signal.descriptor
            return True
        if cls is Select:
            self.selector_received = signal.selector
            if self._stale_timer is not None \
                    and self.local_descriptor is not None \
                    and (signal.selector.answers is self.local_descriptor.id
                         or signal.selector.answers
                         == self.local_descriptor.id):
                # Our descriptor is answered; staleness recovery done.
                self._cancel_stale()
            return True
        if cls is Close:
            self._acknowledge_close()
            return True
        if self.retransmit is not None:
            if cls is Open \
                    and self.remote_descriptor is not None \
                    and signal.descriptor.id == self.remote_descriptor.id:
                # The peer retransmitted its open: our oack was lost (or
                # is still in flight).  Re-acknowledge; idempotence makes
                # the repeat harmless at the peer.
                self.duplicate_drops += 1
                self._emit_drop("duplicate", signal)
                if self.local_descriptor is not None:
                    self._tx(Oack(self.local_descriptor))
                return False
            if cls is Oack \
                    and self.remote_descriptor is not None \
                    and signal.descriptor.id == self.remote_descriptor.id:
                # Duplicate of the oack that made us flowing.
                self.duplicate_drops += 1
                self._emit_drop("duplicate", signal)
                return False
            if cls is CloseAck or cls is Busy:
                # A ``busy`` while flowing is a residual duplicate of a
                # refusal from a previous episode (our retried open got
                # through; a dup of the earlier refusal straggled in).
                self.duplicate_drops += 1
                self._emit_drop("duplicate", signal)
                return False
        return self._illegal(signal)

    def _recv_closing(self, signal: TunnelSignal) -> bool:
        cls = type(signal)
        if cls is Close:
            # Crossing closes: acknowledge theirs, keep waiting for the
            # acknowledgement of ours.
            self._tx(_CLOSEACK)
            return True
        if cls is CloseAck:
            self._reset_to_closed("recv_closeack")
            return True
        if cls is Open or cls is Oack or cls is Describe or cls is Select \
                or cls is Busy:
            # The peer sent these before it saw our close; drain them.
            # (An ``open`` here is the crossing-open case: the peer's
            # open and our close passed each other, and our close
            # already acts as its rejection.)
            self.stale_drops += 1
            self._emit_drop("stale", signal)
            return False
        return self._illegal(signal)

    # -- shared pieces --
    def _acknowledge_close(self) -> None:
        self._tx(_CLOSEACK)
        self._reset_to_closed("recv_close")

    def _reset_to_closed(self, cause: str = "reset") -> None:
        self._set_state(CLOSED, cause)
        self.medium = None
        self.remote_descriptor = None
        self.local_descriptor = None
        self.selector_received = None
        self.selector_sent = None
        self._cancel_retx()
        self._cancel_stale()
        self._cancel_busy()

    def force_close(self) -> None:
        """Destroy the slot's state without signaling; used when the whole
        signaling channel is torn down (teardown "destroys all its
        tunnels and slots", Sec. IV-B)."""
        self._reset_to_closed("teardown")

    def _illegal(self, signal: TunnelSignal) -> bool:
        if self.retransmit is not None:
            # Robust mode: under loss, duplication, and reordering a
            # residual out-of-place signal is expected weather, not a
            # protocol bug.  Count it and drop it without involving the
            # owner (unlike lenient mode, which forwards blindly).
            self.invalid_drops += 1
            self._emit_drop("invalid", signal)
            return False
        if self.strict:
            raise ProtocolError(
                "%s: illegal %s in state %s"
                % (self.name, signal.kind, self.state))
        # Lenient mode (used to model uncoordinated legacy servers, the
        # Fig. 2 demonstration): count the violation but still show the
        # signal to the owner, which may forward it blindly.  The slot's
        # own state is left untouched.
        self.invalid_drops += 1
        self._emit_drop("invalid", signal)
        return True

    # ------------------------------------------------------------------
    # retransmission machinery (robust mode)
    # ------------------------------------------------------------------
    def _arm_retx(self, kind: str, signal: TunnelSignal) -> None:
        policy = self.retransmit
        if policy is None:
            return
        self._cancel_retx()
        self._retx_kind = kind
        self._retx_signal = signal
        self._retx_attempts = 0
        self._retx_interval = policy.initial
        self._retx_timer = self._end.owner.node.set_timer(
            self._retx_interval, self._retx_fire)

    def _cancel_retx(self) -> None:
        if self._retx_timer is not None:
            self._retx_timer.cancel()
            self._retx_timer = None
        self._retx_signal = None
        self._retx_kind = None

    def _retx_fire(self) -> None:
        self._retx_timer = None
        policy = self.retransmit
        if policy is None or self._retx_signal is None \
                or not self._end.alive:
            return
        # Still unacknowledged?  (Defensive: the receive path cancels the
        # timer on acknowledgement, but a stimulus already queued when
        # the ack arrived may still fire.)
        if self._retx_kind == "open" and self.state != OPENING:
            self._cancel_retx()
            return
        if self._retx_kind == "close" and self.state != CLOSING:
            self._cancel_retx()
            return
        if self._retx_attempts >= policy.max_retries:
            self._give_up()
            return
        self._retx_attempts += 1
        self.retransmits += 1
        tr = self._trace
        if tr is not None:
            tr.emit(Retransmit(
                ts=self._end.owner.loop.now, slot=self.name,
                channel=self._end.channel.name, tunnel=self.tunnel_id,
                kind=self._retx_kind or "retry",
                attempt=self._retx_attempts))
        self._tx(self._retx_signal)
        self._retx_interval *= policy.backoff
        self._retx_timer = self._end.owner.node.set_timer(
            self._retx_interval, self._retx_fire)

    def _give_up(self) -> None:
        """Retry budget exhausted: degrade to ``closed`` without media
        (the ``noMedia`` fallback) and report the failure upward."""
        kind = self._retx_kind or "retry"
        if kind == "open" and self.state == OPENING:
            # Best-effort abort so a peer that did hear us stops waiting;
            # we do not wait for the closeack.
            self._tx(_CLOSE)
        self._reset_to_closed("gave_up")
        self.failed = True
        self.failures += 1
        tr = self._trace
        if tr is not None:
            tr.emit(SlotFailed(
                ts=self._end.owner.loop.now, slot=self.name,
                channel=self._end.channel.name, tunnel=self.tunnel_id,
                reason=kind))
        self._end.owner.on_slot_failed(self, kind)

    # ------------------------------------------------------------------
    # admission-refusal handling (busy retry-with-backoff)
    # ------------------------------------------------------------------
    def _handle_busy(self, signal: Busy) -> bool:
        """React to an admission refusal of our ``open`` (state
        ``opening``).

        The refusal is operational, not semantic, so a robust slot
        retries the open on the same exponential-backoff schedule as a
        retransmission — bounded by the policy's ``max_retries`` budget,
        which spans the whole retry *sequence* (``send_open`` resets it
        only for user-initiated opens).  When the budget runs out, or in
        reliable mode (no policy), the slot degrades exactly like an
        exhausted retransmission: reset to ``closed``, ``failed`` set,
        and ``on_slot_failed`` reported upward — the paper's ``noMedia``
        fallback.
        """
        self.busy_refusals += 1
        medium = self.medium
        descriptor = self.local_descriptor
        policy = self.retransmit
        # Resetting cancels the open-retransmit timer too (the refusal
        # *is* the acknowledgement) and clears any previous busy state.
        self._reset_to_closed("busy")
        if policy is None or self._busy_attempts >= policy.max_retries:
            self._busy_attempts = 0
            self.failed = True
            self.failures += 1
            tr = self._trace
            if tr is not None:
                tr.emit(SlotFailed(
                    ts=self._end.owner.loop.now, slot=self.name,
                    channel=self._end.channel.name, tunnel=self.tunnel_id,
                    reason="busy"))
            self._end.owner.on_slot_failed(self, "busy")
            return False
        self._busy_attempts += 1
        self._busy_medium = medium
        self._busy_descriptor = descriptor
        delay = policy.initial * (policy.backoff
                                  ** (self._busy_attempts - 1))
        if signal.retry_after > delay:
            delay = signal.retry_after
        self._busy_timer = self._end.owner.node.set_timer(
            delay, self._busy_retry)
        return False

    def _busy_retry(self) -> None:
        self._busy_timer = None
        medium = self._busy_medium
        descriptor = self._busy_descriptor
        self._busy_medium = None
        self._busy_descriptor = None
        if not self._end.alive or self.state != CLOSED \
                or medium is None or descriptor is None:
            # The goal layer moved on (reopened, channel died) while we
            # were backing off; it owns the slot now.
            return
        attempts = self._busy_attempts
        self.retransmits += 1
        tr = self._trace
        if tr is not None:
            tr.emit(Retransmit(
                ts=self._end.owner.loop.now, slot=self.name,
                channel=self._end.channel.name, tunnel=self.tunnel_id,
                kind="busy", attempt=attempts))
        self.send_open(medium, descriptor)
        # ``send_open`` zeroed the count (right for a *user* open);
        # restore it so the overall busy budget stays bounded.
        self._busy_attempts = attempts

    def _cancel_busy(self) -> None:
        if self._busy_timer is not None:
            self._busy_timer.cancel()
            self._busy_timer = None
        self._busy_medium = None
        self._busy_descriptor = None

    def _arm_stale(self) -> None:
        policy = self.retransmit
        if policy is None or policy.stale_after <= 0:
            return
        self._cancel_stale()
        self._stale_attempts = 0
        self._stale_timer = self._end.owner.node.set_timer(
            policy.stale_after, self._stale_fire)

    def _cancel_stale(self) -> None:
        if self._stale_timer is not None:
            self._stale_timer.cancel()
            self._stale_timer = None

    def _stale_fire(self) -> None:
        self._stale_timer = None
        policy = self.retransmit
        if policy is None or not self._end.alive:
            return
        if self.state != FLOWING or self.local_descriptor is None:
            return
        answered = (self.selector_received is not None and
                    self.selector_received.answers
                    == self.local_descriptor.id)
        if answered:
            return
        if self._stale_attempts >= policy.max_retries:
            # Media may stay one-way mute; unlike a dead handshake this
            # is observable by the application, so no forced failure.
            return
        self._stale_attempts += 1
        self.retransmits += 1
        tr = self._trace
        if tr is not None:
            tr.emit(Retransmit(
                ts=self._end.owner.loop.now, slot=self.name,
                channel=self._end.channel.name, tunnel=self.tunnel_id,
                kind="describe", attempt=self._stale_attempts))
        self._tx(Describe(self.local_descriptor))
        self._stale_timer = self._end.owner.node.set_timer(
            policy.stale_after * (policy.backoff ** self._stale_attempts),
            self._stale_fire)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Slot %s %s medium=%s>" % (self.name, self.state, self.medium)


#: Fig. 9 FSM dispatch: protocol state -> unbound receive handler.  One
#: dict probe per receive, replacing the string-formatting getattr
#: lookup that used to sit on the hottest signaling path.
_DISPATCH = {
    CLOSED: Slot._recv_closed,
    OPENING: Slot._recv_opening,
    OPENED: Slot._recv_opened,
    FLOWING: Slot._recv_flowing,
    CLOSING: Slot._recv_closing,
}
