"""The slot: a per-tunnel protocol endpoint (Figs. 5 and 9).

"Each signaling channel is partitioned statically into tunnels ...  The
endpoint of a tunnel at a box is called a slot ...  each slot is a
protocol endpoint" (Sec. III-A).

A :class:`Slot` implements the finite-state machine of Fig. 9 with states
``closed``, ``opening``, ``opened``, ``flowing``, and ``closing``.  It
validates every send against the protocol, updates state for every
receive, resolves open/open races (the channel-initiator side wins,
Sec. VI-B), automatically acknowledges ``close`` with ``closeack``, and
silently drains signals that are stale because a close is in progress.

Following Sec. VII, the slot "maintains the complete
implementation-level state of the slot, consisting of protocol state,
medium, and descriptor", where "the descriptor of a slot ... is the most
recent descriptor received in an open, oack, or describe signal."
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .codecs import Medium
from .descriptor import Descriptor, Selector
from .errors import ProtocolError, ProtocolStateError
from .signals import (Close, CloseAck, Describe, Oack, Open, Select,
                      TunnelSignal)

if TYPE_CHECKING:  # pragma: no cover
    from .channel import ChannelEnd

__all__ = [
    "Slot",
    "CLOSED", "OPENING", "OPENED", "FLOWING", "CLOSING",
    "LIVE_STATES", "DEAD_STATES",
]

CLOSED = "closed"
OPENING = "opening"
OPENED = "opened"
FLOWING = "flowing"
CLOSING = "closing"

#: Fig. 12: "The live states are opening, opened and flowing.  The dead
#: states are closed and closing."
LIVE_STATES = frozenset((OPENING, OPENED, FLOWING))
DEAD_STATES = frozenset((CLOSED, CLOSING))


class Slot:
    """One protocol endpoint of one tunnel."""

    def __init__(self, channel_end: "ChannelEnd", tunnel_id: str,
                 strict: bool = True):
        self._end = channel_end
        self.tunnel_id = tunnel_id
        #: Strict slots raise :class:`ProtocolError` on illegal receives;
        #: lenient slots count them and pass them up unprocessed (used by
        #: the deliberately erroneous Fig. 2 demonstration, whose servers
        #: forward signals they do not understand).
        self.strict = strict

        self.state = CLOSED
        self.medium: Optional[Medium] = None
        #: Most recent descriptor *received* (open/oack/describe).
        self.remote_descriptor: Optional[Descriptor] = None
        #: Most recent descriptor *sent* (open/oack/describe).
        self.local_descriptor: Optional[Descriptor] = None
        #: Most recent selector received / sent while flowing.
        self.selector_received: Optional[Selector] = None
        self.selector_sent: Optional[Selector] = None

        # observability counters
        self.race_drops = 0      # opens lost to the initiator-wins rule
        self.stale_drops = 0     # signals drained during closing
        self.invalid_drops = 0   # illegal receives dropped in lenient mode
        self.signals_sent = 0
        self.signals_received = 0

    # ------------------------------------------------------------------
    # identity and predicates
    # ------------------------------------------------------------------
    @property
    def channel_end(self) -> "ChannelEnd":
        return self._end

    @property
    def name(self) -> str:
        return "%s/%s" % (self._end.name, self.tunnel_id)

    @property
    def is_initiator(self) -> bool:
        """True when this slot's channel end initiated channel setup;
        "the winner of the race is always the end of the tunnel that
        initiated setup of the signaling channel" (Sec. VI-B)."""
        return self._end.is_initiator

    @property
    def is_closed(self) -> bool:
        return self.state == CLOSED

    @property
    def is_opening(self) -> bool:
        return self.state == OPENING

    @property
    def is_opened(self) -> bool:
        return self.state == OPENED

    @property
    def is_flowing(self) -> bool:
        return self.state == FLOWING

    @property
    def is_closing(self) -> bool:
        return self.state == CLOSING

    @property
    def is_live(self) -> bool:
        return self.state in LIVE_STATES

    @property
    def is_dead(self) -> bool:
        return self.state in DEAD_STATES

    @property
    def is_described(self) -> bool:
        """Sec. VII: "A slot is described if the object has received a
        current descriptor for it.  Slots in the opened and flowing
        states are described"."""
        return self.remote_descriptor is not None

    # ------------------------------------------------------------------
    # sending (validated per Fig. 9)
    # ------------------------------------------------------------------
    def send_open(self, medium: Medium, descriptor: Descriptor) -> None:
        """Send ``open``; legal only from ``closed``."""
        if self.state != CLOSED:
            raise ProtocolStateError(self, "send open", self.state)
        self.state = OPENING
        self.medium = medium
        self.local_descriptor = descriptor
        self._transmit(Open(medium, descriptor))

    def send_oack(self, descriptor: Descriptor) -> None:
        """Send ``oack``; legal only from ``opened``."""
        if self.state != OPENED:
            raise ProtocolStateError(self, "send oack", self.state)
        self.state = FLOWING
        self.local_descriptor = descriptor
        self._transmit(Oack(descriptor))

    def send_close(self) -> None:
        """Send ``close`` (also the protocol's reject); legal from any
        live state."""
        if self.state not in LIVE_STATES:
            raise ProtocolStateError(self, "send close", self.state)
        self.state = CLOSING
        self._transmit(Close())

    def send_describe(self, descriptor: Descriptor) -> None:
        """Send a fresh self-description; legal only while ``flowing``."""
        if self.state != FLOWING:
            raise ProtocolStateError(self, "send describe", self.state)
        self.local_descriptor = descriptor
        self._transmit(Describe(descriptor))

    def send_select(self, selector: Selector) -> None:
        """Send a selector; legal only while ``flowing``, and only in
        answer to the most recent received descriptor."""
        if self.state != FLOWING:
            raise ProtocolStateError(self, "send select", self.state)
        if self.remote_descriptor is None:
            raise ProtocolError(
                "%s: select with no received descriptor" % self.name)
        selector.validate_against(self.remote_descriptor)
        self.selector_sent = selector
        self._transmit(Select(selector))

    def _transmit(self, signal: TunnelSignal) -> None:
        self.signals_sent += 1
        self._end.send_tunnel(self.tunnel_id, signal)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def receive(self, signal: TunnelSignal) -> bool:
        """Apply one received signal to the FSM.

        Returns ``True`` when the signal should be passed up to the goal
        object controlling this slot, ``False`` when the slot consumed it
        (race-losing opens at the winner, stale signals while closing,
        pure-bookkeeping closeacks are still passed up so goals can react
        to reopening opportunities).
        """
        self.signals_received += 1
        handler = getattr(self, "_recv_%s" % self.state, None)
        if handler is None:  # pragma: no cover - states are exhaustive
            raise AssertionError("slot in unknown state %r" % self.state)
        return handler(signal)

    # -- per-state receive handlers --
    def _recv_closed(self, signal: TunnelSignal) -> bool:
        if isinstance(signal, Open):
            self.state = OPENED
            self.medium = signal.medium
            self.remote_descriptor = signal.descriptor
            return True
        return self._illegal(signal)

    def _recv_opening(self, signal: TunnelSignal) -> bool:
        if isinstance(signal, Open):
            # open/open race in this tunnel (Sec. VI-B).
            if self.is_initiator:
                # We win: "the losing open signal is simply ignored."
                self.race_drops += 1
                return False
            # We lose: back off and become the acceptor; our own open
            # will be ignored at the winner.
            self.state = OPENED
            self.medium = signal.medium
            self.remote_descriptor = signal.descriptor
            return True
        if isinstance(signal, Oack):
            self.state = FLOWING
            self.remote_descriptor = signal.descriptor
            return True
        if isinstance(signal, Close):
            # The peer rejected (or closed before answering).
            self._acknowledge_close()
            return True
        return self._illegal(signal)

    def _recv_opened(self, signal: TunnelSignal) -> bool:
        if isinstance(signal, Close):
            # The opener gave up before we answered.
            self._acknowledge_close()
            return True
        return self._illegal(signal)

    def _recv_flowing(self, signal: TunnelSignal) -> bool:
        if isinstance(signal, Describe):
            self.remote_descriptor = signal.descriptor
            return True
        if isinstance(signal, Select):
            self.selector_received = signal.selector
            return True
        if isinstance(signal, Close):
            self._acknowledge_close()
            return True
        return self._illegal(signal)

    def _recv_closing(self, signal: TunnelSignal) -> bool:
        if isinstance(signal, Close):
            # Crossing closes: acknowledge theirs, keep waiting for the
            # acknowledgement of ours.
            self._transmit(CloseAck())
            return True
        if isinstance(signal, CloseAck):
            self._reset_to_closed()
            return True
        if isinstance(signal, (Open, Oack, Describe, Select)):
            # The peer sent these before it saw our close; drain them.
            # (An ``open`` here is the crossing-open case: the peer's
            # open and our close passed each other, and our close
            # already acts as its rejection.)
            self.stale_drops += 1
            return False
        return self._illegal(signal)

    # -- shared pieces --
    def _acknowledge_close(self) -> None:
        self._transmit(CloseAck())
        self._reset_to_closed()

    def _reset_to_closed(self) -> None:
        self.state = CLOSED
        self.medium = None
        self.remote_descriptor = None
        self.local_descriptor = None
        self.selector_received = None
        self.selector_sent = None

    def force_close(self) -> None:
        """Destroy the slot's state without signaling; used when the whole
        signaling channel is torn down (teardown "destroys all its
        tunnels and slots", Sec. IV-B)."""
        self._reset_to_closed()

    def _illegal(self, signal: TunnelSignal) -> bool:
        if self.strict:
            raise ProtocolError(
                "%s: illegal %s in state %s"
                % (self.name, signal.kind, self.state))
        # Lenient mode (used to model uncoordinated legacy servers, the
        # Fig. 2 demonstration): count the violation but still show the
        # signal to the owner, which may forward it blindly.  The slot's
        # own state is left untouched.
        self.invalid_drops += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Slot %s %s medium=%s>" % (self.name, self.state, self.medium)
