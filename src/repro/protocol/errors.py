"""Exception hierarchy for the signaling protocol and primitives.

:class:`QuiescenceError` is defined by the event loop (the substrate
below this layer) but re-exported here because it is what protocol-level
callers actually catch: a run that will not settle almost always means a
signaling livelock, and its structured payload (pending event count plus
the next live event) names the timer or stimulus keeping it awake.
"""

from __future__ import annotations

from typing import Any

from ..network.eventloop import QuiescenceError

__all__ = [
    "MediaControlError",
    "ProtocolError",
    "ProtocolStateError",
    "PreconditionError",
    "ConfigurationError",
    "QuiescenceError",
]


class MediaControlError(Exception):
    """Base class for every error raised by this library."""


class ProtocolError(MediaControlError):
    """A signal arrived (or was about to be sent) that the protocol of
    Sec. VI does not permit."""


class ProtocolStateError(ProtocolError):
    """A send was attempted from a slot state that forbids it.

    Carries the slot, attempted signal kind, and current state so tests
    and programs can report precisely what was violated.
    """

    def __init__(self, slot: Any, action: str, state: str) -> None:
        self.slot = slot
        self.action = action
        self.state = state
        super().__init__(
            "cannot %s from slot state %r (%s)" % (action, state, slot))


class PreconditionError(MediaControlError):
    """A goal-primitive precondition was violated, e.g. annotating
    ``openSlot(s, m)`` in a program state entered while ``s`` is not
    closed, or flowlinking two slots with different media (Sec. IV-A)."""


class ConfigurationError(MediaControlError):
    """The graph of boxes and signaling channels is malformed, e.g. a
    slot assigned to two goals, an unknown address, or a cyclic signaling
    path."""
