"""Media, codecs, and the ``noMedia`` pseudo-codec (Sec. VI-A).

A *codec* is a data format for a medium: "G.726 is a lower-fidelity and
lower-bandwidth codec for audio, while G.711 is a higher-fidelity and
higher-bandwidth codec" (Sec. VI-A).  ``NO_MEDIA`` is the distinguished
pseudo-codec indicating no media transmission; it is what application
servers offer and select, because "a slot in an application server may be
masquerading as a media endpoint, but it is not a genuine media endpoint"
(Sec. IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclasses_field
from typing import Dict, Iterable, Optional, Sequence, Tuple

__all__ = [
    "Codec", "Medium", "NO_MEDIA",
    "G711", "G726", "G729", "OPUS_SIM",
    "H261", "H263", "MPEG2_SD", "MPEG4_HD",
    "T140_TEXT",
    "AUDIO", "VIDEO", "TEXT",
    "registry", "codecs_for_medium", "best_common_codec",
]


@dataclass(frozen=True, order=True)
class Codec:
    """A named codec with a medium, relative fidelity, and bandwidth.

    ``fidelity`` is an abstract quality score used for priority ordering;
    ``bandwidth`` is in kbit/s and is used by the media plane to account
    for simulated stream load.
    """

    name: str
    medium: str
    fidelity: int
    bandwidth: float

    #: True for every codec except the ``noMedia`` pseudo-codec.
    #: Computed once at construction: codec negotiation and selector
    #: validation read this on every signal, and a property doing a
    #: string compare per read was measurable at load.
    is_real: bool = dataclasses_field(init=False, compare=False,
                                      repr=False, default=True)

    def __post_init__(self) -> None:
        object.__setattr__(self, "is_real", self.name != "noMedia")

    def __str__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        # Equal codecs always share a name, so hashing the (cached)
        # string hash alone is consistent with the generated __eq__ and
        # avoids building a field tuple per set/dict probe on the codec
        # negotiation path.
        return hash(self.name)


# media
AUDIO = "audio"
VIDEO = "video"
TEXT = "text"

Medium = str

#: The distinguished pseudo-codec: "We use noMedia as the name of a
#: distinguished pseudo-codec indicating no media transmission."
NO_MEDIA = Codec("noMedia", "none", 0, 0.0)

# audio codecs (fidelity ordering per Sec. VI-A: G.711 > G.726)
G711 = Codec("G.711", AUDIO, 50, 64.0)
G726 = Codec("G.726", AUDIO, 40, 32.0)
G729 = Codec("G.729", AUDIO, 30, 8.0)
OPUS_SIM = Codec("OPUS", AUDIO, 60, 48.0)

# video codecs
H261 = Codec("H.261", VIDEO, 20, 384.0)
H263 = Codec("H.263", VIDEO, 30, 512.0)
MPEG2_SD = Codec("MPEG2-SD", VIDEO, 40, 4000.0)
MPEG4_HD = Codec("MPEG4-HD", VIDEO, 60, 8000.0)

# text
T140_TEXT = Codec("T.140", TEXT, 10, 1.0)

_ALL = (G711, G726, G729, OPUS_SIM, H261, H263, MPEG2_SD, MPEG4_HD,
        T140_TEXT, NO_MEDIA)


def registry() -> Dict[str, Codec]:
    """Name → codec mapping of every built-in codec."""
    return {c.name: c for c in _ALL}


#: Interned per-medium codec tuples.  Every endpoint minting a
#: descriptor for a medium shares one tuple object, which both skips
#: the scan/sort and lets descriptor validation cache by tuple identity
#: (see ``repro.protocol.descriptor``).
_BY_MEDIUM: Dict[Medium, Tuple[Codec, ...]] = {}

#: ``supported`` iterables already reduced to their real-codec set,
#: keyed by tuple identity (the tuple is kept alive as the value so the
#: id cannot be recycled).  Bounded: cleared if it ever grows past the
#: small working set interning produces.
_SUPPORTED_MEMO: Dict[int, Tuple[Tuple[Codec, ...], frozenset]] = {}


def codecs_for_medium(medium: Medium) -> Tuple[Codec, ...]:
    """All real codecs for ``medium``, best fidelity first.  The tuple
    is interned: repeated calls return the same object."""
    interned = _BY_MEDIUM.get(medium)
    if interned is None:
        found = [c for c in _ALL if c.medium == medium and c.is_real]
        interned = _BY_MEDIUM[medium] = tuple(
            sorted(found, key=lambda c: -c.fidelity))
    return interned


def best_common_codec(offered: Sequence[Codec],
                      supported: Iterable[Codec]) -> Optional[Codec]:
    """Pick the sender's codec for a received descriptor.

    ``offered`` is the receiver's priority-ordered codec list from its
    descriptor; ``supported`` is what the sender can produce.  Per
    Sec. VI-B, "the sender should choose the highest-priority codec that
    it is able and willing to send" — i.e. the first offered codec that is
    also supported.  Returns ``None`` when there is no real common codec
    (including when the descriptor offers only ``noMedia``).
    """
    if type(supported) is tuple:
        memo = _SUPPORTED_MEMO.get(id(supported))
        if memo is not None and memo[0] is supported:
            supported_set = memo[1]
        else:
            supported_set = frozenset(c for c in supported if c.is_real)
            if len(_SUPPORTED_MEMO) > 1024:
                _SUPPORTED_MEMO.clear()
            _SUPPORTED_MEMO[id(supported)] = (supported, supported_set)
    else:
        supported_set = {c for c in supported if c.is_real}
    for codec in offered:
        if codec.is_real and codec in supported_set:
            return codec
    return None
