"""Descriptors and selectors (Sec. VI-B).

A *descriptor* is "a record in which an endpoint describes itself as a
receiver of media": an address plus a priority-ordered list of codecs,
or the single pseudo-codec ``noMedia`` when the endpoint does not wish
to receive (``muteIn``).

A *selector* is "a record in which an endpoint declares its intention to
send to the endpoint described by a descriptor": it identifies the
descriptor it answers, carries the sender's address, and names either a
single codec chosen from the descriptor's list or ``noMedia``
(``muteOut``).

Descriptors carry an identity ``(origin, version)``.  The paper's
verification (Sec. VIII-A) defines the ``bothFlowing`` condition through
exactly this matching: each end has received the descriptor the other
most recently sent, and a selector answering its own most recent
descriptor.  Origin counters make the matching precise in code.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..network.address import Address
from .codecs import Codec, NO_MEDIA
from .errors import ProtocolError

__all__ = ["DescriptorId", "Descriptor", "Selector", "DescriptorFactory"]


@dataclass(frozen=True, order=True, slots=True)
class DescriptorId:
    """Identity of one descriptor: who minted it and its version."""

    origin: str
    version: int

    def __str__(self) -> str:
        return "%s#%d" % (self.origin, self.version)


#: Codec tuples that already passed ``Descriptor.__post_init__``'s
#: structural checks, keyed by tuple identity.  Endpoints intern their
#: codec lists (see :func:`repro.protocol.codecs.codecs_for_medium`), so
#: in steady state every mint after the first skips the per-codec scan.
#: Each entry holds ``(codecs, has_real, no_media)``; the tuple itself
#: is kept as the value so the id cannot be recycled while the entry
#: lives; bounded so pathological workloads cannot grow it without
#: limit.
_VALIDATED: Dict[int, Tuple[Tuple["Codec", ...], bool, bool]] = {}


@dataclass(frozen=True, slots=True)
class Descriptor:
    """Self-description of one media receiver.

    ``codecs`` is priority-ordered, best first.  A ``noMedia`` descriptor
    has ``codecs == (NO_MEDIA,)`` and no address.
    """

    id: DescriptorId
    address: Optional[Address]
    codecs: Tuple[Codec, ...]
    #: Lazily cached canonical encoding (Sec. VII: "caching strategies
    #: ... an object need not re-encode a descriptor it has already
    #: sent").  Not part of identity/equality.
    _encoded: Optional[str] = field(default=None, init=False, repr=False,
                                    compare=False)
    #: Cached ``is_no_media`` answer (a tuple compare per read added up
    #: on the selector/answer path).  Not part of identity/equality.
    _no_media: bool = field(default=False, init=False, repr=False,
                            compare=False)

    def __post_init__(self) -> None:
        codecs = self.codecs
        cached = _VALIDATED.get(id(codecs))
        if cached is not None and cached[0] is codecs:
            has_real = cached[1]
            no_media = cached[2]
        else:
            if not codecs:
                raise ProtocolError(
                    "descriptor must offer at least one codec "
                    "(use noMedia to refuse media)")
            has_real = any(c.is_real for c in codecs)
            if has_real and NO_MEDIA in codecs:
                raise ProtocolError(
                    "descriptor mixes real codecs with noMedia: %r"
                    % (codecs,))
            no_media = codecs == (NO_MEDIA,)
            if len(_VALIDATED) > 1024:
                _VALIDATED.clear()
            _VALIDATED[id(codecs)] = (codecs, has_real, no_media)
        if has_real and self.address is None:
            raise ProtocolError(
                "descriptor offering real codecs needs an address")
        object.__setattr__(self, "_no_media", no_media)

    @property
    def encoded(self) -> str:
        """The descriptor's canonical wire encoding, computed once.

        Realizes Sec. VII's cached-descriptor strategy: tracers and
        exporters label every signal carrying this descriptor, and the
        label is serialized exactly once per descriptor instance.
        """
        enc = self._encoded
        if enc is None:
            if self.is_no_media:
                enc = "desc[%s noMedia]" % self.id
            else:
                enc = "desc[%s %s %s]" % (
                    self.id, self.address,
                    "/".join(c.name for c in self.codecs))
            object.__setattr__(self, "_encoded", enc)
        return enc

    @property
    def is_no_media(self) -> bool:
        """True when this descriptor refuses inbound media (muteIn)."""
        return self._no_media

    def __str__(self) -> str:
        return self.encoded


@dataclass(frozen=True, slots=True)
class Selector:
    """A response to a descriptor, declaring the sender's intention.

    ``answers`` names the descriptor this selector responds to; ``codec``
    is either one codec from that descriptor's list or ``NO_MEDIA``.
    """

    answers: DescriptorId
    address: Optional[Address]
    codec: Codec

    @property
    def is_no_media(self) -> bool:
        """True when the sender declines to transmit (muteOut)."""
        return not self.codec.is_real

    def answers_descriptor(self, descriptor: Descriptor) -> bool:
        """Does this selector respond to exactly ``descriptor``?"""
        # Identity fast path: the simulated wire carries objects by
        # reference, so a selector minted from a received descriptor
        # holds the *same* id object in the overwhelmingly common case.
        answers = self.answers
        return answers is descriptor.id or answers == descriptor.id

    def validate_against(self, descriptor: Descriptor) -> None:
        """Check the codec choice is legal for ``descriptor``.

        "The only legal response to a descriptor noMedia is a selector
        noMedia"; otherwise the codec must come from the descriptor's
        offered list (or be ``noMedia``).
        """
        if not self.answers_descriptor(descriptor):
            raise ProtocolError(
                "selector answers %s, not %s" % (self.answers, descriptor.id))
        if descriptor.is_no_media and self.codec.is_real:
            raise ProtocolError(
                "real selector %s answering a noMedia descriptor"
                % (self.codec,))
        if self.codec.is_real and self.codec not in descriptor.codecs:
            raise ProtocolError(
                "selector codec %s not offered by %s"
                % (self.codec, descriptor))

    def __str__(self) -> str:
        return "sel[->%s %s]" % (self.answers, self.codec)


@dataclass
class DescriptorFactory:
    """Mints versioned descriptors for one origin.

    Endpoints own a factory keyed by their name; flowlinks and server
    goals own factories for the placeholder ``noMedia`` descriptors they
    must emit before a real descriptor is available.
    """

    origin: str
    _versions: "itertools.count" = field(default_factory=itertools.count)

    def descriptor(self, address: Optional[Address],
                   codecs: Tuple[Codec, ...]) -> Descriptor:
        """Mint a fresh descriptor with the next version number."""
        did = DescriptorId(self.origin, next(self._versions))
        return Descriptor(did, address, codecs)

    def no_media(self) -> Descriptor:
        """Mint a fresh ``noMedia`` descriptor (refusing inbound media)."""
        return self.descriptor(None, (NO_MEDIA,))
