"""Descriptors and selectors (Sec. VI-B).

A *descriptor* is "a record in which an endpoint describes itself as a
receiver of media": an address plus a priority-ordered list of codecs,
or the single pseudo-codec ``noMedia`` when the endpoint does not wish
to receive (``muteIn``).

A *selector* is "a record in which an endpoint declares its intention to
send to the endpoint described by a descriptor": it identifies the
descriptor it answers, carries the sender's address, and names either a
single codec chosen from the descriptor's list or ``noMedia``
(``muteOut``).

Descriptors carry an identity ``(origin, version)``.  The paper's
verification (Sec. VIII-A) defines the ``bothFlowing`` condition through
exactly this matching: each end has received the descriptor the other
most recently sent, and a selector answering its own most recent
descriptor.  Origin counters make the matching precise in code.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..network.address import Address
from .codecs import Codec, NO_MEDIA
from .errors import ProtocolError

__all__ = ["DescriptorId", "Descriptor", "Selector", "DescriptorFactory"]


@dataclass(frozen=True, order=True)
class DescriptorId:
    """Identity of one descriptor: who minted it and its version."""

    origin: str
    version: int

    def __str__(self) -> str:
        return "%s#%d" % (self.origin, self.version)


@dataclass(frozen=True)
class Descriptor:
    """Self-description of one media receiver.

    ``codecs`` is priority-ordered, best first.  A ``noMedia`` descriptor
    has ``codecs == (NO_MEDIA,)`` and no address.
    """

    id: DescriptorId
    address: Optional[Address]
    codecs: Tuple[Codec, ...]

    def __post_init__(self) -> None:
        if not self.codecs:
            raise ProtocolError("descriptor must offer at least one codec "
                                "(use noMedia to refuse media)")
        real = [c for c in self.codecs if c.is_real]
        if real and NO_MEDIA in self.codecs:
            raise ProtocolError(
                "descriptor mixes real codecs with noMedia: %r"
                % (self.codecs,))
        if real and self.address is None:
            raise ProtocolError(
                "descriptor offering real codecs needs an address")

    @property
    def is_no_media(self) -> bool:
        """True when this descriptor refuses inbound media (muteIn)."""
        return self.codecs == (NO_MEDIA,)

    def __str__(self) -> str:
        if self.is_no_media:
            return "desc[%s noMedia]" % self.id
        return "desc[%s %s %s]" % (
            self.id, self.address, "/".join(c.name for c in self.codecs))


@dataclass(frozen=True)
class Selector:
    """A response to a descriptor, declaring the sender's intention.

    ``answers`` names the descriptor this selector responds to; ``codec``
    is either one codec from that descriptor's list or ``NO_MEDIA``.
    """

    answers: DescriptorId
    address: Optional[Address]
    codec: Codec

    @property
    def is_no_media(self) -> bool:
        """True when the sender declines to transmit (muteOut)."""
        return not self.codec.is_real

    def answers_descriptor(self, descriptor: Descriptor) -> bool:
        """Does this selector respond to exactly ``descriptor``?"""
        return self.answers == descriptor.id

    def validate_against(self, descriptor: Descriptor) -> None:
        """Check the codec choice is legal for ``descriptor``.

        "The only legal response to a descriptor noMedia is a selector
        noMedia"; otherwise the codec must come from the descriptor's
        offered list (or be ``noMedia``).
        """
        if not self.answers_descriptor(descriptor):
            raise ProtocolError(
                "selector answers %s, not %s" % (self.answers, descriptor.id))
        if descriptor.is_no_media and self.codec.is_real:
            raise ProtocolError(
                "real selector %s answering a noMedia descriptor"
                % (self.codec,))
        if self.codec.is_real and self.codec not in descriptor.codecs:
            raise ProtocolError(
                "selector codec %s not offered by %s"
                % (self.codec, descriptor))

    def __str__(self) -> str:
        return "sel[->%s %s]" % (self.answers, self.codec)


@dataclass
class DescriptorFactory:
    """Mints versioned descriptors for one origin.

    Endpoints own a factory keyed by their name; flowlinks and server
    goals own factories for the placeholder ``noMedia`` descriptors they
    must emit before a real descriptor is available.
    """

    origin: str
    _versions: "itertools.count" = field(default_factory=itertools.count)

    def descriptor(self, address: Optional[Address],
                   codecs: Tuple[Codec, ...]) -> Descriptor:
        """Mint a fresh descriptor with the next version number."""
        did = DescriptorId(self.origin, next(self._versions))
        return Descriptor(did, address, codecs)

    def no_media(self) -> Descriptor:
        """Mint a fresh ``noMedia`` descriptor (refusing inbound media)."""
        return self.descriptor(None, (NO_MEDIA,))
