"""The compositional media-control signaling protocol (Sec. VI)."""

from .channel import (ChannelEnd, SignalingAgent, SignalingChannel,
                      DEFAULT_TUNNEL)
from .codecs import (AUDIO, NO_MEDIA, TEXT, VIDEO, Codec, Medium,
                     best_common_codec, codecs_for_medium, registry,
                     G711, G726, G729, OPUS_SIM,
                     H261, H263, MPEG2_SD, MPEG4_HD, T140_TEXT)
from .descriptor import Descriptor, DescriptorFactory, DescriptorId, Selector
from .errors import (ConfigurationError, MediaControlError,
                     PreconditionError, ProtocolError, ProtocolStateError,
                     QuiescenceError)
from .signals import (AppMeta, Available, Busy, ChannelUp, Close, CloseAck,
                      Describe, MetaMessage, MetaSignal, Oack, Open, Select,
                      TearDown, TunnelMessage, TunnelSignal, Unavailable)
from .slot import (RetransmitPolicy, Slot, CLOSED, CLOSING, DEAD_STATES,
                   FLOWING, LIVE_STATES, OPENED, OPENING)

__all__ = [
    "ChannelEnd", "SignalingAgent", "SignalingChannel", "DEFAULT_TUNNEL",
    "AUDIO", "VIDEO", "TEXT", "NO_MEDIA", "Codec", "Medium",
    "best_common_codec", "codecs_for_medium", "registry",
    "G711", "G726", "G729", "OPUS_SIM",
    "H261", "H263", "MPEG2_SD", "MPEG4_HD", "T140_TEXT",
    "Descriptor", "DescriptorFactory", "DescriptorId", "Selector",
    "ConfigurationError", "MediaControlError", "PreconditionError",
    "ProtocolError", "ProtocolStateError", "QuiescenceError",
    "AppMeta", "Available", "Busy", "ChannelUp", "Close", "CloseAck",
    "Describe",
    "MetaMessage", "MetaSignal", "Oack", "Open", "Select", "TearDown",
    "TunnelMessage", "TunnelSignal", "Unavailable",
    "RetransmitPolicy", "Slot", "CLOSED", "CLOSING", "OPENED", "OPENING",
    "FLOWING", "LIVE_STATES", "DEAD_STATES",
]
