"""Media plane, endpoints, user devices, and media resources."""

from .device import UserDevice
from .endpoint import MediaEndpoint, Port
from .plane import MediaPlane, Transmission
from .resources import (AnnouncementPlayer, ConferenceBridge,
                        InteractiveVoice, MovieServer, MovieSession,
                        ToneGenerator)

__all__ = [
    "UserDevice", "MediaEndpoint", "Port", "MediaPlane", "Transmission",
    "AnnouncementPlayer", "ConferenceBridge", "InteractiveVoice",
    "MovieServer", "MovieSession", "ToneGenerator",
]
