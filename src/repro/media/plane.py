"""The simulated media plane.

"The media packets ... travel directly between media endpoints"
(Sec. I).  This module models that direct path: each media endpoint
port registers the address it listens on, and declares transmissions —
(target address, codec) pairs — as it sends selectors.  The plane then
answers the questions the paper's scenarios turn on:

* does media actually flow from X to Y right now?
* is anyone transmitting into a void (the Fig. 2 failure: "B is left
  transmitting to an endpoint that will throw away the packets")?
* what content does an endpoint currently hear (needed for conference
  mixing and collaborative TV)?

Delivery semantics: a transmission is *delivered* iff some port owns the
target address, that port is currently listening (its current descriptor
offers real codecs), and the transmitted codec is among the codecs the
port currently offers.  Anything else is thrown away, exactly like RTP
arriving at a socket nobody reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Callable, Dict, FrozenSet, List, Optional, Set, Tuple,
                    TYPE_CHECKING)

from ..network.address import Address, AddressAllocator
from ..protocol.codecs import Codec

if TYPE_CHECKING:  # pragma: no cover
    from .endpoint import MediaEndpoint, Port

__all__ = ["Transmission", "MediaPlane"]

#: A callable yielding the set of content labels a transmission carries
#: (e.g. ``{"audio:A"}`` for a phone, a mixed set for a bridge output).
SourceFn = Callable[[], FrozenSet[str]]


@dataclass
class Transmission:
    """One active media stream leaving one port."""

    port: "Port"
    target: Address
    codec: Codec
    sources: SourceFn

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Tx %s -> %s (%s)>" % (self.port.name, self.target,
                                       self.codec)


class MediaPlane:
    """Registry of listening ports and active transmissions."""

    def __init__(self) -> None:
        self.allocator = AddressAllocator()
        self._ports: Dict[Address, "Port"] = {}
        self._transmissions: Dict["Port", Transmission] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_port(self, port: "Port") -> None:
        """Claim ``port.address`` for ``port``."""
        self._ports[port.address] = port

    def unregister_port(self, port: "Port") -> None:
        self._ports.pop(port.address, None)
        self._transmissions.pop(port, None)

    def set_transmission(self, port: "Port", target: Address, codec: Codec,
                         sources: Optional[SourceFn] = None) -> None:
        """Declare that ``port`` is now sending ``codec`` to ``target``."""
        if sources is None:
            sources = port.default_sources
        self._transmissions[port] = Transmission(port, target, codec, sources)

    def clear_transmission(self, port: "Port") -> None:
        """Declare that ``port`` has stopped sending."""
        self._transmissions.pop(port, None)

    # ------------------------------------------------------------------
    # delivery queries
    # ------------------------------------------------------------------
    def transmissions(self) -> List[Transmission]:
        """All active transmissions (delivered or not)."""
        return list(self._transmissions.values())

    def delivery_target(self, tx: Transmission) -> Optional["Port"]:
        """The port that actually receives ``tx``, or ``None`` if the
        packets are thrown away."""
        port = self._ports.get(tx.target)
        if port is None:
            return None
        if not port.listening:
            return None
        if tx.codec not in port.offered_codecs:
            return None
        return port

    def delivered_to(self, port: "Port") -> List[Transmission]:
        """Transmissions currently being received by ``port``."""
        return [tx for tx in self._transmissions.values()
                if self.delivery_target(tx) is port]

    def wasted_transmissions(self) -> List[Transmission]:
        """Transmissions whose packets nobody is receiving — the
        signature of the Fig. 2 failure."""
        return [tx for tx in self._transmissions.values()
                if self.delivery_target(tx) is None]

    # ------------------------------------------------------------------
    # endpoint-level probes (used heavily by scenario tests)
    # ------------------------------------------------------------------
    def flow_exists(self, sender: "MediaEndpoint",
                    receiver: "MediaEndpoint") -> bool:
        """True iff some port of ``sender`` currently delivers media to
        some port of ``receiver``."""
        for tx in self._transmissions.values():
            if tx.port.endpoint is not sender:
                continue
            target = self.delivery_target(tx)
            if target is not None and target.endpoint is receiver:
                return True
        return False

    def two_way(self, a: "MediaEndpoint", b: "MediaEndpoint") -> bool:
        """Media flows in both directions between ``a`` and ``b``."""
        return self.flow_exists(a, b) and self.flow_exists(b, a)

    def silent(self, endpoint: "MediaEndpoint") -> bool:
        """``endpoint`` neither sends-with-delivery nor receives."""
        for tx in self._transmissions.values():
            target = self.delivery_target(tx)
            if target is None:
                continue
            if tx.port.endpoint is endpoint or target.endpoint is endpoint:
                return False
        return True

    def heard_by(self, endpoint: "MediaEndpoint",
                 _depth: int = 0) -> FrozenSet[str]:
        """The set of content labels currently reaching ``endpoint``.

        For a phone in a conference this is the mixed speaker set; the
        depth guard stops pathological media cycles.
        """
        if _depth > 8:
            return frozenset()
        heard: Set[str] = set()
        for port in endpoint.ports():
            for tx in self.delivered_to(port):
                heard |= tx.sources()
        return frozenset(heard)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<MediaPlane ports=%d tx=%d>" % (
            len(self._ports), len(self._transmissions))
