"""Media-processing resources (Secs. I and IV-B).

"Endpoints also include media-processing resources that perform a wide
range of functions such as recording, playing, mixing, replicating,
filtering, transcoding, and analyzing media streams."

This module provides the resources the paper's scenarios use:

* :class:`ToneGenerator` — busy/ringback tones for Click-to-Dial
  (Fig. 6): "once the resource accepts the audio channel, it will
  generate a busy tone".
* :class:`AnnouncementPlayer` — plays a recorded announcement, then
  reports completion; recorded speech "may have speech files that were
  stored in several different codecs" (Sec. VI-A), modeled by a
  per-announcement codec preference.
* :class:`InteractiveVoice` — the resource ``V`` of Figs. 2/3: audio
  signaling (announcements, touch-tone detection) that verifies a
  prepaid-card payment and reports it to its server via a meta-signal.
* :class:`ConferenceBridge` — the audio mixer of Fig. 7 with the three
  partial-muting policies of Sec. IV-B (business, emergency, training),
  driven by "standardized meta-signals [that] tell the media server how
  to mix".
* :class:`MovieServer` — the collaborative-television source of Fig. 8:
  one signaling channel per collaboration, many tunnels, one shared
  time pointer controlled by pause/play/seek meta-signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..protocol.channel import ChannelEnd
from ..protocol.codecs import Codec, Medium
from ..protocol.signals import AppMeta, MetaSignal, Oack, Open, TunnelSignal
from ..protocol.slot import Slot
from .endpoint import MediaEndpoint, Port

__all__ = [
    "ToneGenerator", "AnnouncementPlayer", "InteractiveVoice",
    "ConferenceBridge", "MovieServer", "MovieSession",
]


class ToneGenerator(MediaEndpoint):
    """Generates a call-progress tone on every accepted channel.

    It never listens (``muteIn`` true): a tone source is send-only.
    """

    def __init__(self, *args, tone: str = "busy", **kwargs):
        kwargs.setdefault("auto_accept", True)
        super().__init__(*args, **kwargs)
        self.tone = tone

    def default_mutes(self, port: Port) -> Tuple[bool, bool]:
        return (True, False)  # mute_in, not mute_out

    def content_label(self, port: Port) -> str:
        # A dialed target of "tones:busy" selects the tone per channel,
        # so one resource can serve busy, ringback, etc.
        target = port.slot.channel_end.channel.target
        if ":" in target:
            return "tone:%s" % target.split(":", 1)[1]
        return "tone:%s" % self.tone


class AnnouncementPlayer(MediaEndpoint):
    """Plays one announcement per channel, then reports completion.

    After ``duration`` seconds of flowing media the player emits an
    ``AppMeta("announcement-done")`` meta-signal on the channel and
    closes the media channel from its end.
    """

    def __init__(self, *args, announcement: str = "greeting",
                 duration: float = 3.0, **kwargs):
        kwargs.setdefault("auto_accept", True)
        super().__init__(*args, **kwargs)
        self.announcement = announcement
        self.duration = duration
        self._playing: Set[Slot] = set()
        self.completed: List[Slot] = []

    def default_mutes(self, port: Port) -> Tuple[bool, bool]:
        return (True, False)

    def content_label(self, port: Port) -> str:
        return "announcement:%s" % self.announcement

    def on_tunnel_signal(self, slot: Slot, signal: TunnelSignal) -> None:
        super().on_tunnel_signal(slot, signal)
        if slot.is_flowing and slot not in self._playing:
            self._playing.add(slot)
            self.node.set_timer(self.duration, self._finish, slot)

    def _finish(self, slot: Slot) -> None:
        self._playing.discard(slot)
        if not slot.is_flowing:
            return
        self.completed.append(slot)
        slot.channel_end.send_meta(AppMeta("announcement-done",
                                           {"announcement":
                                            self.announcement}))
        self.close(slot)


class InteractiveVoice(MediaEndpoint):
    """The audio-signaling resource ``V`` of Figs. 2/3.

    Provides "an extensible user interface on any audio device, by means
    of announcements, tones, touchtone detection, and speech
    recognition" (Sec. I).  Here: once two-way audio with the payer is
    flowing, it takes ``verify_delay`` seconds to collect touch tones
    and authorize more funds, then reports ``user-paid`` to its
    application server via a meta-signal.
    """

    def __init__(self, *args, verify_delay: float = 2.0, **kwargs):
        kwargs.setdefault("auto_accept", True)
        super().__init__(*args, **kwargs)
        self.verify_delay = verify_delay
        self._verifying: Set[Slot] = set()
        self.payments: List[float] = []
        #: When False, V announces but does not authorize (e.g. the
        #: caller never supplies touch tones).
        self.will_pay = True

    def content_label(self, port: Port) -> str:
        return "ivr:%s" % self.name

    def on_tunnel_signal(self, slot: Slot, signal: TunnelSignal) -> None:
        super().on_tunnel_signal(slot, signal)
        if slot.is_flowing and slot not in self._verifying and self.will_pay:
            self._verifying.add(slot)
            self.node.set_timer(self.verify_delay, self._verified, slot)

    def _verified(self, slot: Slot) -> None:
        self._verifying.discard(slot)
        if not slot.is_flowing or not self.will_pay:
            return
        self.payments.append(self.loop.now)
        slot.channel_end.send_meta(AppMeta("user-paid",
                                           {"at": self.loop.now}))


class ConferenceBridge(MediaEndpoint):
    """An audio mixer (Fig. 7).

    "In the direction toward the bridge, an audio channel carries the
    voice of a single user.  In the direction away from the bridge, an
    audio channel carries the mixed voices of all the users except the
    user the channel goes to."

    Partial muting (Sec. IV-B) is configured by the application server
    through ``AppMeta`` meta-signals — the bridge's mix policy is a map
    from (speaker key, listener key) to a mix mode:

    * ``"normal"`` — heard normally (the default for distinct parties);
    * ``"blocked"`` — not heard (business muting of noisy participants,
      or emergency muting of the caller's downlink);
    * ``"whisper"`` — heard as a whisper (the supervisor-training case).

    Keys are the ``target`` strings of the signaling channels that reach
    the bridge, so the conference server names parties naturally.
    """

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("auto_accept", True)
        super().__init__(*args, **kwargs)
        #: (speaker_key, listener_key) → mode; missing means "normal".
        self._policy: Dict[Tuple[str, str], str] = {}
        self._mixing = False

    # -- policy -----------------------------------------------------------
    @staticmethod
    def port_key(port: Port) -> str:
        return port.slot.channel_end.channel.target or \
            port.slot.channel_end.channel.name

    def set_mix(self, speaker: str, listener: str, mode: str) -> None:
        """Directly set one mix-policy entry (tests); applications use
        the ``AppMeta("set-mix")`` meta-signal instead."""
        if mode == "normal":
            self._policy.pop((speaker, listener), None)
        else:
            self._policy[(speaker, listener)] = mode

    def mix_mode(self, speaker: str, listener: str) -> str:
        return self._policy.get((speaker, listener), "normal")

    def on_meta(self, end: ChannelEnd, signal: MetaSignal) -> None:
        if isinstance(signal, AppMeta) and signal.name == "set-mix":
            self.set_mix(signal.payload["speaker"],
                         signal.payload["listener"],
                         signal.payload.get("mode", "normal"))

    # -- mixing -----------------------------------------------------------
    def content_label(self, port: Port) -> str:
        return "mix:%s" % self.name

    def _sources_for(self, port: Port):
        def sources() -> FrozenSet[str]:
            return self._mix_sources(port)
        return sources

    def _mix_sources(self, out_port: Port) -> FrozenSet[str]:
        """The voices carried toward ``out_port``'s listener."""
        if self._mixing:  # media cycle through chained bridges
            return frozenset()
        self._mixing = True
        try:
            listener = self.port_key(out_port)
            heard: Set[str] = set()
            for in_port in self.ports():
                if in_port is out_port:
                    continue
                speaker = self.port_key(in_port)
                mode = self.mix_mode(speaker, listener)
                if mode == "blocked":
                    continue
                for tx in self.plane.delivered_to(in_port):
                    for label in tx.sources():
                        if mode == "whisper":
                            heard.add("whisper:%s" % label)
                        else:
                            heard.add(label)
            return frozenset(heard)
        finally:
            self._mixing = False


@dataclass
class MovieSession:
    """One collaboration's view of a movie: shared time pointer."""

    title: str
    channel_name: str
    position: float = 0.0
    playing: bool = True
    updated_at: float = 0.0

    def position_at(self, now: float) -> float:
        if self.playing:
            return self.position + (now - self.updated_at)
        return self.position

    def sync_to(self, now: float) -> None:
        self.position = self.position_at(now)
        self.updated_at = now


class MovieServer(MediaEndpoint):
    """The streaming source of Fig. 8.

    Each signaling channel reaching the server is one *session*,
    "associated in the server with this movie and time pointer"; all the
    tunnels of the channel carry media "from the same movie at the same
    time point".  ``pause``/``play``/``seek`` arrive as meta-signals and
    affect every media channel of the session.
    """

    def __init__(self, *args, catalog: Tuple[str, ...] = ("movie",),
                 **kwargs):
        kwargs.setdefault("auto_accept", True)
        super().__init__(*args, **kwargs)
        self.catalog = catalog
        self._sessions: Dict[str, MovieSession] = {}

    def default_mutes(self, port: Port) -> Tuple[bool, bool]:
        return (True, False)  # the movie server only sends

    def session_for_end(self, end: ChannelEnd) -> MovieSession:
        key = end.channel.name
        if key not in self._sessions:
            title = end.channel.target.split("movie:")[-1] \
                if "movie:" in end.channel.target else self.catalog[0]
            self._sessions[key] = MovieSession(
                title=title, channel_name=key, updated_at=self.loop.now)
        return self._sessions[key]

    def session_for_port(self, port: Port) -> MovieSession:
        return self.session_for_end(port.slot.channel_end)

    def sessions(self) -> List[MovieSession]:
        return list(self._sessions.values())

    def content_label(self, port: Port) -> str:
        session = self.session_for_port(port)
        return "movie:%s:%s" % (session.title, port.slot.tunnel_id)

    def on_tunnel_signal(self, slot: Slot, signal: TunnelSignal) -> None:
        if isinstance(signal, Open):
            # A collaboration reached us: materialize its session.
            self.session_for_end(slot.channel_end)
        super().on_tunnel_signal(slot, signal)

    def on_meta(self, end: ChannelEnd, signal: MetaSignal) -> None:
        if not isinstance(signal, AppMeta):
            return
        session = self.session_for_end(end)
        now = self.loop.now
        if signal.name == "pause":
            session.sync_to(now)
            session.playing = False
        elif signal.name == "play":
            session.sync_to(now)
            session.playing = True
        elif signal.name == "seek":
            session.sync_to(now)
            session.position = float(signal.payload["position"])
